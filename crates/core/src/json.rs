//! A small, complete JSON implementation.
//!
//! Muppet applications "often use JSON to encode slates for language
//! independence and flexibility" (§4.2), and the motivating feeds (tweets,
//! checkins) are JSON objects (§2). The workspace is dependency-light, so
//! JSON lives here: a strict recursive-descent parser (UTF-8 input, full
//! escape handling including surrogate pairs, depth-limited) and a
//! serializer (compact and pretty).
//!
//! Objects preserve insertion order — slate payloads are diffed byte-wise
//! in tests, so serialization must be deterministic.

use std::fmt;

use crate::error::{Error, Result};

/// Maximum nesting depth the parser accepts; guards against stack overflow
/// on adversarial inputs read back from disk.
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number. Stored as `f64` (as in JavaScript); integer
    /// accessors check representability.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    // ---------- constructors ----------

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Build an object from key/value pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    // ---------- accessors ----------

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object field lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace an object field. Panics on non-objects — misuse is
    /// a programming error, not a data error.
    pub fn set(&mut self, key: impl Into<String>, value: Json) {
        let Json::Obj(pairs) = self else { panic!("Json::set on non-object") };
        let key = key.into();
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            pairs.push((key, value));
        }
    }

    /// Array element lookup.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// `&str` view of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view; `None` if the number is fractional, out of range, or
    /// the value is not a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// Signed integer view with the same representability rules.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    // ---------- parsing ----------

    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Parse from raw bytes (must be UTF-8).
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json> {
        let text = std::str::from_utf8(bytes).map_err(|e| Error::Json {
            offset: e.valid_up_to(),
            message: "invalid UTF-8".into(),
        })?;
        Json::parse(text)
    }

    // ---------- serialization ----------

    /// Compact serialization (no whitespace). Same as `to_string()`.
    pub fn to_compact(&self) -> String {
        let mut out = Vec::new();
        self.write(&mut out, None, 0);
        // The serializer only emits valid UTF-8.
        String::from_utf8(out).expect("serializer emits UTF-8")
    }

    /// Pretty serialization with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = Vec::new();
        self.write(&mut out, Some(2), 0);
        String::from_utf8(out).expect("serializer emits UTF-8")
    }

    /// Compact serialization appended to a byte buffer — the flush path,
    /// which previously detoured through an intermediate `String` per
    /// slate write. Byte-for-byte identical to [`Json::to_compact`].
    pub fn write_into(&self, out: &mut Vec<u8>) {
        self.write(out, None, 0);
    }

    fn write(&self, out: &mut Vec<u8>, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.extend_from_slice(b"null"),
            Json::Bool(true) => out.extend_from_slice(b"true"),
            Json::Bool(false) => out.extend_from_slice(b"false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push(b'[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(b',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(b']');
            }
            Json::Obj(pairs) => {
                out.push(b'{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(b',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_string(out, k);
                    out.push(b':');
                    if indent.is_some() {
                        out.push(b' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(b'}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn newline_indent(out: &mut Vec<u8>, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push(b'\n');
        for _ in 0..width * level {
            out.push(b' ');
        }
    }
}

fn write_number(out: &mut Vec<u8>, n: f64) {
    use std::io::Write;
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
            // Integral values print without the trailing ".0" so counters
            // roundtrip byte-identically.
            write!(out, "{}", n as i64).expect("Vec write is infallible");
        } else {
            write!(out, "{n}").expect("Vec write is infallible");
        }
    } else {
        // JSON has no Inf/NaN; serialize as null like most permissive encoders.
        out.extend_from_slice(b"null");
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    let mut utf8 = [0u8; 4];
    for c in s.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            '\u{08}' => out.extend_from_slice(b"\\b"),
            '\u{0c}' => out.extend_from_slice(b"\\f"),
            c if (c as u32) < 0x20 => {
                use std::io::Write;
                write!(out, "\\u{:04x}", c as u32).expect("Vec write is infallible");
            }
            c => out.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes()),
        }
    }
    out.push(b'"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Json { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            Some(b) => Err(self.err(format!("expected {:?}, found {:?}", byte as char, b as char))),
            None => Err(self.err(format!("expected {:?}, found end of input", byte as char))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                Some(b) => {
                    return Err(self.err(format!("expected ',' or ']', found {:?}", b as char)))
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                Some(b) => {
                    return Err(self.err(format!("expected ',' or '}}', found {:?}", b as char)))
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is &str, so slices on char boundaries are valid UTF-8;
                // the loop above only stops at ASCII markers, which are
                // boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<()> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{08}'),
            Some(b'f') => out.push('\u{0c}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.hex4()?;
                let c = if (0xd800..0xdc00).contains(&hi) {
                    // High surrogate: require a following \uXXXX low surrogate.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xdc00..0xe000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(c);
            }
            Some(b) => return Err(self.err(format!("invalid escape \\{:?}", b as char))),
            None => return Err(self.err("unterminated escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().at(0).unwrap().as_u64(), Some(1));
        assert!(v.get("a").unwrap().at(1).unwrap().get("b").unwrap().is_null());
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.at(0), None);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn escapes_roundtrip() {
        let src = r#""line\nbreak \"quoted\" \\ \/ \t \b \f A é 😀""#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nbreak \"quoted\" \\ / \t \u{8} \u{c} A é 😀");
        // Serialize and reparse — value-identical.
        let reparsed = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\":}",
            "[1,]",
            "{,}",
            "01",
            "1.",
            "1e",
            "+1",
            "nul",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "\"\\udc00\"",
            "{\"a\":1}extra",
            "[1 2]",
            "'single'",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn rejects_control_chars_in_strings() {
        assert!(Json::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(Json::Num(3.0).to_compact(), "3");
        assert_eq!(Json::Num(-2.0).to_compact(), "-2");
        assert_eq!(Json::Num(2.5).to_compact(), "2.5");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = Json::obj([
            ("count", Json::num(3)),
            ("tags", Json::arr([Json::str("a"), Json::str("b")])),
            ("empty", Json::obj::<String>([])),
        ]);
        let pretty = v.to_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn set_and_get_mut() {
        let mut v = Json::obj([("count", Json::num(1))]);
        v.set("count", Json::num(2));
        v.set("extra", Json::str("x"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(2));
        *v.get_mut("extra").unwrap() = Json::Null;
        assert!(v.get("extra").unwrap().is_null());
    }

    #[test]
    fn integer_accessors_check_range() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_i64(), Some(-1));
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn parse_bytes_validates_utf8() {
        assert!(Json::parse_bytes(b"{\"a\":1}").is_ok());
        assert!(Json::parse_bytes(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn unicode_passthrough_in_fast_path() {
        let v = Json::parse("\"héllo wörld ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo wörld ✓"));
    }

    #[test]
    fn write_into_matches_to_compact() {
        let v = Json::obj([
            ("count", Json::num(3)),
            ("frac", Json::num(2.5)),
            ("text", Json::str("a\"b\\c\né😀")),
            ("list", Json::arr([Json::Null, Json::Bool(true)])),
        ]);
        let mut buf = Vec::new();
        v.write_into(&mut buf);
        assert_eq!(buf, v.to_compact().into_bytes());
        // Appends rather than overwrites.
        let mut prefixed = b"x".to_vec();
        v.write_into(&mut prefixed);
        assert_eq!(&prefixed[1..], buf.as_slice());
    }

    #[test]
    fn whitespace_tolerance() {
        let v = Json::parse(" \t\r\n { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
