//! A three-node Muppet cluster over real TCP on loopback — the §4
//! deployment with an actual wire instead of the in-process simulation.
//!
//! Three `Engine`s run in this process, but each owns exactly one machine
//! of the cluster and talks to the other two through `muppet-net`'s TCP
//! transport (length-prefixed frames, per-peer connection pools) — the
//! same code path three separate `muppetd` processes use. The demo:
//!
//! 1. ingest tweets on node 0 — events hash-route *directly* to their
//!    owning machine's process (§4.1, no master on the data path);
//! 2. read live slates from node 2 for keys owned by other nodes (§4.4
//!    remote reads);
//! 3. kill node 1 and keep ingesting: senders detect the dead machine on
//!    send, report to the master, the broadcast drops it from every ring,
//!    and in-flight events are lost-and-logged (§4.3).
//!
//! ```sh
//! cargo run --release --example net_cluster
//! ```

use std::time::Duration;

use muppet::apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet::core::json::Json;
use muppet::prelude::*;

fn ops() -> OperatorSet {
    OperatorSet::new()
        .mapper(TopicMapper::new())
        .updater(MinuteCounter::new())
        .updater(HotDetector::new(3.0))
}

fn main() {
    // Reserve three ephemeral ports for the nodes' event listeners.
    let topology = Topology::loopback_ephemeral(3, false).expect("reserve ports");

    println!("starting 3 nodes:");
    for node in &topology.nodes {
        println!("  node {} on {}:{}", node.id, node.host, node.port);
    }
    let mut nodes: Vec<Option<Engine>> = (0..3)
        .map(|local| {
            let cfg = EngineConfig {
                machines: 3,
                workers_per_machine: 2,
                transport: TransportKind::Tcp { topology: topology.clone(), local },
                ..EngineConfig::default()
            };
            Some(Engine::start(hot_topics::workflow(), ops(), cfg, None).expect("node starts"))
        })
        .collect();

    // 1. Ingest on node 0; routing fans events across all three processes.
    let tweet = Json::obj([("topics", Json::Arr(vec![Json::str("sports"), Json::str("music")]))])
        .to_compact();
    for i in 0..500u32 {
        nodes[0]
            .as_ref()
            .unwrap()
            .submit_kv(hot_topics::TWEET_STREAM, Key::from(format!("tweet-{i}")), tweet.clone())
            .expect("submit");
    }
    std::thread::sleep(Duration::from_millis(800));

    // 2. Remote slate reads from node 2 (whoever owns the key serves it).
    for key in ["sports 0", "music 0"] {
        let bytes = nodes[2]
            .as_ref()
            .unwrap()
            .read_slate(hot_topics::MINUTE_COUNTER, &Key::from(key))
            .expect("slate exists somewhere in the cluster");
        println!("node 2 reads {key:?} -> {}", String::from_utf8_lossy(&bytes));
    }

    // 3. Kill node 1's process (shutdown closes its listener and queues),
    //    then keep ingesting until a sender trips over the corpse.
    println!("killing node 1...");
    let _ = nodes[1].take().expect("node 1 running").shutdown();
    let survivor = nodes[0].as_ref().unwrap();
    let mut detected_at = None;
    for i in 500..5000u32 {
        survivor
            .submit_kv(hot_topics::TWEET_STREAM, Key::from(format!("tweet-{i}")), tweet.clone())
            .expect("submit");
        if survivor.failure_detected(1) {
            detected_at = Some(i - 500 + 1);
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    match detected_at {
        Some(n) => println!("node 1 failure detected after {n} post-kill submissions"),
        None => println!("node 1 failure not detected (unexpected)"),
    }
    assert!(!survivor.ring_contains(1), "broadcast must drop node 1 from the ring");
    println!(
        "node 0 drop log: {:?}",
        survivor.recent_drops().last().unwrap_or(&"<empty>".to_string())
    );

    // The two survivors keep serving. If node 1 owned "sports 0", its
    // unflushed slate died with it (§4.3: "unflushed slate changes are
    // lost") and the key's arc moved to a survivor — new traffic rebuilds
    // the count there.
    for i in 5000..5500u32 {
        survivor
            .submit_kv(hot_topics::TWEET_STREAM, Key::from(format!("tweet-{i}")), tweet.clone())
            .expect("submit");
    }
    std::thread::sleep(Duration::from_millis(500));
    let count = nodes[2]
        .as_ref()
        .unwrap()
        .read_slate(hot_topics::MINUTE_COUNTER, &Key::from("sports 0"))
        .expect("a survivor now owns the key and is counting again");
    println!("post-failure count on \"sports 0\": {}", String::from_utf8_lossy(&count));

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
    println!("done.");
}
