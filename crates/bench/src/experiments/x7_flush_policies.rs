//! X7 — §4.2: the flush knob, "ranging from 'immediate write-through' to
//! 'only when evicted from cache'".
//!
//! Trade-off: write-through maximizes store writes but loses nothing on a
//! crash; evict-only coalesces hot-key overwrites into few writes but
//! loses every unflushed increment. We stream counter events, crash every
//! machine without a graceful flush, and compare store write volume vs.
//! increments lost.

use std::sync::Arc;
use std::time::Duration;

use muppet_core::event::Event;
use muppet_core::operator::{Emitter, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::cache::FlushPolicy;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_slatestore::types::CellKey;
use muppet_slatestore::util::TempDir;

use crate::harness::keyed_events;
use crate::table::Table;
use crate::Scale;

fn workflow() -> Workflow {
    let mut b = Workflow::builder("flush-probe");
    b.external_stream("S1");
    b.updater("U1", &["S1"]);
    b.build().unwrap()
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X7",
        "flush policy: store writes vs crash loss",
        "§4.2 (flushing parameters), §4.3",
    );
    let n = scale.events(20_000);
    let keys = 200usize;

    let mut table = Table::new([
        "flush policy",
        "store writes",
        "write amplification",
        "increments lost on crash",
        "loss %",
    ]);
    for (name, policy) in [
        ("write-through", FlushPolicy::WriteThrough),
        ("interval 10ms", FlushPolicy::IntervalMs(10)),
        ("on-evict only", FlushPolicy::OnEvict),
    ] {
        let dir = TempDir::new("x7").unwrap();
        let store = Arc::new(
            StoreCluster::open(
                dir.path(),
                StoreConfig { nodes: 1, replication: 1, ..Default::default() },
            )
            .unwrap(),
        );
        let cfg = EngineConfig {
            kind: EngineKind::Muppet2,
            machines: 1,
            workers_per_machine: 2,
            flush: policy,
            queue_capacity: 1 << 16,
            ..EngineConfig::default()
        };
        let ops = OperatorSet::new().updater(FnUpdater::new(
            "U1",
            |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
                slate.incr_counter(1);
            },
        ));
        let engine = Engine::start(workflow(), ops, cfg, Some(Arc::clone(&store))).unwrap();
        let events = keyed_events("S1", n, keys, 1.0, 777);
        // Pace the stream over ~100ms so the interval flusher fires several
        // times mid-run: the crash then lands between flushes, which is the
        // realistic failure point for the interval policy.
        let batches = 10usize;
        let batch_size = events.len().div_ceil(batches);
        for batch in events.chunks(batch_size) {
            for ev in batch {
                engine.submit(ev.clone()).unwrap();
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(engine.drain(Duration::from_secs(120)));
        let now = engine.now_us();
        let flush_writes = engine.stats().cache.flush_writes;
        // CRASH: kill every machine; no graceful flush happens.
        for m in 0..engine.machine_count() {
            engine.kill_machine(m);
        }
        drop(engine);

        // Count what survived in the store.
        let mut survived = 0u64;
        for k in 0..keys {
            if let Ok(Some(bytes)) = store.get(&CellKey::new(format!("key-{k:06}"), "U1"), now + 1)
            {
                survived += String::from_utf8(bytes.to_vec())
                    .ok()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(0);
            }
        }
        let lost = (n as u64).saturating_sub(survived);
        table.row([
            name.to_string(),
            flush_writes.to_string(),
            format!("{:.2}×", flush_writes as f64 / n as f64),
            lost.to_string(),
            format!("{:.1}%", lost as f64 / n as f64 * 100.0),
        ]);
    }
    table.print();
    println!(
        "\nshape check: write-through ⇒ ~1 store write per event, ~0% loss; evict-only ⇒\n\
         write coalescing (≪1× amplification) but ~100% loss on crash; the interval\n\
         flusher sits between — exactly the §4.2 latitude."
    );
}
