//! Consistent hash ring with virtual nodes.
//!
//! Both the store (replica placement) and the Muppet runtime (event→worker
//! routing, "technically accomplished using a hash ring", §4.3) use this
//! structure. Virtual nodes smooth the load; removing a node moves only
//! that node's arc — exactly the §4.3 failover behaviour where "from then
//! on all events with the same key will be routed to worker C instead of
//! the (now failed) worker B".

use muppet_core::hash::{fx64, mix64};

/// A consistent hash ring over `usize` member ids.
#[derive(Clone, Debug)]
pub struct ConsistentRing {
    /// (point, member) sorted by point.
    points: Vec<(u64, usize)>,
    vnodes: usize,
    members: Vec<usize>,
}

impl ConsistentRing {
    /// Build a ring over members `0..n` with `vnodes` virtual nodes each.
    pub fn new(n: usize, vnodes: usize) -> Self {
        let mut ring =
            ConsistentRing { points: Vec::new(), vnodes: vnodes.max(1), members: Vec::new() };
        for id in 0..n {
            ring.add(id);
        }
        ring
    }

    /// Add a member.
    pub fn add(&mut self, id: usize) {
        if self.members.contains(&id) {
            return;
        }
        self.members.push(id);
        for v in 0..self.vnodes {
            let point = mix64(fx64(format!("member-{id}").as_bytes()) ^ mix64(v as u64 + 1));
            self.points.push((point, id));
        }
        self.points.sort_unstable();
    }

    /// Remove a member (e.g. a failed machine).
    pub fn remove(&mut self, id: usize) {
        self.members.retain(|&m| m != id);
        self.points.retain(|&(_, m)| m != id);
    }

    /// Whether `id` is a live member.
    pub fn contains(&self, id: usize) -> bool {
        self.members.contains(&id)
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The primary owner of `hash`, or `None` on an empty ring.
    pub fn owner(&self, hash: u64) -> Option<usize> {
        self.walk(hash).next()
    }

    /// The first `n` *distinct* owners clockwise from `hash` — the replica
    /// set for replication factor `n` (clamped to the member count).
    pub fn owners(&self, hash: u64, n: usize) -> Vec<usize> {
        let want = n.min(self.members.len());
        let mut out = Vec::with_capacity(want);
        for id in self.walk(hash) {
            if !out.contains(&id) {
                out.push(id);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// Iterate member ids clockwise from `hash` (with repetition across
    /// vnodes; callers dedup).
    fn walk(&self, hash: u64) -> impl Iterator<Item = usize> + '_ {
        let start = self.points.partition_point(|&(p, _)| p < hash);
        self.points[start..].iter().chain(self.points[..start].iter()).map(|&(_, id)| id)
    }

    /// Live member ids in insertion order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Whether `hash` is owned by a different member in `next` than here —
    /// the ownership-diff primitive behind elastic membership: on a
    /// membership change, exactly the hashes for which this returns `true`
    /// must be handed off (flushed by the old owner, faulted in by the
    /// new one). Hashes owned by nobody on either side never move.
    pub fn owner_moved(&self, next: &ConsistentRing, hash: u64) -> bool {
        self.owner(hash) != next.owner(hash)
    }
}

/// A consistent ring stamped with a membership epoch (elastic clusters).
///
/// The paper's ring only ever shrinks (§4.3 failure drops); an elastic
/// cluster also grows, and once membership can change in both directions
/// every ring state needs an identity — the *epoch* — so that protocol
/// messages (failure reports, membership updates) can be ordered against
/// the membership they were observed under. The epoch is minted only by
/// the membership coordinator ([`EpochRing::set_epoch`] /
/// [`EpochRing::from_ring`], at commit time): `add`/`remove` reshape the
/// ring without touching the epoch, so §4.3 failure drops — applied
/// independently on every node — can never make epochs diverge across
/// the cluster (see DESIGN.md §7).
#[derive(Clone, Debug)]
pub struct EpochRing {
    ring: ConsistentRing,
    epoch: u64,
}

impl EpochRing {
    /// A ring over members `0..n` at epoch 0.
    pub fn new(n: usize, vnodes: usize) -> Self {
        EpochRing { ring: ConsistentRing::new(n, vnodes), epoch: 0 }
    }

    /// Wrap an existing ring at an explicit (coordinator-minted) epoch.
    pub fn from_ring(ring: ConsistentRing, epoch: u64) -> Self {
        EpochRing { ring, epoch }
    }

    /// The installed membership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pin the epoch (installing a master-assigned membership update).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The underlying ring.
    pub fn ring(&self) -> &ConsistentRing {
        &self.ring
    }

    /// Add a member (idempotent). Does not mint an epoch.
    pub fn add(&mut self, id: usize) {
        self.ring.add(id);
    }

    /// Remove a member (idempotent; §4.3 drop). Does not mint an epoch.
    pub fn remove(&mut self, id: usize) {
        self.ring.remove(id);
    }

    /// See [`ConsistentRing::owner`].
    pub fn owner(&self, hash: u64) -> Option<usize> {
        self.ring.owner(hash)
    }

    /// See [`ConsistentRing::owner_moved`].
    pub fn owner_moved(&self, next: &ConsistentRing, hash: u64) -> bool {
        self.ring.owner_moved(next, hash)
    }

    /// See [`ConsistentRing::contains`].
    pub fn contains(&self, id: usize) -> bool {
        self.ring.contains(id)
    }

    /// Live member ids in insertion order.
    pub fn members(&self) -> &[usize] {
        self.ring.members()
    }

    /// See [`ConsistentRing::len`].
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = ConsistentRing::new(0, 8);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
        assert!(ring.owners(42, 3).is_empty());
    }

    #[test]
    fn single_member_owns_everything() {
        let ring = ConsistentRing::new(1, 8);
        for h in [0u64, 1, u64::MAX, 12345] {
            assert_eq!(ring.owner(h), Some(0));
        }
    }

    #[test]
    fn owners_are_distinct_and_bounded() {
        let ring = ConsistentRing::new(5, 16);
        for h in 0..100u64 {
            let owners = ring.owners(mix64(h), 3);
            assert_eq!(owners.len(), 3);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct nodes");
        }
        // Replication factor above member count clamps.
        assert_eq!(ring.owners(7, 10).len(), 5);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = ConsistentRing::new(8, 32);
        let b = ConsistentRing::new(8, 32);
        for h in (0..1000u64).map(mix64) {
            assert_eq!(a.owner(h), b.owner(h), "all workers share the same hash ring (§4.1)");
        }
    }

    #[test]
    fn removal_only_moves_the_failed_members_keys() {
        let mut ring = ConsistentRing::new(6, 32);
        let hashes: Vec<u64> = (0..2000u64).map(mix64).collect();
        let before: Vec<usize> = hashes.iter().map(|&h| ring.owner(h).unwrap()).collect();
        ring.remove(3);
        assert!(!ring.contains(3));
        for (h, &old_owner) in hashes.iter().zip(&before) {
            let new_owner = ring.owner(*h).unwrap();
            if old_owner != 3 {
                assert_eq!(new_owner, old_owner, "non-failed keys must not move");
            } else {
                assert_ne!(new_owner, 3);
            }
        }
    }

    #[test]
    fn load_spreads_roughly_evenly() {
        let ring = ConsistentRing::new(8, 64);
        let mut counts = [0u32; 8];
        for h in (0..40_000u64).map(mix64) {
            counts[ring.owner(h).unwrap()] += 1;
        }
        let mean = 40_000 / 8;
        for (id, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - mean as i64).unsigned_abs() < mean as u64 / 2,
                "member {id} got {c}, mean {mean}"
            );
        }
    }

    #[test]
    fn re_adding_a_member_restores_ownership() {
        let mut ring = ConsistentRing::new(4, 32);
        let hashes: Vec<u64> = (0..500u64).map(mix64).collect();
        let before: Vec<usize> = hashes.iter().map(|&h| ring.owner(h).unwrap()).collect();
        ring.remove(2);
        ring.add(2);
        let after: Vec<usize> = hashes.iter().map(|&h| ring.owner(h).unwrap()).collect();
        assert_eq!(before, after, "ring placement is a pure function of membership");
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut ring = ConsistentRing::new(3, 8);
        let points_before = ring.points.len();
        ring.add(1);
        assert_eq!(ring.points.len(), points_before);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn owner_moved_flags_exactly_the_new_members_arcs() {
        let before = ConsistentRing::new(4, 32);
        let mut after = before.clone();
        after.add(4);
        let mut moved = 0usize;
        for h in (0..3000u64).map(mix64) {
            if before.owner_moved(&after, h) {
                // Only arcs captured by the new member move.
                assert_eq!(after.owner(h), Some(4), "a moved hash must land on the joiner");
                moved += 1;
            } else {
                assert_eq!(before.owner(h), after.owner(h));
            }
        }
        assert!(moved > 0, "a 5th member must capture some arcs");
        assert!(moved < 3000, "a 5th member must not capture everything");
    }

    #[test]
    fn epoch_is_minted_by_the_coordinator_not_by_mutation() {
        let mut ring = EpochRing::new(3, 16);
        assert_eq!(ring.epoch(), 0);
        // §4.3 failure drops reshape the ring on every node independently
        // — they must not advance the epoch, or nodes would diverge.
        ring.remove(0);
        assert_eq!(ring.epoch(), 0);
        assert!(!ring.contains(0));
        ring.add(3);
        assert_eq!(ring.epoch(), 0);
        assert!(ring.contains(3));
        assert_eq!(ring.members(), &[1, 2, 3]);
        // A committed membership update installs the minted epoch.
        let committed = EpochRing::from_ring(ring.ring().clone(), 7);
        assert_eq!(committed.epoch(), 7);
        assert_eq!(committed.len(), 3);
    }

    #[test]
    fn epoch_ring_grow_then_shrink_routes_like_a_fresh_ring() {
        // Ring placement stays a pure function of membership through any
        // add/remove history — the property elastic handoff relies on.
        let mut grown = EpochRing::new(3, 32);
        grown.add(3);
        grown.remove(1);
        let mut fresh = ConsistentRing::new(0, 32);
        for id in [0, 2, 3] {
            fresh.add(id);
        }
        for h in (0..1000u64).map(mix64) {
            assert_eq!(grown.owner(h), fresh.owner(h));
        }
    }
}
