//! The lint engine against its own fixtures: every rule must fire on its
//! `flagged.rs`, stay silent on `clean.rs`, and honor the reasoned
//! annotations in `allowed.rs`. This is the executable spec for the
//! rules — if a rule regresses, the fixture that encodes its contract
//! fails by name.

use std::path::PathBuf;

use muppet_check::lint;

fn fixture(rule_dir: &str, which: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule_dir)
        .join(which)
        .to_string_lossy()
        .into_owned()
}

/// (fixture directory, rule id, findings expected in flagged.rs)
const CASES: [(&str, &str, usize); 4] = [
    ("no_raw_lock", "no-raw-lock", 3),
    ("no_unwrap_in_prod", "no-unwrap-in-prod", 2),
    ("no_wallclock_in_deterministic", "no-wallclock-in-deterministic", 2),
    ("lock_across_io", "lock-across-io", 3),
];

#[test]
fn flagged_fixtures_fail_with_exact_counts() {
    for (dir, rule, expected) in CASES {
        let report = lint::lint_files(&[fixture(dir, "flagged.rs")]).expect("fixture readable");
        let hits: Vec<_> = report.findings.iter().filter(|f| f.rule == rule).collect();
        assert_eq!(
            hits.len(),
            expected,
            "{dir}/flagged.rs must produce {expected} `{rule}` findings:\n{}",
            report.render_text()
        );
        // Diagnostics point at the on-disk file (clickable), not the
        // virtual path the header sets for scoping.
        assert!(hits.iter().all(|f| f.file.ends_with("flagged.rs")), "{hits:?}");
    }
}

#[test]
fn clean_fixtures_pass() {
    for (dir, rule, _) in CASES {
        let report = lint::lint_files(&[fixture(dir, "clean.rs")]).expect("fixture readable");
        assert!(
            report.findings.is_empty(),
            "{dir}/clean.rs must be clean of `{rule}` (and everything else):\n{}",
            report.render_text()
        );
    }
}

#[test]
fn allowed_fixtures_pass_via_annotations() {
    for (dir, rule, _) in CASES {
        let report = lint::lint_files(&[fixture(dir, "allowed.rs")]).expect("fixture readable");
        assert!(
            report.findings.is_empty(),
            "{dir}/allowed.rs carries `lint: allow({rule})` annotations and must pass:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn json_summary_is_machine_readable() {
    let report =
        lint::lint_files(&[fixture("no_unwrap_in_prod", "flagged.rs")]).expect("fixture readable");
    let json = report.render_json();
    assert!(json.starts_with(r#"{"files_scanned":1,"finding_count":2,"#), "{json}");
    assert!(json.contains(r#""rule":"no-unwrap-in-prod""#), "{json}");
    assert!(json.contains(r#""line":5"#), "{json}");
}
