//! # muppet-runtime — the Muppet execution engines
//!
//! This crate executes MapUpdate applications (defined with `muppet-core`)
//! on a simulated cluster of machines, reproducing both generations of the
//! system described in §4 of the paper:
//!
//! * **Muppet 1.0** ([`engine::EngineKind::Muppet1`]): each worker is bound
//!   to a single map or update function (the conductor/JVM pair of §4.5,
//!   here one thread per worker); events route via a per-function hash ring;
//!   every updater-worker keeps its *own* slate cache — fragmenting the
//!   machine's cache budget exactly as §4.5 laments.
//! * **Muppet 2.0** ([`engine::EngineKind::Muppet2`]): per machine, a pool
//!   of worker threads each able to run any function; incoming events hash
//!   to a *primary and secondary* queue (two-choice dispatch, [`dispatch`]),
//!   bounding slate contention to two workers while relieving hot-key
//!   queues; all slates live in one central per-machine cache ([`cache`]).
//!
//! Shared infrastructure:
//!
//! * [`queue`] — bounded worker queues with the §4.3 overflow hooks;
//! * [`overflow`] — drop / overflow-stream / source-throttling policies;
//! * [`master`] — the failure master: workers report unreachable machines,
//!   the master broadcasts, rings drop the dead machine (§4.3);
//! * [`cache`] — LRU slate caches with write-through / interval / on-evict
//!   flush policies into the `muppet-slatestore` cluster (§4.2);
//! * [`http`] — the per-node HTTP server for live slate reads (§4.4);
//! * [`metrics`] — latency histograms and counters.
//!
//! The cluster runs over a pluggable wire ([`muppet_net::Transport`],
//! selected via [`engine::TransportKind`]): by default *in-process* —
//! machines are actor-like structs whose worker threads are real OS
//! threads, and inter-machine "networking" is direct queue hand-off — or
//! over real TCP, where each engine process owns one machine of a static
//! cluster (`muppetd`) and failure detection rides on actual connection
//! errors. The distribution logic — hash rings, direct worker→worker event
//! passing, failure detection on send — is the paper's either way. See
//! DESIGN.md §1 for the simulation substitution notes and §5 for the
//! transport.

pub mod cache;
pub mod dispatch;
pub mod dlq;
pub mod engine;
pub mod http;
pub mod ingestlog;
pub mod lru;
pub mod master;
pub mod metrics;
pub mod netstore;
pub mod overflow;
pub mod queue;

pub use cache::{FlushPolicy, SlateCache};
pub use engine::{Engine, EngineConfig, EngineKind, EngineStats, TransportKind};
pub use overflow::OverflowPolicy;
