//! X16 — elastic membership: a machine joins a *running* cluster.
//!
//! The paper's cluster only ever shrinks (§4.3 failure drops); the
//! ROADMAP north-star needs growth under load. This experiment measures
//! the two costs of a live join on a partitionable per-key-counter
//! workload (an I/O-weight updater — each update parks its worker the
//! way a write-through store round trip would — with keys spread evenly
//! over the ring):
//!
//! * **throughput before vs after** the join — the added machine's
//!   workers must raise (never lower) the sustained event rate;
//! * **handoff stall** — the wall time of the membership protocol
//!   itself (prepare: flush moved slates under the membership write
//!   lock; commit: install the epoch), during which updaters briefly
//!   serialize against the ring swap.
//!
//! Correctness is asserted, not sampled: after both phases every
//! per-key count must sum to exactly the number of submitted events and
//! every loss counter must be zero — the join is loss-free.
//!
//! Results are also written to `BENCH_x16.json` so CI records the
//! trajectory (same pattern as x15).

use std::sync::Arc;
use std::time::{Duration, Instant};

use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, Updater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
use muppet_runtime::overflow::OverflowPolicy;
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_slatestore::util::TempDir;

use crate::table::{rate, Table};
use crate::Scale;

const KEYS: usize = 256;
/// Per-update park time: the simulated store/IO round trip each slate
/// write pays. Parking (not spinning) is what a write-through flush or a
/// remote read does to a worker, and it is what an added machine's
/// workers genuinely parallelize — even on a single-core host, where a
/// CPU-spin workload could show no join speedup at all.
const UPDATE_IO: Duration = Duration::from_micros(120);

/// A per-key counter with deliberate I/O weight — the partitionable
/// workload: every key is independent, so more machines = more of the
/// ring working in parallel.
struct SpinCounter;

impl Updater for SpinCounter {
    fn name(&self) -> &str {
        "spin-counter"
    }
    fn update(&self, _ctx: &mut dyn Emitter, _event: &Event, slate: &mut Slate) {
        std::thread::sleep(UPDATE_IO);
        slate.incr_counter(1);
    }
}

fn workflow() -> Workflow {
    let mut b = Workflow::builder("x16-elasticity");
    b.external_stream("S1");
    b.updater("spin-counter", &["S1"]);
    b.build().unwrap()
}

/// Submit `n` events round-robin over the key space and wait for the
/// cluster to fully drain. Returns the wall time.
fn drive(engine: &Engine, n: usize, seq_base: u64) -> Duration {
    let t0 = Instant::now();
    for i in 0..n {
        engine
            .submit(Event::new(
                "S1",
                seq_base + i as u64,
                Key::from(format!("k{:03}", i % KEYS)),
                "e",
            ))
            .expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(300)), "x16 phase did not drain");
    t0.elapsed()
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X16",
        "elastic membership: live machine join (throughput + handoff stall)",
        "DESIGN.md §7; beyond the paper (§4.3 only shrinks)",
    );
    let n = scale.events(30_000);
    let machines_before = 1usize;

    let dir = TempDir::new("x16-elasticity").expect("temp store dir");
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: machines_before,
        workers_per_machine: 1,
        queue_capacity: 1 << 14,
        overflow: OverflowPolicy::SourceThrottle, // zero-loss configuration
        ..EngineConfig::default()
    };
    let engine = Engine::start(
        workflow(),
        OperatorSet::new().updater(SpinCounter),
        cfg,
        Some(Arc::clone(&store)),
    )
    .unwrap();

    // Warm the caches / rings, then measure the pre-join steady state.
    drive(&engine, n / 10, 0);
    let pre = drive(&engine, n, 1_000_000);

    // The join, timed: reserve → prepare (flush every moved slate under
    // the membership lock) → commit. Submissions are *not* stopped
    // around it in real deployments; here the phases are separated so
    // the stall and the rates are each measured cleanly.
    let t_join = Instant::now();
    let joined = engine.join_machine().expect("join");
    let stall = t_join.elapsed();
    assert!(engine.ring_contains(joined), "joiner must enter the ring");

    let post = drive(&engine, n, 2_000_000);

    // Loss-free: every submitted event is in exactly one per-key count.
    let submitted = (n / 10 + 2 * n) as u64;
    let mut total = 0u64;
    for k in 0..KEYS {
        if let Some(bytes) = engine.read_slate("spin-counter", &Key::from(format!("k{k:03}"))) {
            total += String::from_utf8(bytes).unwrap().parse::<u64>().unwrap();
        }
    }
    assert_eq!(total, submitted, "per-key counts must sum to every submitted event");
    let stats = engine.shutdown();
    assert_eq!(stats.lost_machine_failure, 0, "a join must not lose events");
    assert_eq!(stats.lost_in_queues, 0);
    assert_eq!(stats.dropped_overflow, 0);
    assert_eq!(stats.epoch, 1, "one join = one epoch");

    let pre_rate = n as f64 / pre.as_secs_f64().max(1e-9);
    let post_rate = n as f64 / post.as_secs_f64().max(1e-9);
    let speedup = post_rate / pre_rate.max(1e-9);

    let mut table = Table::new(["phase", "machines", "events", "wall time", "events/s"]);
    table.row([
        "pre-join".to_string(),
        machines_before.to_string(),
        n.to_string(),
        format!("{pre:.2?}"),
        rate(n, pre),
    ]);
    table.row([
        "post-join".to_string(),
        (machines_before + 1).to_string(),
        n.to_string(),
        format!("{post:.2?}"),
        rate(n, post),
    ]);
    table.print();
    println!(
        "\nshape check: the join stalled processing for {stall:.2?} (prepare flush + epoch \
         install), forwarded {} in-flight events to the new owner, and post-join throughput is \
         {speedup:.2}× pre-join on {} cores",
        stats.forwarded,
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    );
    // The gate: adding a machine must not lose throughput. A small noise
    // margin for loaded shared runners; the committed full-scale run
    // (BENCH_x16.json) records the real ratio.
    assert!(
        speedup >= 0.9,
        "post-join throughput collapsed: {post_rate:.0} vs {pre_rate:.0} events/s"
    );

    let doc = Json::obj([
        ("experiment", Json::str("x16")),
        ("workload", Json::str("per-key spin counters (partitionable)")),
        ("machines_before", Json::num(machines_before as f64)),
        ("machines_after", Json::num((machines_before + 1) as f64)),
        ("events_per_phase", Json::num(n as f64)),
        ("pre_join_events_per_sec", Json::num(pre_rate)),
        ("post_join_events_per_sec", Json::num(post_rate)),
        ("post_vs_pre_speedup", Json::num(speedup)),
        ("handoff_stall_ms", Json::num(stall.as_secs_f64() * 1e3)),
        ("forwarded_events", Json::num(stats.forwarded as f64)),
        ("lost_events", Json::num(0.0)),
        ("epoch_after", Json::num(stats.epoch as f64)),
    ]);
    match std::fs::write("BENCH_x16.json", doc.to_pretty() + "\n") {
        Ok(()) => println!("wrote BENCH_x16.json"),
        Err(e) => eprintln!("could not write BENCH_x16.json: {e}"),
    }
}
