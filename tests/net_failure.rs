//! §4.3 over a real wire: three engines in this process, each owning one
//! machine of a TCP loopback cluster. Killing one node's process
//! (listener + queues) must drive the full failure protocol from *actual
//! connection errors*: the sender reports to the master, the broadcast
//! removes the machine from every survivor's ring, and the in-flight
//! events are lost-and-logged — never retried.

use std::time::{Duration, Instant};

use muppet::prelude::*;

/// A plain per-key counter updater (no JSON): full control over inputs.
struct CountUpdater;

impl Updater for CountUpdater {
    fn name(&self) -> &str {
        "counter"
    }
    fn update(&self, _ctx: &mut dyn Emitter, _event: &Event, slate: &mut Slate) {
        let n = slate.as_str().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
        slate.replace((n + 1).to_string().into_bytes());
    }
}

fn count_workflow() -> Workflow {
    let mut b = Workflow::builder("net-count");
    b.external_stream("S1");
    b.updater("counter", &["S1"]);
    b.build().unwrap()
}

fn loopback_topology(n: usize) -> Topology {
    Topology::loopback_ephemeral(n, false).unwrap()
}

fn start_node(topology: &Topology, local: usize) -> Engine {
    let cfg = EngineConfig {
        machines: topology.len(),
        workers_per_machine: 2,
        transport: TransportKind::Tcp { topology: topology.clone(), local },
        ..EngineConfig::default()
    };
    Engine::start(count_workflow(), OperatorSet::new().updater(CountUpdater), cfg, None).unwrap()
}

fn total_processed(nodes: &[&Engine]) -> u64 {
    nodes.iter().map(|n| n.stats().processed).sum()
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while !cond() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

#[test]
fn events_route_across_the_wire_and_slates_read_from_any_node() {
    let topology = loopback_topology(3);
    let a = start_node(&topology, 0);
    let b = start_node(&topology, 1);
    let c = start_node(&topology, 2);

    const KEYS: usize = 40;
    const PER_KEY: usize = 25;
    for round in 0..PER_KEY {
        for k in 0..KEYS {
            a.submit(Event::new(
                "S1",
                (round * KEYS + k) as u64,
                Key::from(format!("key-{k}")),
                "e",
            ))
            .unwrap();
        }
    }
    assert!(
        wait_until(Duration::from_secs(20), || total_processed(&[&a, &b, &c])
            == (KEYS * PER_KEY) as u64),
        "cluster did not process all {} events (got {})",
        KEYS * PER_KEY,
        total_processed(&[&a, &b, &c])
    );
    // Work actually crossed the wire: node A cannot own every key's arc.
    assert!(b.stats().processed + c.stats().processed > 0, "no events left node A");

    // Every key's slate is readable from every node (remote reads for keys
    // owned elsewhere), and all counts are exact.
    for node in [&a, &b, &c] {
        for k in 0..KEYS {
            let bytes = node
                .read_slate("counter", &Key::from(format!("key-{k}")))
                .unwrap_or_else(|| panic!("key-{k} unreadable"));
            assert_eq!(String::from_utf8(bytes).unwrap(), PER_KEY.to_string(), "key-{k}");
        }
    }

    a.shutdown();
    b.shutdown();
    c.shutdown();
}

#[test]
fn killing_a_peer_triggers_report_broadcast_ring_drop_and_loss_logging() {
    let topology = loopback_topology(3);
    let a = start_node(&topology, 0); // master
    let b = start_node(&topology, 1);
    let c = start_node(&topology, 2);

    // Warm traffic so every node owns some keys and pools are live.
    for i in 0..120u64 {
        a.submit(Event::new("S1", i, Key::from(format!("warm-{i}")), "e")).unwrap();
    }
    assert!(wait_until(Duration::from_secs(20), || total_processed(&[&a, &b, &c]) == 120));

    // Kill node B: its listener closes and its queues die — exactly what a
    // crashed muppetd looks like to its peers.
    let b_stats = b.shutdown();
    assert_eq!(b_stats.lost_in_queues, 0, "B drained before the kill");

    // Keep submitting from A. Sends that hash to B hit dead sockets; §4.3
    // requires: report to master → broadcast → every ring drops B → the
    // undeliverable events are lost (and logged), not retried.
    let mut submitted_after_kill = 0u64;
    let detected = wait_until(Duration::from_secs(30), || {
        for i in 0..10u64 {
            let n = 1000 + submitted_after_kill * 10 + i;
            a.submit(Event::new("S1", n, Key::from(format!("post-{n}")), "e")).unwrap();
        }
        submitted_after_kill += 1;
        a.failure_detected(1) && c.failure_detected(1)
    });
    assert!(detected, "failure never detected/broadcast after {submitted_after_kill}0 sends");

    // The master (A) received the report.
    assert!(a.failure_detected(1), "master must know about B");
    // The broadcast dropped B from every survivor's ring.
    assert!(
        wait_until(Duration::from_secs(5), || !a.ring_contains(1) && !c.ring_contains(1)),
        "rings must drop B after the broadcast"
    );
    // The in-flight events were lost and logged on whichever sender hit
    // the dead connection.
    let lost: u64 = a.stats().lost_machine_failure + c.stats().lost_machine_failure;
    assert!(lost >= 1, "at least one event must be lost to the dead machine");
    let drops: Vec<String> = a.recent_drops().into_iter().chain(c.recent_drops()).collect();
    assert!(
        drops.iter().any(|d| d.contains("lost to failed machine 1")),
        "loss must be logged, got {drops:?}"
    );

    // The survivors keep accepting and processing new traffic, with B's
    // arcs reassigned.
    let before = total_processed(&[&a, &c]);
    for i in 0..90u64 {
        a.submit(Event::new("S1", 100_000 + i, Key::from(format!("tail-{i}")), "e")).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(20), || total_processed(&[&a, &c]) >= before + 90),
        "survivors must process post-failure traffic"
    );

    a.shutdown();
    c.shutdown();
}

/// The §4.3 loss-accounting contract across the async batching boundary,
/// at transport level where the undelivered count is exact: a peer killed
/// mid-stream with a non-empty outbound queue produces *one* failure
/// report and *one* broadcast, and the lost set handed back for
/// lost-and-logged accounting holds exactly the undelivered batched
/// events — no event dropped from the books, none double-counted.
#[test]
fn killed_peer_with_queued_batch_is_one_report_with_exact_loss_accounting() {
    use muppet::core::sync::Mutex;
    use muppet::net::{
        BatchConfig, ClusterHandler, MachineId, NetError, TcpTransport, Transport, WireEvent,
    };
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Weak};

    /// Mimics the engine's handler: counts deliveries, routes an async
    /// send failure into report_failure (like `EngineHandler`), and
    /// fans the master-side report out as a broadcast.
    #[derive(Default)]
    struct Proto {
        delivered: AtomicUsize,
        lost: Mutex<Vec<WireEvent>>,
        reports: Mutex<Vec<MachineId>>,
        broadcasts: Mutex<Vec<MachineId>>,
        transport: Mutex<Weak<TcpTransport>>,
    }

    impl ClusterHandler for Proto {
        fn deliver_event(&self, _dest: MachineId, _ev: WireEvent) -> Result<(), NetError> {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn handle_send_failure(&self, dest: MachineId, lost: Vec<WireEvent>) {
            self.lost.lock().extend(lost);
            // Take the transport out of the lock before the nested call
            // (report → broadcast re-enters this handler).
            let transport = self.transport.lock().upgrade();
            if let Some(t) = transport {
                t.report_failure(dest, 0);
            }
        }
        fn handle_failure_report(&self, failed: MachineId, epoch: u64) {
            self.reports.lock().push(failed);
            let transport = self.transport.lock().upgrade();
            if let Some(t) = transport {
                t.broadcast_failure(failed, epoch);
            }
        }
        fn handle_failure_broadcast(&self, failed: MachineId, _epoch: u64) {
            self.broadcasts.lock().push(failed);
        }
        fn read_local_slate(&self, _d: MachineId, _u: &str, _k: &[u8]) -> Option<Vec<u8>> {
            None
        }
    }

    let topology = loopback_topology(2);
    // Age bound long enough that the post-kill events are all still
    // queued when the flush fires against the dead peer.
    let batch = BatchConfig { batch_max: 1024, flush_us: 500_000, queue_capacity: 4096 };
    let t0 = TcpTransport::new_with_batching(topology.clone(), 0, batch).unwrap();
    let t1 = TcpTransport::new(topology, 1).unwrap();
    let h0 = Arc::new(Proto::default());
    let h1 = Arc::new(Proto::default());
    *h0.transport.lock() = Arc::downgrade(&t0);
    t0.register(Arc::downgrade(&h0) as Weak<dyn ClusterHandler>);
    t1.register(Arc::downgrade(&h1) as Weak<dyn ClusterHandler>);
    let listener1 = t1.start_listener().unwrap();

    let ev = || WireEvent {
        op: 0,
        event: Event::new("S1", 1, Key::from("k"), "v"),
        injected_us: 0,
        redirected: false,
        external: true,
        thread_hint: None,
        forwards: 0,
    };

    // Mid-stream: the pipelined connection to node 1 is live and has
    // carried traffic.
    for _ in 0..3 {
        t0.send_event(1, ev()).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(10), || h1.delivered.load(Ordering::Relaxed) == 3),
        "warm events never delivered"
    );

    // Kill node 1 (listener + transport — what a dead muppetd looks
    // like), and let the close propagate before the next flush.
    drop(listener1);
    drop(t1);
    std::thread::sleep(Duration::from_millis(400));

    // Fill the outbound queue while the peer is a corpse. All of these
    // are accepted (async path) and none can ever be delivered.
    const UNDELIVERED: usize = 23;
    for _ in 0..UNDELIVERED {
        t0.send_event(1, ev()).unwrap();
    }
    assert!(t0.outbound_backlog() > 0, "events must be queued, not sent inline");

    // The flush hits the dead wire: one detection, everything accounted.
    assert!(
        wait_until(Duration::from_secs(10), || h0.lost.lock().len() == UNDELIVERED),
        "lost {} of {UNDELIVERED} undelivered events",
        h0.lost.lock().len()
    );
    // The report/broadcast chain runs on the sender thread right after
    // the lost set is recorded; give it a moment to complete.
    assert!(
        wait_until(Duration::from_secs(5), || !h0.broadcasts.lock().is_empty()),
        "broadcast never fired"
    );
    let reports = h0.reports.lock().clone();
    let broadcasts = h0.broadcasts.lock().clone();
    assert_eq!(reports, vec![1], "exactly one failure report");
    assert_eq!(broadcasts, vec![1], "exactly one broadcast");
    assert_eq!(t0.outbound_backlog(), 0, "the dead peer's queue is fully drained");
    assert_eq!(t0.stats().send_failures.load(Ordering::Relaxed), 1);

    // §4.3: the machine never comes back — later sends fail fast, and
    // that is a *synchronous* Unreachable (the engine's per-event path).
    assert!(matches!(t0.send_event(1, ev()), Err(NetError::Unreachable(1))));
}

/// §4.4 read availability: a slate read addressed to a machine that has
/// died must not surface `Unreachable` — it falls back to the current
/// owner / the slate store and returns the last flushed value.
#[test]
fn slate_read_from_killed_owner_falls_back_to_the_store() {
    use muppet::slatestore::util::TempDir;
    use std::sync::Arc;

    let topology = loopback_topology(3);
    let dir = TempDir::new("read-fallback").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let mk = |local: usize| {
        let cfg = EngineConfig {
            machines: topology.len(),
            workers_per_machine: 2,
            // Write-through: every update reaches the store before the
            // worker moves on, so "last flushed value" == last value.
            flush: FlushPolicy::WriteThrough,
            transport: TransportKind::Tcp { topology: topology.clone(), local },
            store_host: Some(0),
            ..EngineConfig::default()
        };
        let store = (local == 0).then(|| Arc::clone(&store));
        Engine::start(count_workflow(), OperatorSet::new().updater(CountUpdater), cfg, store)
            .unwrap()
    };
    let a = mk(0); // master + store host
    let b = mk(1);
    let c = mk(2);

    // Find keys owned by the non-store workers (killing the store host
    // would conflate the two failure modes).
    let owned_by = |m: usize| {
        (0..200)
            .map(|i| Key::from(format!("fk-{i}")))
            .find(|k| a.owner_machine("counter", k) == Some(m))
            .expect("some key hashes to every 3-node arc")
    };
    let key_b = owned_by(1);
    for _ in 0..5 {
        a.submit(Event::new("S1", 1, key_b.clone(), "e")).unwrap();
    }
    assert!(wait_until(Duration::from_secs(20), || total_processed(&[&a, &b, &c]) == 5));
    // Sanity: the live owner serves the read remotely.
    assert_eq!(
        a.read_slate("counter", &key_b).map(|b| String::from_utf8(b).unwrap()).as_deref(),
        Some("5")
    );

    // Kill the owner. No traffic is sent afterwards, so §4.3 detection
    // has NOT run: the ring still names the corpse as owner.
    b.shutdown();
    assert!(a.ring_contains(1), "no traffic yet: the ring still holds the dead owner");
    let read = a.read_slate("counter", &key_b);
    assert_eq!(
        read.map(|b| String::from_utf8(b).unwrap()).as_deref(),
        Some("5"),
        "a read addressed to a dead machine must fall back to the store, not error"
    );
    // The same read works from the store host's own engine and from the
    // other survivor (RemoteBackend path).
    assert_eq!(
        c.read_slate("counter", &key_b).map(|b| String::from_utf8(b).unwrap()).as_deref(),
        Some("5")
    );

    a.shutdown();
    c.shutdown();
}

/// Restart re-identification (DESIGN.md §11): a machine that died, was
/// detected, and was dropped from every ring comes back *under its old
/// id*, announces itself to the master, and must (1) re-enter every
/// survivor's ring at its old position, (2) be cleared from the failed
/// set, (3) receive routed traffic again, and (4) — the death-ledger
/// regression — have a SECOND death detected and logged afresh rather
/// than silently absorbed by the first incarnation's ledger entry.
#[test]
fn restarted_machine_reintroduces_rejoins_and_second_death_is_redetected() {
    let topology = loopback_topology(3);
    let a = start_node(&topology, 0); // master
    let b = start_node(&topology, 1);
    let c = start_node(&topology, 2);

    for i in 0..120u64 {
        a.submit(Event::new("S1", i, Key::from(format!("warm-{i}")), "e")).unwrap();
    }
    assert!(wait_until(Duration::from_secs(20), || total_processed(&[&a, &b, &c]) == 120));

    // First death: kill B, drive traffic until §4.3 drops it everywhere.
    b.shutdown();
    let mut n = 0u64;
    let detected = wait_until(Duration::from_secs(30), || {
        for i in 0..10u64 {
            a.submit(Event::new("S1", 1000 + n * 10 + i, Key::from(format!("p-{n}-{i}")), "e"))
                .unwrap();
        }
        n += 1;
        a.failure_detected(1) && c.failure_detected(1) && !a.ring_contains(1)
    });
    assert!(detected, "first death never detected");

    // Restart B under its old id and announce the restart to the master.
    let b2 = start_node(&topology, 1);
    assert!(
        wait_until(Duration::from_secs(10), || b2.announce_restart().is_ok()),
        "restart announcement never reached the master"
    );
    assert!(
        wait_until(Duration::from_secs(20), || a.ring_contains(1)
            && c.ring_contains(1)
            && b2.ring_contains(1)),
        "restarted machine never re-entered every ring"
    );
    assert!(!a.failure_detected(1), "the failed mark must clear on reintroduction");

    // Traffic reaches the reborn machine again.
    let before = total_processed(&[&a, &c, &b2]);
    for i in 0..200u64 {
        a.submit(Event::new("S1", 100_000 + i, Key::from(format!("back-{i}")), "e")).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(20), || total_processed(&[&a, &c, &b2]) >= before + 200),
        "post-restart traffic not fully processed (got {} of {})",
        total_processed(&[&a, &c, &b2]) - before,
        200
    );
    assert!(b2.stats().processed > 0, "no events reached the restarted machine");

    // Second death: without the ledger clear, the first incarnation's
    // entry would swallow the new incident's log line.
    b2.shutdown();
    let mut m = 0u64;
    let redetected = wait_until(Duration::from_secs(30), || {
        for i in 0..10u64 {
            a.submit(Event::new("S1", 200_000 + m * 10 + i, Key::from(format!("q-{m}-{i}")), "e"))
                .unwrap();
        }
        m += 1;
        a.failure_detected(1) && c.failure_detected(1)
    });
    assert!(redetected, "the restarted incarnation's death was never re-detected");

    a.shutdown();
    c.shutdown();
}

#[test]
fn muppet1_engine_works_over_tcp() {
    let topology = loopback_topology(2);
    let mk = |local| {
        let cfg = EngineConfig {
            kind: EngineKind::Muppet1,
            machines: 2,
            workers_per_op: 2,
            transport: TransportKind::Tcp { topology: topology.clone(), local },
            ..EngineConfig::default()
        };
        Engine::start(count_workflow(), OperatorSet::new().updater(CountUpdater), cfg, None)
            .unwrap()
    };
    let a = mk(0);
    let b = mk(1);

    for i in 0..200u64 {
        a.submit(Event::new("S1", i, Key::from(format!("k-{}", i % 16)), "e")).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(20), || total_processed(&[&a, &b]) == 200),
        "1.0 cluster did not process all events (got {})",
        total_processed(&[&a, &b])
    );
    let mut sum = 0u64;
    for k in 0..16 {
        let bytes = a
            .read_slate("counter", &Key::from(format!("k-{k}")))
            .unwrap_or_else(|| panic!("k-{k} unreadable"));
        sum += String::from_utf8(bytes).unwrap().parse::<u64>().unwrap();
    }
    assert_eq!(sum, 200, "per-key counts must sum to the submissions");

    a.shutdown();
    b.shutdown();
}
