//! Live HTTP request counters per site section (§2's motivating list:
//! "maintaining live counters of the number of HTTP requests made to
//! various parts of a Web site").
//!
//! Workflow: `S1 (request log) → U1`, a single updater keyed by site
//! section whose slates are the live counters: total requests, per-status
//! class counts, and total bytes. The slates are the application's output,
//! queried live over the §4.4 HTTP interface.

use muppet_core::event::Event;
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, Updater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;

/// External request-log stream.
pub const REQUEST_STREAM: &str = "S1";
/// The updater's name.
pub const SECTION_COUNTER: &str = "section-counter";

/// The request-counting workflow (a single updater — the simplest possible
/// MapUpdate app).
pub fn workflow() -> Workflow {
    let mut b = Workflow::builder("http-counters");
    b.external_stream(REQUEST_STREAM);
    b.updater(SECTION_COUNTER, &[REQUEST_STREAM]);
    b.build().expect("static workflow is valid")
}

/// Per-section counters. Slate JSON:
/// `{"count": n, "status": {"2xx": ..., "3xx": ..., "4xx": ..., "5xx": ...}, "bytes": b}`.
pub struct SectionCounter {
    name: String,
}

impl SectionCounter {
    /// Default-named updater.
    pub fn new() -> Self {
        SectionCounter { name: SECTION_COUNTER.to_string() }
    }

    /// Extract `(count, bytes)` from a slate.
    pub fn totals(slate: &Slate) -> (u64, u64) {
        let v = slate.as_json();
        (
            v.as_ref().and_then(|v| v.get("count").and_then(Json::as_u64)).unwrap_or(0),
            v.as_ref().and_then(|v| v.get("bytes").and_then(Json::as_u64)).unwrap_or(0),
        )
    }

    /// Extract a status-class count (`"2xx"` etc.) from a slate.
    pub fn status_count(slate: &Slate, class: &str) -> u64 {
        slate
            .as_json()
            .and_then(|v| v.get("status").and_then(|s| s.get(class).and_then(Json::as_u64)))
            .unwrap_or(0)
    }
}

impl Default for SectionCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl Updater for SectionCounter {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, _ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let Ok(req) = Json::from_payload(&event.value) else { return };
        let status = req.get("status").and_then(Json::as_u64).unwrap_or(200);
        let bytes = req.get("bytes").and_then(Json::as_u64).unwrap_or(0);
        let class = match status {
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            _ => "5xx",
        };
        // Resident slate: mutate counters in place, including the nested
        // per-status-class object.
        let state = slate.obj_mut_or(|| {
            Json::obj([
                ("count", Json::num(0)),
                ("status", Json::obj(["2xx", "3xx", "4xx", "5xx"].map(|c| (c, Json::num(0))))),
                ("bytes", Json::num(0)),
            ])
        });
        let count = state.get("count").and_then(Json::as_u64).unwrap_or(0);
        let total_bytes = state.get("bytes").and_then(Json::as_u64).unwrap_or(0);
        state.set("count", Json::num((count + 1) as f64));
        if state.get("status").and_then(Json::as_obj).is_none() {
            // A foreign payload without the nested object: rebuild it.
            state.set("status", Json::obj(["2xx", "3xx", "4xx", "5xx"].map(|c| (c, Json::num(0)))));
        }
        let classes = state.get_mut("status").expect("status object just ensured");
        let n = classes.get(class).and_then(Json::as_u64).unwrap_or(0);
        classes.set(class, Json::num((n + 1) as f64));
        state.set("bytes", Json::num((total_bytes + bytes) as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::event::Key;
    use muppet_core::reference::ReferenceExecutor;
    use muppet_workloads::webrequests::WebRequestGenerator;

    #[test]
    fn counters_match_generated_traffic() {
        let wf = workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_updater(SectionCounter::new());
        let mut gen = WebRequestGenerator::new(4, 1000.0);
        let events = gen.take(REQUEST_STREAM, 2000);
        // Hand-count ground truth.
        let mut expected: std::collections::BTreeMap<String, (u64, u64)> = Default::default();
        for ev in &events {
            let v = Json::from_payload(&ev.value).unwrap();
            let section = ev.key.as_str().unwrap().to_string();
            let bytes = v.get("bytes").unwrap().as_u64().unwrap();
            let e = expected.entry(section).or_default();
            e.0 += 1;
            e.1 += bytes;
        }
        for ev in events {
            exec.push_external(REQUEST_STREAM, ev);
        }
        exec.run_to_completion().unwrap();
        for (section, (count, bytes)) in &expected {
            let slate = exec.slate(SECTION_COUNTER, &Key::from(section.as_str())).unwrap();
            assert_eq!(SectionCounter::totals(slate), (*count, *bytes), "section {section}");
        }
    }

    #[test]
    fn status_classes_bucket_correctly() {
        let wf = workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_updater(SectionCounter::new());
        for (i, status) in [200u32, 201, 304, 404, 500, 503].iter().enumerate() {
            let v = Json::obj([
                ("path", Json::str("/x")),
                ("status", Json::num(*status as f64)),
                ("bytes", Json::num(10)),
            ]);
            exec.push_external(
                REQUEST_STREAM,
                Event::new(
                    REQUEST_STREAM,
                    i as u64,
                    Key::from("home"),
                    v.to_compact().into_bytes(),
                ),
            );
        }
        exec.run_to_completion().unwrap();
        let slate = exec.slate(SECTION_COUNTER, &Key::from("home")).unwrap();
        assert_eq!(SectionCounter::status_count(slate, "2xx"), 2);
        assert_eq!(SectionCounter::status_count(slate, "3xx"), 1);
        assert_eq!(SectionCounter::status_count(slate, "4xx"), 1);
        assert_eq!(SectionCounter::status_count(slate, "5xx"), 2);
        assert_eq!(SectionCounter::totals(slate), (6, 60));
    }
}
