//! Slate-store benchmarks: the §4.2 data path — memtable writes, SSTable
//! point reads, WAL appends, quorum operations.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use muppet_slatestore::cluster::{Consistency, StoreCluster, StoreConfig};
use muppet_slatestore::device::StorageDevice;
use muppet_slatestore::memtable::Memtable;
use muppet_slatestore::sstable::SSTableWriter;
use muppet_slatestore::types::{Cell, CellKey};
use muppet_slatestore::util::TempDir;
use muppet_slatestore::wal::WalWriter;

fn bench_memtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("memtable");
    g.throughput(Throughput::Elements(1));
    g.bench_function("put_overwrite_hot_key", |b| {
        let mut mt = Memtable::new();
        let key = CellKey::new("hot-retailer", "U1");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            mt.put(key.clone(), Cell::live(i.to_string(), i, None));
        })
    });
    g.bench_function("put_100_distinct_keys", |b| {
        b.iter_batched(
            Memtable::new,
            |mut mt| {
                for i in 0..100u64 {
                    mt.put(CellKey::new(format!("k{i}"), "U"), Cell::live("v", i, None));
                }
                mt
            },
            BatchSize::SmallInput,
        )
    });
    let mut mt = Memtable::new();
    for i in 0..10_000u64 {
        mt.put(CellKey::new(format!("k{i:05}"), "U"), Cell::live("v", i, None));
    }
    g.bench_function("get_10k_entries", |b| {
        b.iter(|| mt.get(black_box(&CellKey::new("k05000", "U"))))
    });
    g.finish();
}

fn bench_sstable(c: &mut Criterion) {
    let mut g = c.benchmark_group("sstable");
    let dir = TempDir::new("bench-sst").unwrap();
    let device = Arc::new(StorageDevice::default());
    let mut w = SSTableWriter::create(dir.file("bench.sst"), Arc::clone(&device), 50_000).unwrap();
    for i in 0..50_000u64 {
        w.add(
            &CellKey::new(format!("row-{i:08}"), "U1"),
            &Cell::live(format!("value-{i}"), i, None),
        )
        .unwrap();
    }
    let table = w.finish().unwrap();
    g.bench_function("point_read_hit_50k_rows", |b| {
        b.iter(|| table.get(black_box(&CellKey::new("row-00025000", "U1"))).unwrap())
    });
    g.bench_function("point_read_bloom_miss", |b| {
        b.iter(|| table.get(black_box(&CellKey::new("absent-row", "U1"))).unwrap())
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    let dir = TempDir::new("bench-wal").unwrap();
    let mut w = WalWriter::create(dir.file("bench.log"), false).unwrap();
    let key = CellKey::new("user-12345", "profile");
    let cell = Cell::live(vec![0u8; 256], 1, Some(3600));
    g.throughput(Throughput::Bytes(256));
    g.bench_function("append_256b_buffered", |b| b.iter(|| w.append(&key, &cell).unwrap()));
    g.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    let dir = TempDir::new("bench-cluster").unwrap();
    let store = StoreCluster::open(
        dir.path(),
        StoreConfig { nodes: 3, replication: 3, ..Default::default() },
    )
    .unwrap();
    let slate = br#"{"count": 42, "last_seen": 170000}"#;
    let mut i = 0u64;
    for level in [Consistency::One, Consistency::Quorum, Consistency::All] {
        g.bench_function(format!("put_{level:?}"), |b| {
            b.iter(|| {
                i += 1;
                store
                    .put_with(&CellKey::new(format!("k{}", i % 128), "U"), slate, None, i, level)
                    .unwrap()
            })
        });
        g.bench_function(format!("get_{level:?}"), |b| {
            b.iter(|| {
                i += 1;
                store.get_with(&CellKey::new(format!("k{}", i % 128), "U"), i, level).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_memtable, bench_sstable, bench_wal, bench_cluster);
criterion_main!(benches);
