//! The memtable: the in-memory write buffer of a storage node.
//!
//! §4.2's design leans on exactly this structure: "we minimize disk I/O for
//! writing at the key-value store if we devote the store's main memory to
//! buffering writes. Overwrites of the same row ... are relatively
//! inexpensive if the row is still in memory at the time of the write."
//! Repeated slate flushes for a hot key coalesce here and reach disk once
//! per memtable flush, not once per write.

use std::collections::BTreeMap;

use crate::types::{Cell, CellKey};

/// Sorted in-memory buffer of the newest cell per key.
#[derive(Debug, Default)]
pub struct Memtable {
    cells: BTreeMap<CellKey, Cell>,
    approx_bytes: usize,
    /// Writes absorbed by overwriting an in-memory cell (the §4.2 win).
    overwrites: u64,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Insert or overwrite a cell. Last-write-wins by call order; callers
    /// supply monotone `write_ts` values.
    pub fn put(&mut self, key: CellKey, cell: Cell) {
        let key_size = key.approx_size();
        let cell_size = cell.approx_size();
        match self.cells.insert(key, cell) {
            Some(old) => {
                // Same key stays resident: swap only the cell's footprint.
                self.overwrites += 1;
                self.approx_bytes = self.approx_bytes.saturating_sub(old.approx_size()) + cell_size;
            }
            None => self.approx_bytes += key_size + cell_size,
        }
    }

    /// Lookup the newest cell for `key` (tombstones included — the caller
    /// interprets them).
    pub fn get(&self, key: &CellKey) -> Option<&Cell> {
        self.cells.get(key)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are buffered.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Approximate heap footprint in bytes; drives flush triggering.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Overwrite hits since creation (write coalescing effectiveness).
    pub fn overwrites(&self) -> u64 {
        self.overwrites
    }

    /// Iterate cells in key order (for SSTable flush).
    pub fn iter(&self) -> impl Iterator<Item = (&CellKey, &Cell)> {
        self.cells.iter()
    }

    /// Drain into a sorted vec, leaving the memtable empty.
    pub fn drain_sorted(&mut self) -> Vec<(CellKey, Cell)> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.cells).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(row: &str) -> CellKey {
        CellKey::new(row.as_bytes(), "U1")
    }

    #[test]
    fn put_get_roundtrip() {
        let mut mt = Memtable::new();
        assert!(mt.is_empty());
        mt.put(k("a"), Cell::live("v1", 1, None));
        assert_eq!(mt.get(&k("a")).unwrap().value.as_ref(), b"v1");
        assert_eq!(mt.get(&k("b")), None);
        assert_eq!(mt.len(), 1);
        assert!(!mt.is_empty());
    }

    #[test]
    fn overwrites_keep_latest_and_count() {
        let mut mt = Memtable::new();
        mt.put(k("hot"), Cell::live("v1", 1, None));
        mt.put(k("hot"), Cell::live("v2", 2, None));
        mt.put(k("hot"), Cell::live("v3", 3, None));
        assert_eq!(mt.len(), 1);
        assert_eq!(mt.get(&k("hot")).unwrap().value.as_ref(), b"v3");
        assert_eq!(mt.overwrites(), 2, "hot-key writes coalesce in memory (§4.2)");
    }

    #[test]
    fn byte_accounting_tracks_growth_and_shrink() {
        let mut mt = Memtable::new();
        mt.put(k("a"), Cell::live(vec![0u8; 1000], 1, None));
        let big = mt.approx_bytes();
        assert!(big >= 1000);
        mt.put(k("a"), Cell::live(vec![0u8; 10], 2, None));
        assert!(mt.approx_bytes() < big, "shrinking overwrite reduces accounting");
        let drained = mt.drain_sorted();
        assert_eq!(drained.len(), 1);
        assert_eq!(mt.approx_bytes(), 0);
        assert!(mt.is_empty());
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut mt = Memtable::new();
        for row in ["zeta", "alpha", "mid"] {
            mt.put(k(row), Cell::live("v", 1, None));
        }
        let rows: Vec<&[u8]> = mt.iter().map(|(key, _)| key.row.as_ref()).collect();
        assert_eq!(rows, vec![b"alpha".as_ref(), b"mid".as_ref(), b"zeta".as_ref()]);
    }

    #[test]
    fn tombstones_are_stored() {
        let mut mt = Memtable::new();
        mt.put(k("a"), Cell::live("v", 1, None));
        mt.put(k("a"), Cell::tombstone(2));
        assert!(mt.get(&k("a")).unwrap().tombstone);
    }

    #[test]
    fn distinct_columns_are_distinct_cells() {
        // Slates for ⟨U1, k⟩ and ⟨U2, k⟩ must not collide (§3).
        let mut mt = Memtable::new();
        mt.put(CellKey::new("k", "U1"), Cell::live("one", 1, None));
        mt.put(CellKey::new("k", "U2"), Cell::live("two", 1, None));
        assert_eq!(mt.len(), 2);
        assert_eq!(mt.get(&CellKey::new("k", "U1")).unwrap().value.as_ref(), b"one");
        assert_eq!(mt.get(&CellKey::new("k", "U2")).unwrap().value.as_ref(), b"two");
    }
}
