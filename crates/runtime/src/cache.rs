//! Slate caches (§4.2).
//!
//! "These slates are cached in the memory of the machine running U" and
//! persisted to the key-value store with a configurable flush policy
//! "ranging from 'immediate write-through' to 'only when evicted from
//! cache'". Muppet 2.0 keeps "all slates ... in a single 'central' slate
//! cache" per machine; Muppet 1.0 fragments the same budget across
//! per-worker caches (§4.5) — both are instances of this type, differing
//! only in how many instances a machine owns and their capacity.
//!
//! Concurrency model: the cache hands out `Arc<SlateSlot>`s; workers lock a
//! slot's state while running the update function. Two-choice dispatch
//! bounds contention on any slot to two workers (§4.5).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use muppet_core::event::Key;
use muppet_core::hash::fx64_pair;
use muppet_core::slate::Slate;
use muppet_core::workflow::OpId;
use muppet_slatestore::cluster::StoreCluster;
use muppet_slatestore::types::CellKey;
use parking_lot::Mutex;

use crate::lru::LruMap;

/// When dirty slates reach the key-value store (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Every slate mutation writes to the store before the worker moves on.
    WriteThrough,
    /// A background flusher sweeps dirty slates every `ms` milliseconds
    /// ("a thread to provide background I/O to the durable key-value
    /// store", §4.5).
    IntervalMs(u64),
    /// Slates reach the store only when evicted (maximum write coalescing,
    /// maximum crash loss).
    OnEvict,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::IntervalMs(100)
    }
}

/// Where cache misses load from and flushes write to. Implemented by the
/// slate-store cluster; tests may substitute an in-memory backend.
pub trait SlateBackend: Send + Sync + 'static {
    /// Load the persisted slate bytes for ⟨updater, key⟩, if any.
    fn load(&self, updater: &str, key: &Key, now_us: u64) -> Option<Vec<u8>>;
    /// Persist the slate bytes for ⟨updater, key⟩. Returns `false` when
    /// the write did not reach the store (quorum failure, dead store
    /// host): the caller must keep the slate dirty so a later flush
    /// retries — dropping it would silently lose the update.
    fn store(
        &self,
        updater: &str,
        key: &Key,
        bytes: &[u8],
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> bool;
}

/// Backend that drops writes and never finds anything — engines without an
/// attached store use this.
#[derive(Debug, Default)]
pub struct NullBackend;

impl SlateBackend for NullBackend {
    fn load(&self, _updater: &str, _key: &Key, _now_us: u64) -> Option<Vec<u8>> {
        None
    }
    fn store(
        &self,
        _updater: &str,
        _key: &Key,
        _bytes: &[u8],
        _ttl: Option<u64>,
        _now_us: u64,
    ) -> bool {
        // With no store attached there is nothing to retry against:
        // report success so caches do not accumulate forever-dirty slates.
        true
    }
}

impl SlateBackend for StoreCluster {
    fn load(&self, updater: &str, key: &Key, now_us: u64) -> Option<Vec<u8>> {
        let cell_key = CellKey::new(key.as_bytes(), updater.as_bytes());
        // Quorum failures surface as cache misses: the paper's posture is
        // availability-first on the read path.
        self.get(&cell_key, now_us).ok().flatten().map(|b| b.to_vec())
    }

    fn store(
        &self,
        updater: &str,
        key: &Key,
        bytes: &[u8],
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> bool {
        let cell_key = CellKey::new(key.as_bytes(), updater.as_bytes());
        // A write failure keeps the slate dirty; a later flush retries.
        self.put(&cell_key, bytes, ttl_secs, now_us).is_ok()
    }
}

/// Mutable slate state guarded by the slot lock.
#[derive(Debug)]
pub struct SlateState {
    /// The live slate.
    pub slate: Slate,
    /// Version already persisted; `slate.version() > flushed_version` ⟹
    /// dirty.
    pub flushed_version: u64,
    /// Engine-relative µs of the last updater write (drives TTL reset).
    pub last_write_us: u64,
}

impl SlateState {
    /// Whether the slate has unpersisted changes.
    pub fn dirty(&self) -> bool {
        self.slate.version() > self.flushed_version
    }
}

/// One cached slate: identity + lockable state.
#[derive(Debug)]
pub struct SlateSlot {
    /// The update function's name (store column).
    pub updater: Arc<str>,
    /// The event key (store row).
    pub key: Key,
    /// TTL configured for this updater's slates.
    pub ttl_secs: Option<u64>,
    /// Lockable state; workers hold this lock while updating.
    pub state: Mutex<SlateState>,
}

/// Cache statistics (atomic; cheap to snapshot).
#[derive(Debug, Default)]
pub struct CacheCounters {
    store_loads: AtomicU64,
    evictions: AtomicU64,
    flush_writes: AtomicU64,
    flush_failures: AtomicU64,
    ttl_resets: AtomicU64,
}

/// Snapshot of [`CacheCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Misses that found a persisted slate in the store.
    pub store_loads: u64,
    /// Slates evicted for capacity.
    pub evictions: u64,
    /// Writes issued to the backend.
    pub flush_writes: u64,
    /// Backend writes that failed (the slate stayed dirty for retry).
    pub flush_failures: u64,
    /// Slates reset because their TTL lapsed.
    pub ttl_resets: u64,
    /// Live entries.
    pub entries: u64,
    /// Dirty entries (unpersisted).
    pub dirty: u64,
    /// Lock shards the cache's budget is split over.
    pub shards: u64,
}

/// One lock shard: its own LRU map, its slice of the capacity budget, and
/// its own hit/miss counters (the `/status` observability surface).
struct Shard {
    map: Mutex<LruMap<(OpId, Key), Arc<SlateSlot>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Per-shard statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups served from this shard.
    pub hits: u64,
    /// Lookups that missed in this shard.
    pub misses: u64,
    /// Live entries in this shard.
    pub entries: u64,
    /// This shard's slice of the capacity budget.
    pub capacity: u64,
}

/// An LRU slate cache bound to a backend, split into power-of-two lock
/// shards so a machine's worker pool stops serializing on one mutex
/// (the Muppet 2.0 central cache was a single `Mutex<LruMap>` — with 4+
/// workers the map lock was the hottest line on the machine). Shard
/// selection hashes ⟨op, key⟩ with the same fx64 family the routing rings
/// use; each shard owns an even slice of the capacity budget and runs the
/// full eviction/flush/TTL protocol independently.
pub struct SlateCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    shard_mask: u64,
    policy: FlushPolicy,
    backend: Arc<dyn SlateBackend>,
    counters: CacheCounters,
}

impl std::fmt::Debug for SlateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlateCache")
            .field("capacity", &self.capacity())
            .field("shards", &self.shards.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl SlateCache {
    /// A single-shard cache holding up to `capacity` slates (the Muppet
    /// 1.0 per-worker caches, which have exactly one owner and gain
    /// nothing from sharding).
    pub fn new(capacity: usize, policy: FlushPolicy, backend: Arc<dyn SlateBackend>) -> Self {
        SlateCache::with_shards(capacity, policy, backend, 1)
    }

    /// A cache holding up to `capacity` slates split over `shards` lock
    /// shards (rounded up to a power of two). The total budget is pinned:
    /// shard capacities sum to exactly `max(capacity, shards)`.
    pub fn with_shards(
        capacity: usize,
        policy: FlushPolicy,
        backend: Arc<dyn SlateBackend>,
        shards: usize,
    ) -> Self {
        let n = shards.max(1).next_power_of_two();
        let capacity = capacity.max(n); // every shard holds at least one slate
        let (base, extra) = (capacity / n, capacity % n);
        let shards: Vec<Shard> = (0..n)
            .map(|i| Shard {
                map: Mutex::new(LruMap::new()),
                capacity: base + usize::from(i < extra),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            })
            .collect();
        SlateCache {
            shards: shards.into_boxed_slice(),
            shard_mask: (n - 1) as u64,
            policy,
            backend,
            counters: CacheCounters::default(),
        }
    }

    /// The flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity).sum()
    }

    /// The shard owning ⟨`op`, `key`⟩ — the same fx64 the rings route by,
    /// with the op id mixed in so two updaters' slates for one key spread.
    fn shard_of(&self, op: OpId, key: &Key) -> &Shard {
        let h = fx64_pair(key.as_bytes(), &(op as u64).to_le_bytes());
        &self.shards[(h & self.shard_mask) as usize]
    }

    /// Fetch (or create) the slot for ⟨updater `op`, `key`⟩. On a miss the
    /// backend is consulted ("Muppet retrieves the slate from the Cassandra
    /// cluster", §4.2); if nothing is stored the slot starts empty and the
    /// update function initializes it. Cached slates whose TTL lapsed reset
    /// to empty ("resetting to an empty slate at that time").
    pub fn get_or_load(
        &self,
        op: OpId,
        updater: &Arc<str>,
        key: &Key,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> Arc<SlateSlot> {
        let shard = self.shard_of(op, key);
        let mut evicted: Vec<((OpId, Key), Arc<SlateSlot>)> = Vec::new();
        let slot = {
            let mut map = shard.map.lock();
            if let Some(slot) = map.get(&(op, key.clone())) {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                let slot = Arc::clone(slot);
                drop(map);
                self.maybe_ttl_reset(&slot, now_us);
                return slot;
            }
            shard.misses.fetch_add(1, Ordering::Relaxed);
            let loaded = self.backend.load(updater, key, now_us);
            if loaded.is_some() {
                self.counters.store_loads.fetch_add(1, Ordering::Relaxed);
            }
            let slate = loaded.map(Slate::from_bytes).unwrap_or_default();
            let flushed_version = slate.version();
            let slot = Arc::new(SlateSlot {
                updater: Arc::clone(updater),
                key: key.clone(),
                ttl_secs,
                state: Mutex::new(SlateState { slate, flushed_version, last_write_us: now_us }),
            });
            map.insert((op, key.clone()), Arc::clone(&slot));
            // Select eviction victims beyond capacity — but keep them
            // *resident*: each candidate is reinserted immediately (as
            // MRU) and only leaves the map after its flush succeeds. A
            // victim removed while dirty would open a window where a
            // concurrent get_or_load re-creates the slot from the (still
            // unwritten) backend and the slate forks. `pop_lru` moves
            // the map's reference out, so an unborrowed victim has
            // strong_count == 1; anything higher means a worker (or the
            // local `slot` binding, for the entry we just inserted)
            // still holds it — skip those, bounded so a fully-borrowed
            // cache cannot spin.
            let mut skipped: Vec<((OpId, Key), Arc<SlateSlot>)> = Vec::new();
            let max_picks = map.len();
            // Reinserting keeps `map.len()` constant, so the loop is
            // bounded by the victim count (the capacity excess), not by
            // the map shrinking.
            let excess = map.len().saturating_sub(shard.capacity);
            while evicted.len() < excess && evicted.len() + skipped.len() < max_picks {
                let Some((k, victim)) = map.pop_lru() else { break };
                if Arc::strong_count(&victim) > 1 {
                    skipped.push((k, victim));
                    continue;
                }
                map.insert(k.clone(), Arc::clone(&victim)); // stays resident until flushed
                evicted.push((k, victim));
            }
            for (k, v) in skipped {
                map.insert(k, v); // reinsert as MRU; retry next time
            }
            slot
        };
        // Flush the victims outside the map lock, then remove each from
        // the map only if it was persisted and nobody raced us: the
        // entry still holds this exact slot, no worker borrowed it
        // meanwhile (count == map + our binding), and no write re-dirtied
        // it. Anything else stays resident for the next sweep — a failed
        // store write must never silently lose the update.
        for (k, victim) in evicted {
            let flushed = self.flush_slot(&victim, now_us);
            let mut map = shard.map.lock();
            let unchanged = map.peek(&k).map(|s| Arc::ptr_eq(s, &victim)).unwrap_or(false);
            if flushed
                && unchanged
                && Arc::strong_count(&victim) == 2
                && !victim.state.lock().dirty()
            {
                map.remove(&k);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        slot
    }

    fn maybe_ttl_reset(&self, slot: &Arc<SlateSlot>, now_us: u64) {
        let Some(ttl) = slot.ttl_secs else { return };
        let mut state = slot.state.lock();
        if !state.slate.is_empty()
            && now_us.saturating_sub(state.last_write_us) > ttl.saturating_mul(1_000_000)
        {
            state.slate.clear();
            state.flushed_version = state.slate.version();
            self.counters.ttl_resets.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a lookup served from a worker's slot memo (the batch-drain
    /// path reuses the previous packet's slot for a run of same-key events
    /// without touching the shard lock): counts as a shard hit and applies
    /// the TTL check exactly like a map lookup would.
    pub fn note_memo_hit(&self, op: OpId, slot: &Arc<SlateSlot>, now_us: u64) {
        self.shard_of(op, &slot.key).hits.fetch_add(1, Ordering::Relaxed);
        self.maybe_ttl_reset(slot, now_us);
    }

    /// Record a completed updater write on `slot`; under write-through this
    /// persists immediately. A failed write-through leaves the slate dirty
    /// (the eviction/shutdown flush retries it).
    pub fn note_write(&self, slot: &SlateSlot, state: &mut SlateState, now_us: u64) {
        state.last_write_us = now_us;
        if self.policy == FlushPolicy::WriteThrough && state.dirty() {
            if self.backend.store(
                &slot.updater,
                &slot.key,
                state.slate.bytes(),
                slot.ttl_secs,
                now_us,
            ) {
                state.flushed_version = state.slate.version();
                self.counters.flush_writes.fetch_add(1, Ordering::Relaxed);
            } else {
                self.counters.flush_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Flush one slot if dirty. Returns false only when the backend write
    /// failed — the slate stays dirty for a later retry.
    fn flush_slot(&self, slot: &SlateSlot, now_us: u64) -> bool {
        let mut state = slot.state.lock();
        if state.dirty() {
            if self.backend.store(
                &slot.updater,
                &slot.key,
                state.slate.bytes(),
                slot.ttl_secs,
                now_us,
            ) {
                state.flushed_version = state.slate.version();
                self.counters.flush_writes.fetch_add(1, Ordering::Relaxed);
            } else {
                self.counters.flush_failures.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    /// Public flush-one entry point (elastic handoff: the old owner
    /// flushes moved-away slates before acking the epoch). Returns false
    /// when the backend write failed.
    pub fn flush_slot_now(&self, slot: &SlateSlot, now_us: u64) -> bool {
        self.flush_slot(slot, now_us)
    }

    /// Remove every cached slate of updater `op` whose key matches
    /// `moved`, returning the removed ⟨key, slot⟩ pairs (elastic handoff:
    /// the keys whose ring arc moved to another machine). The caller
    /// decides what to do with them — flush to the store, or hand them
    /// directly to the new owner's cache in-process.
    pub fn take_matching(
        &self,
        op: OpId,
        moved: &dyn Fn(&Key) -> bool,
    ) -> Vec<(Key, Arc<SlateSlot>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let mut map = shard.map.lock();
            let keys: Vec<Key> = map
                .iter()
                .filter(|((o, k), _)| *o == op && moved(k))
                .map(|((_, k), _)| k.clone())
                .collect();
            out.extend(
                keys.into_iter().filter_map(|k| map.remove(&(op, k.clone())).map(|slot| (k, slot))),
            );
        }
        out
    }

    /// Insert an externally-built slot (elastic handoff between in-process
    /// machines: the moved slate keeps its state, dirtiness included).
    pub fn insert_slot(&self, op: OpId, key: Key, slot: Arc<SlateSlot>) {
        self.shard_of(op, &key).map.lock().insert((op, key), slot);
    }

    /// Flush every dirty slate (background flusher tick / graceful
    /// shutdown). Returns the number of slates written.
    pub fn flush_dirty(&self, now_us: u64) -> u64 {
        let before = self.counters.flush_writes.load(Ordering::Relaxed);
        for shard in self.shards.iter() {
            let slots: Vec<Arc<SlateSlot>> =
                shard.map.lock().iter().map(|(_, slot)| Arc::clone(slot)).collect();
            for slot in slots {
                let _ = self.flush_slot(&slot, now_us); // failures stay dirty; next sweep retries
            }
        }
        self.counters.flush_writes.load(Ordering::Relaxed) - before
    }

    /// Read a slate's current bytes without creating it (HTTP reads, §4.4:
    /// "the fetch retrieves the slate from Muppet's slate cache ... to
    /// ensure an up-to-date reply").
    pub fn read(&self, op: OpId, key: &Key) -> Option<Vec<u8>> {
        let slot = {
            let map = self.shard_of(op, key).map.lock();
            map.peek(&(op, key.clone())).map(Arc::clone)
        }?;
        let state = slot.state.lock();
        if state.slate.is_empty() {
            None
        } else {
            Some(state.slate.bytes().to_vec())
        }
    }

    /// Keys currently cached for updater `op` (bulk reads / debugging).
    pub fn keys_of(&self, op: OpId) -> Vec<Key> {
        let mut keys = Vec::new();
        for shard in self.shards.iter() {
            keys.extend(
                shard.map.lock().iter().filter(|((o, _), _)| *o == op).map(|((_, k), _)| k.clone()),
            );
        }
        keys
    }

    /// Number of dirty slates that would be lost if this machine crashed
    /// right now (§4.3: "whatever changes ... not yet been flushed to the
    /// key-value store are lost").
    pub fn dirty_count(&self) -> u64 {
        let mut dirty = 0u64;
        for shard in self.shards.iter() {
            let slots: Vec<Arc<SlateSlot>> =
                shard.map.lock().iter().map(|(_, slot)| Arc::clone(slot)).collect();
            dirty += slots.iter().filter(|s| s.state.lock().dirty()).count() as u64;
        }
        dirty
    }

    /// Per-shard statistics (hit/miss/occupancy per lock shard).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                entries: s.map.lock().len() as u64,
                capacity: s.capacity as u64,
            })
            .collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut entries = 0u64;
        for shard in self.shards.iter() {
            hits += shard.hits.load(Ordering::Relaxed);
            misses += shard.misses.load(Ordering::Relaxed);
            entries += shard.map.lock().len() as u64;
        }
        let dirty = self.dirty_count();
        CacheStats {
            hits,
            misses,
            store_loads: self.counters.store_loads.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            flush_writes: self.counters.flush_writes.load(Ordering::Relaxed),
            flush_failures: self.counters.flush_failures.load(Ordering::Relaxed),
            ttl_resets: self.counters.ttl_resets.load(Ordering::Relaxed),
            entries,
            dirty,
            shards: self.shards.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::RwLock;
    use std::collections::HashMap;

    /// In-memory backend recording stores.
    #[derive(Debug, Default)]
    struct MemBackend {
        data: RwLock<HashMap<(String, Key), Vec<u8>>>,
        stores: AtomicU64,
    }

    impl SlateBackend for MemBackend {
        fn load(&self, updater: &str, key: &Key, _now: u64) -> Option<Vec<u8>> {
            self.data.read().get(&(updater.to_string(), key.clone())).cloned()
        }
        fn store(
            &self,
            updater: &str,
            key: &Key,
            bytes: &[u8],
            _ttl: Option<u64>,
            _now: u64,
        ) -> bool {
            self.stores.fetch_add(1, Ordering::Relaxed);
            self.data.write().insert((updater.to_string(), key.clone()), bytes.to_vec());
            true
        }
    }

    /// Backend whose first `fail_n` writes fail (store outage), then
    /// recovers — the regression harness for lost-on-evict updates.
    #[derive(Debug, Default)]
    struct FlakyBackend {
        inner: MemBackend,
        failures_left: AtomicU64,
        failed: AtomicU64,
    }

    impl FlakyBackend {
        fn failing(n: u64) -> Self {
            FlakyBackend {
                inner: MemBackend::default(),
                failures_left: AtomicU64::new(n),
                failed: AtomicU64::new(0),
            }
        }
    }

    impl SlateBackend for FlakyBackend {
        fn load(&self, updater: &str, key: &Key, now: u64) -> Option<Vec<u8>> {
            self.inner.load(updater, key, now)
        }
        fn store(
            &self,
            updater: &str,
            key: &Key,
            bytes: &[u8],
            ttl: Option<u64>,
            now: u64,
        ) -> bool {
            loop {
                let left = self.failures_left.load(Ordering::Acquire);
                if left == 0 {
                    return self.inner.store(updater, key, bytes, ttl, now);
                }
                if self
                    .failures_left
                    .compare_exchange(left, left - 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
    }

    fn updater_name() -> Arc<str> {
        Arc::from("U1")
    }

    #[test]
    fn miss_then_hit() {
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, backend);
        let name = updater_name();
        let k = Key::from("walmart");
        let slot = cache.get_or_load(0, &name, &k, None, 0);
        assert!(slot.state.lock().slate.is_empty(), "fresh slate starts empty");
        let again = cache.get_or_load(0, &name, &k, None, 1);
        assert!(Arc::ptr_eq(&slot, &again));
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn write_through_persists_immediately() {
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::new(10, FlushPolicy::WriteThrough, Arc::clone(&backend) as _);
        let name = updater_name();
        let k = Key::from("k");
        let slot = cache.get_or_load(0, &name, &k, None, 0);
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"5".to_vec());
            cache.note_write(&slot, &mut state, 10);
            assert!(!state.dirty());
        }
        assert_eq!(backend.load("U1", &k, 0), Some(b"5".to_vec()));
        assert_eq!(cache.stats().flush_writes, 1);
    }

    #[test]
    fn interval_policy_leaves_dirty_until_flush() {
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::new(10, FlushPolicy::IntervalMs(100), Arc::clone(&backend) as _);
        let name = updater_name();
        let k = Key::from("k");
        let slot = cache.get_or_load(0, &name, &k, None, 0);
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"7".to_vec());
            cache.note_write(&slot, &mut state, 10);
            assert!(state.dirty(), "interval policy defers the write");
        }
        assert_eq!(cache.dirty_count(), 1);
        assert_eq!(backend.load("U1", &k, 0), None);
        assert_eq!(cache.flush_dirty(20), 1);
        assert_eq!(backend.load("U1", &k, 0), Some(b"7".to_vec()));
        assert_eq!(cache.dirty_count(), 0);
        // Re-flush with no new writes is a no-op.
        assert_eq!(cache.flush_dirty(30), 0);
    }

    #[test]
    fn eviction_flushes_dirty_victims() {
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::new(2, FlushPolicy::OnEvict, Arc::clone(&backend) as _);
        let name = updater_name();
        for i in 0..5 {
            let k = Key::from(format!("k{i}"));
            let slot = cache.get_or_load(0, &name, &k, None, i);
            let mut state = slot.state.lock();
            state.slate.replace(format!("v{i}").into_bytes());
            cache.note_write(&slot, &mut state, i);
        }
        let s = cache.stats();
        assert!(s.evictions >= 3, "capacity 2 with 5 inserts evicts ≥3: {s:?}");
        assert!(s.flush_writes >= 3, "dirty victims must be persisted");
        // The evicted slates are in the store, reloadable.
        let k0 = Key::from("k0");
        let slot = cache.get_or_load(0, &name, &k0, None, 100);
        assert_eq!(slot.state.lock().slate.bytes(), b"v0");
        assert_eq!(cache.stats().store_loads, 1);
    }

    #[test]
    fn evicted_dirty_slate_survives_a_failed_store_write() {
        // The regression: a dirty slate evicted for capacity whose store
        // write fails used to be dropped from the map — the update was
        // silently lost. It must stay resident (dirty) and reach the
        // store once the backend recovers.
        let backend = Arc::new(FlakyBackend::failing(2));
        let cache = SlateCache::new(1, FlushPolicy::OnEvict, Arc::clone(&backend) as _);
        let name = updater_name();
        let precious = Key::from("precious");
        {
            let slot = cache.get_or_load(0, &name, &precious, None, 0);
            let mut state = slot.state.lock();
            state.slate.replace(b"critical-update".to_vec());
            cache.note_write(&slot, &mut state, 0);
        } // slot Arc dropped: evictable
          // Capacity pressure while the store is down: the eviction flush
          // fails and the victim must be reinserted, not dropped.
        cache.get_or_load(0, &name, &Key::from("intruder-1"), None, 1);
        assert!(backend.failed.load(Ordering::Relaxed) >= 1, "the outage was exercised");
        assert_eq!(
            cache.read(0, &precious),
            Some(b"critical-update".to_vec()),
            "a failed eviction flush must keep the slate resident"
        );
        assert!(cache.stats().flush_failures >= 1);
        assert_eq!(backend.load("U1", &precious, 0), None, "nothing reached the store yet");
        // Burn through the remaining failure, then a flusher sweep
        // succeeds and the value lands in the store.
        let mut swept = 0;
        while backend.load("U1", &precious, 0).is_none() {
            cache.flush_dirty(10 + swept);
            swept += 1;
            assert!(swept < 10, "flush retries never reached the recovered store");
        }
        assert_eq!(backend.load("U1", &precious, 0), Some(b"critical-update".to_vec()));
        assert_eq!(cache.dirty_count(), 0);
    }

    #[test]
    fn capacity_overflow_evicts_only_the_excess() {
        // Regression: victims stay resident during the flush, so the
        // selection loop must stop at the capacity excess — one insert
        // over capacity evicts one entry, not the whole cache.
        let cache = SlateCache::new(4, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        for i in 0..5 {
            cache.get_or_load(0, &name, &Key::from(format!("k{i}")), None, i);
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "exactly the excess is evicted: {s:?}");
        assert_eq!(s.entries, 4);
    }

    #[test]
    fn take_matching_hands_off_and_insert_slot_restores() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        for key in ["stay", "move-a", "move-b"] {
            let slot = cache.get_or_load(0, &name, &Key::from(key), None, 0);
            let mut state = slot.state.lock();
            state.slate.replace(format!("v-{key}").into_bytes());
            cache.note_write(&slot, &mut state, 0);
        }
        let moved = cache.take_matching(0, &|k: &Key| k.as_str().unwrap().starts_with("move"));
        assert_eq!(moved.len(), 2);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.read(0, &Key::from("move-a")), None, "taken slates left the cache");
        assert_eq!(cache.read(0, &Key::from("stay")), Some(b"v-stay".to_vec()));
        // The new owner's cache adopts them with state (and dirtiness)
        // intact.
        let target = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        for (key, slot) in moved {
            assert!(slot.state.lock().dirty(), "handoff preserves dirtiness");
            target.insert_slot(0, key, slot);
        }
        assert_eq!(target.read(0, &Key::from("move-b")), Some(b"v-move-b".to_vec()));
    }

    #[test]
    fn store_loads_resume_counters() {
        // §4.2: restart warms the cache from the store.
        let backend = Arc::new(MemBackend::default());
        backend.store("U1", &Key::from("persisted"), b"42", None, 0);
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::clone(&backend) as _);
        let slot = cache.get_or_load(0, &updater_name(), &Key::from("persisted"), None, 0);
        assert_eq!(slot.state.lock().slate.counter(), 42);
        assert_eq!(cache.stats().store_loads, 1);
    }

    #[test]
    fn ttl_resets_idle_cached_slates() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        let k = Key::from("idle");
        let slot = cache.get_or_load(0, &name, &k, Some(1), 0);
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"data".to_vec());
            cache.note_write(&slot, &mut state, 0);
        }
        // 0.5s later: still live.
        cache.get_or_load(0, &name, &k, Some(1), 500_000);
        assert!(!slot.state.lock().slate.is_empty());
        // 2s later: reset to empty.
        cache.get_or_load(0, &name, &k, Some(1), 2_000_001);
        assert!(slot.state.lock().slate.is_empty(), "TTL lapse resets the slate (§4.2)");
        assert_eq!(cache.stats().ttl_resets, 1);
    }

    #[test]
    fn read_returns_bytes_without_creating() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        assert_eq!(cache.read(0, &Key::from("nope")), None);
        assert_eq!(cache.stats().entries, 0, "read must not allocate slots");
        let slot = cache.get_or_load(0, &name, &Key::from("k"), None, 0);
        assert_eq!(cache.read(0, &Key::from("k")), None, "empty slate reads as None");
        slot.state.lock().slate.replace(b"live".to_vec());
        assert_eq!(cache.read(0, &Key::from("k")), Some(b"live".to_vec()));
    }

    #[test]
    fn distinct_updaters_have_distinct_slots() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let k = Key::from("shared-key");
        let a = cache.get_or_load(0, &Arc::from("U1"), &k, None, 0);
        let b = cache.get_or_load(1, &Arc::from("U2"), &k, None, 0);
        assert!(!Arc::ptr_eq(&a, &b), "⟨updater, key⟩ identifies a slate (§3)");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn keys_of_filters_by_updater() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        cache.get_or_load(0, &Arc::from("U1"), &Key::from("a"), None, 0);
        cache.get_or_load(0, &Arc::from("U1"), &Key::from("b"), None, 0);
        cache.get_or_load(1, &Arc::from("U2"), &Key::from("c"), None, 0);
        let mut keys = cache.keys_of(0);
        keys.sort();
        assert_eq!(keys, vec![Key::from("a"), Key::from("b")]);
    }

    #[test]
    fn sharded_capacity_is_pinned_to_the_total() {
        // The budget must not inflate when split: shard capacities sum to
        // exactly the configured total, regardless of divisibility.
        for (capacity, shards) in [(100usize, 8usize), (10, 8), (7, 4), (1, 4), (100_000, 16)] {
            let cache = SlateCache::with_shards(
                capacity,
                FlushPolicy::OnEvict,
                Arc::new(NullBackend),
                shards,
            );
            let n = shards.next_power_of_two();
            assert_eq!(cache.shard_count(), n);
            assert_eq!(cache.capacity(), capacity.max(n), "capacity pinned ({capacity}/{shards})");
        }
    }

    #[test]
    fn sharded_cache_spreads_entries_and_counts_hits_per_shard() {
        let cache = SlateCache::with_shards(10_000, FlushPolicy::OnEvict, Arc::new(NullBackend), 8);
        let name = updater_name();
        for i in 0..512 {
            let k = Key::from(format!("key-{i}"));
            cache.get_or_load(0, &name, &k, None, 0);
            cache.get_or_load(0, &name, &k, None, 1); // one hit each
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 512);
        assert_eq!(stats.hits, 512);
        assert_eq!(stats.misses, 512);
        assert_eq!(stats.shards, 8);
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 8);
        assert_eq!(per_shard.iter().map(|s| s.entries).sum::<u64>(), 512);
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), 512);
        let occupied = per_shard.iter().filter(|s| s.entries > 0).count();
        assert!(occupied >= 6, "fx64 spreads 512 keys over most of 8 shards: {per_shard:?}");
    }

    #[test]
    fn sharded_eviction_respects_per_shard_slices() {
        // 8 slates of budget over 4 shards (2 each): flooding one updater
        // with many keys evicts down to the per-shard slices without the
        // total ever exceeding the budget.
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::with_shards(8, FlushPolicy::OnEvict, Arc::clone(&backend) as _, 4);
        let name = updater_name();
        for i in 0..64 {
            let k = Key::from(format!("k{i}"));
            let slot = cache.get_or_load(0, &name, &k, None, i);
            let mut state = slot.state.lock();
            state.slate.replace(format!("v{i}").into_bytes());
            cache.note_write(&slot, &mut state, i);
        }
        let stats = cache.stats();
        assert!(stats.entries <= 8, "entries bounded by the total budget: {stats:?}");
        assert!(stats.evictions >= 56, "the excess was evicted: {stats:?}");
        assert_eq!(stats.flush_writes, stats.evictions, "every dirty victim was persisted");
        // Everything evicted is reloadable from the store.
        let slot = cache.get_or_load(0, &name, &Key::from("k0"), None, 100);
        assert_eq!(slot.state.lock().slate.bytes(), b"v0");
    }

    #[test]
    fn sharded_dirty_victim_survives_failed_flush() {
        // The PR 3 regression, per shard: an evicted dirty slate whose
        // store write fails stays resident in ITS shard and retries.
        let backend = Arc::new(FlakyBackend::failing(64));
        let cache = SlateCache::with_shards(4, FlushPolicy::OnEvict, Arc::clone(&backend) as _, 4);
        let name = updater_name();
        let mut written = Vec::new();
        for i in 0..32 {
            let k = Key::from(format!("precious-{i}"));
            let slot = cache.get_or_load(0, &name, &k, None, i);
            let mut state = slot.state.lock();
            state.slate.replace(format!("critical-{i}").into_bytes());
            cache.note_write(&slot, &mut state, i);
            written.push(k);
        }
        assert!(backend.failed.load(Ordering::Relaxed) >= 1, "the outage was exercised");
        // Store is down: nothing may have been dropped — every update is
        // either still cached (dirty) or already persisted.
        for (i, k) in written.iter().enumerate() {
            let expect = format!("critical-{i}").into_bytes();
            let live = cache.read(0, k);
            let stored = backend.load("U1", k, 0);
            assert!(
                live.as_deref() == Some(expect.as_slice())
                    || stored.as_deref() == Some(expect.as_slice()),
                "update {i} lost under store outage (live={live:?} stored={stored:?})"
            );
        }
        assert!(cache.stats().flush_failures >= 1);
        // Recovery: sweeps drain every retained dirty slate to the store.
        let mut swept = 0;
        while cache.dirty_count() > 0 {
            cache.flush_dirty(1000 + swept);
            swept += 1;
            assert!(swept < 100, "flush retries never drained the dirty set");
        }
        for (i, k) in written.iter().enumerate() {
            let expect = format!("critical-{i}").into_bytes();
            let in_cache = cache.read(0, k);
            let in_store = backend.load("U1", k, 0);
            assert!(
                in_store.as_deref() == Some(expect.as_slice())
                    || in_cache.as_deref() == Some(expect.as_slice()),
                "update {i} missing after recovery"
            );
        }
    }

    #[test]
    fn memo_hits_count_and_apply_ttl() {
        let cache = SlateCache::with_shards(16, FlushPolicy::OnEvict, Arc::new(NullBackend), 4);
        let name = updater_name();
        let k = Key::from("memoed");
        let slot = cache.get_or_load(0, &name, &k, Some(1), 0);
        slot.state.lock().slate.replace(b"live".to_vec());
        cache.note_memo_hit(0, &slot, 500_000);
        assert!(!slot.state.lock().slate.is_empty(), "within TTL: untouched");
        cache.note_memo_hit(0, &slot, 2_000_001);
        assert!(slot.state.lock().slate.is_empty(), "memo path still applies the TTL reset");
        assert_eq!(cache.stats().hits, 2, "memo hits count as shard hits");
        assert_eq!(cache.stats().ttl_resets, 1);
    }

    #[test]
    fn borrowed_slots_survive_eviction_pressure() {
        let cache = SlateCache::new(1, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        let hot = cache.get_or_load(0, &name, &Key::from("hot"), None, 0);
        hot.state.lock().slate.replace(b"precious".to_vec());
        // Insert more entries while `hot` is still borrowed (we hold an Arc).
        for i in 0..5 {
            cache.get_or_load(0, &name, &Key::from(format!("cold{i}")), None, i);
        }
        // The borrowed slot is still reachable and intact.
        let again = cache.get_or_load(0, &name, &Key::from("hot"), None, 100);
        assert_eq!(again.state.lock().slate.bytes(), b"precious");
    }
}
