//! Dead-letter queue — the parking lot for poison events.
//!
//! A MapUpdate event can be unprocessable in two ways: the updater (or
//! mapper) panics on it, or its payload fails to decode. Before this
//! module, either case killed the worker thread that touched it, leaked
//! the thread's queued packets, and wedged `Engine::drain` on a pending
//! count that could never reach zero. Now `process_batch` contains the
//! panic with `catch_unwind` and routes the offending event here, keeping
//! the thread — and the drain accounting — alive.
//!
//! The queue is bounded: when full, the *oldest* letter is evicted (and
//! counted as dropped) so the most recent failures — the ones an operator
//! is debugging — are always retained. Letters are listed via the node's
//! HTTP endpoint `GET /dlq` and re-injected via `POST /dlq/retry`, which
//! drains the queue back into the dispatch path (useful after a buggy
//! updater is hot-fixed or a transient resource problem clears).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use muppet_core::sync::Mutex;
use muppet_core::workflow::OpId;
use muppet_core::Event;

/// One parked event, with enough context to retry or debug it.
#[derive(Clone, Debug)]
pub struct DeadLetter {
    /// The operator (updater or mapper) the event was headed for.
    pub op: OpId,
    /// The event itself, unmodified.
    pub event: Event,
    /// Human-readable failure cause (panic message or decode error).
    pub reason: String,
    /// Engine-clock microseconds when the event was parked.
    pub at_us: u64,
}

/// Bounded FIFO of dead letters with eviction and lifetime counters.
pub struct DeadLetterQueue {
    letters: Mutex<VecDeque<DeadLetter>>,
    capacity: usize,
    added: AtomicU64,
    dropped: AtomicU64,
    retried: AtomicU64,
}

impl DeadLetterQueue {
    /// A queue holding at most `capacity` letters (0 is clamped to 1 —
    /// a DLQ that can hold nothing would silently re-lose poison events).
    pub fn new(capacity: usize) -> Self {
        DeadLetterQueue {
            letters: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            added: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            retried: AtomicU64::new(0),
        }
    }

    /// Park a letter, evicting the oldest if the queue is full.
    pub fn push(&self, letter: DeadLetter) {
        let mut letters = self.letters.lock();
        if letters.len() >= self.capacity {
            letters.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        letters.push_back(letter);
        self.added.fetch_add(1, Ordering::Relaxed);
    }

    /// Remove and return every parked letter (for `/dlq/retry`).
    pub fn drain(&self) -> Vec<DeadLetter> {
        let drained: Vec<DeadLetter> = self.letters.lock().drain(..).collect();
        self.retried.fetch_add(drained.len() as u64, Ordering::Relaxed);
        drained
    }

    /// Snapshot the parked letters without removing them (for `GET /dlq`).
    pub fn snapshot(&self) -> Vec<DeadLetter> {
        self.letters.lock().iter().cloned().collect()
    }

    /// Letters currently parked.
    pub fn depth(&self) -> usize {
        self.letters.lock().len()
    }

    /// Lifetime letters parked.
    pub fn added(&self) -> u64 {
        self.added.load(Ordering::Relaxed)
    }

    /// Lifetime letters evicted by capacity pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Lifetime letters handed back for retry.
    pub fn retried(&self) -> u64 {
        self.retried.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::Event;

    fn letter(i: u64) -> DeadLetter {
        DeadLetter {
            op: 0,
            event: Event::new("S", i, format!("k{i}").into(), "v"),
            reason: format!("boom {i}"),
            at_us: i,
        }
    }

    #[test]
    fn push_snapshot_drain_roundtrip() {
        let q = DeadLetterQueue::new(8);
        q.push(letter(1));
        q.push(letter(2));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.added(), 2);
        let snap = q.snapshot();
        assert_eq!(snap.len(), 2, "snapshot does not consume");
        assert_eq!(q.depth(), 2);
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].reason, "boom 1", "FIFO order");
        assert_eq!(q.depth(), 0);
        assert_eq!(q.retried(), 2);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let q = DeadLetterQueue::new(3);
        for i in 0..5 {
            q.push(letter(i));
        }
        assert_eq!(q.depth(), 3);
        assert_eq!(q.dropped(), 2);
        let snap = q.snapshot();
        assert_eq!(snap[0].at_us, 2, "letters 0 and 1 were evicted");
        assert_eq!(snap[2].at_us, 4, "newest failures are retained");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = DeadLetterQueue::new(0);
        q.push(letter(7));
        assert_eq!(q.depth(), 1);
    }
}
