//! The experiment harness CLI: regenerates every figure / quantified claim
//! of the paper (DESIGN.md §4).
//!
//! ```sh
//! cargo run -p muppet-bench --release --bin experiments            # all
//! cargo run -p muppet-bench --release --bin experiments -- x5 x7  # some
//! cargo run -p muppet-bench --release --bin experiments -- all --quick
//! ```

use muppet_bench::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::QUICK } else { Scale::FULL };
    let requested: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    let to_run: Vec<&str> = if requested.is_empty() || requested == ["all"] {
        ALL_EXPERIMENTS.to_vec()
    } else {
        requested
    };

    println!("Muppet experiment harness — reproducing the paper's evaluation surface");
    println!("(figures 1–4 + §4/§5 operational claims; see DESIGN.md §4 and EXPERIMENTS.md)");
    if quick {
        println!("[quick mode: event counts divided by {}]", Scale::QUICK.divisor);
    }

    let t0 = std::time::Instant::now();
    let mut unknown = Vec::new();
    for id in to_run {
        if !run_experiment(id, scale) {
            unknown.push(id.to_string());
        }
    }
    if !unknown.is_empty() {
        eprintln!("\nunknown experiment ids: {unknown:?}; known: {ALL_EXPERIMENTS:?}");
        std::process::exit(2);
    }
    println!("\nall requested experiments completed in {:.1?}", t0.elapsed());
}
