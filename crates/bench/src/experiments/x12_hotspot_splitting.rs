//! X12 — §5 Example 6: relieve a hotspot updater by splitting an
//! associative/commutative count over k sub-keys.
//!
//! All events carry one hot retailer key ("a lot of people are checking
//! into Best Buy"). With k = 1 a single slate serializes all updates
//! (bounded to ≤2 workers by two-choice, but the slate lock is one);
//! splitting k ways spreads the work over k slates/workers, and a final
//! updater sums the partial counts.

use std::time::{Duration, Instant};

use muppet_apps::split_counter::{self, PartialCounter, SplittingMapper, TotalCounter};
use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
use muppet_runtime::overflow::OverflowPolicy;

use crate::harness::read_counter;
use crate::table::{rate, Table};
use crate::Scale;

fn hot_checkin(i: u64) -> Event {
    let v = Json::obj([
        ("user", Json::str(format!("u{i}"))),
        ("venue", Json::obj([("name", Json::str("Best Buy"))])),
    ]);
    Event::new(
        split_counter::CHECKIN_STREAM,
        i,
        Key::from(format!("u{i}")),
        v.to_compact().into_bytes(),
    )
}

/// A partial counter with an artificial per-event cost, standing in for a
/// heavyweight update function on the hot key.
fn ops(k: u64) -> OperatorSet {
    use muppet_core::operator::{Emitter, FnUpdater, Updater};
    use muppet_core::slate::Slate;
    struct SlowPartial(PartialCounter);
    impl Updater for SlowPartial {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
            let deadline = Instant::now() + Duration::from_micros(150);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            self.0.update(ctx, event, slate);
        }
    }
    let _ = FnUpdater::new("unused", |_: &mut dyn Emitter, _: &Event, _: &mut Slate| {});
    OperatorSet::new()
        .mapper(SplittingMapper::new(k))
        .updater(SlowPartial(PartialCounter::new(16)))
        .updater(TotalCounter::new())
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner("X12", "hotspot splitting: one hot key over k sub-keys", "§5 Example 6");
    let n = scale.events(8_000);

    let mut table = Table::new(["split k", "wall time", "events/s", "total counted", "exact?"]);
    let mut rates = Vec::new();
    for &k in &[1u64, 2, 4, 8] {
        // Workers match the host's cores: the split's parallelism gain is
        // bounded by real cores, and oversubscription would only blur it.
        let workers =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).clamp(2, 8);
        let cfg = EngineConfig {
            kind: EngineKind::Muppet2,
            machines: 1,
            workers_per_machine: workers,
            queue_capacity: 1 << 16,
            overflow: OverflowPolicy::SourceThrottle,
            ..EngineConfig::default()
        };
        let engine = Engine::start(split_counter::workflow(), ops(k), cfg, None).unwrap();
        let t0 = Instant::now();
        for i in 0..n {
            engine.submit(hot_checkin(i as u64)).unwrap();
        }
        assert!(engine.drain(Duration::from_secs(300)));
        let elapsed = t0.elapsed();
        // Residual unreported deltas (batch 16) stay in shard slates; the
        // total is within k×16 of n (the Example 6 "regularly emits" gap).
        let total = read_counter(&engine, split_counter::TOTAL_COUNTER, "Best Buy");
        engine.shutdown();
        rates.push(n as f64 / elapsed.as_secs_f64());
        table.row([
            k.to_string(),
            format!("{elapsed:.2?}"),
            rate(n, elapsed),
            total.to_string(),
            if (n as u64).saturating_sub(total) <= k * 16 {
                "✓ (±k·batch)".to_string()
            } else {
                "✗".to_string()
            },
        ]);
    }
    table.print();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    println!(
        "\nshape check: with k=1 the hot slate serializes all updates on one worker; any\n\
         k>1 unlocks parallelism up to the host's {cores} cores (best split vs k=1 here:\n\
         {:.2}×), with totals exact up to the k×batch unreported residue — the\n\
         associativity/commutativity trade Example 6 describes.",
        rates[1..].iter().cloned().fold(0.0f64, f64::max) / rates[0]
    );
}
