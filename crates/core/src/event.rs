//! Events, streams, and keys — the ⟨sid, ts, k, v⟩ tuples of Section 3.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::hash::{fx64, fx64_pair};

pub use crate::time::Timestamp;

/// Identifier of a stream, e.g. `"S1"` or `"twitter-firehose"`.
///
/// Cheap to clone (`Arc<str>`); hashes and compares by name. Stream names
/// are global across an application, exactly as the paper's `sid`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(Arc<str>);

impl StreamId {
    /// The stream name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for StreamId {
    fn from(s: &str) -> Self {
        StreamId(Arc::from(s))
    }
}

impl From<String> for StreamId {
    fn from(s: String) -> Self {
        StreamId(Arc::from(s))
    }
}

impl Borrow<str> for StreamId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StreamId({})", self.0)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An event key.
///
/// Keys "have atomic values and need not be unique across events" (§3); they
/// group events the way MapReduce keys do. Internally a cheaply-cloneable
/// byte string ([`Bytes`]); most applications use UTF-8 text keys (user IDs,
/// retailer names, `"<topic> <minute>"` compounds).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Key(Bytes);

impl Key {
    /// An empty key.
    pub const fn empty() -> Self {
        Key(Bytes::new())
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// The key as UTF-8 text, if valid.
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.0).ok()
    }

    /// Number of bytes in the key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key has zero bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Deterministic 64-bit hash of the key alone.
    pub fn hash64(&self) -> u64 {
        fx64(&self.0)
    }

    /// Deterministic hash of ⟨key, destination operator⟩ — the routing hash
    /// of §4.1: "give all workers the same hash function to map ⟨event key,
    /// destination map/update function⟩ to workers".
    pub fn route_hash(&self, operator: &str) -> u64 {
        fx64_pair(&self.0, operator.as_bytes())
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(Bytes::from(s.into_bytes()))
    }
}

impl From<Vec<u8>> for Key {
    fn from(v: Vec<u8>) -> Self {
        Key(Bytes::from(v))
    }
}

impl From<&[u8]> for Key {
    fn from(v: &[u8]) -> Self {
        Key(Bytes::copy_from_slice(v))
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_str() {
            Some(s) => write!(f, "Key({s:?})"),
            None => write!(f, "Key(0x{})", hex(&self.0)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// An event: the ⟨sid, ts, k, v⟩ tuple of §3.
///
/// * `stream` — which stream the event belongs to;
/// * `ts` — a global timestamp (logical microseconds);
/// * `key` — groups events, like MapReduce keys;
/// * `value` — an arbitrary blob (commonly JSON, e.g. a whole tweet).
///
/// `seq` is the deterministic tie-breaker: executors assign consecutive
/// sequence numbers at admission so that events with equal timestamps have a
/// well-defined total order `(ts, seq)` (§3's "deterministic tie-breaking
/// procedure").
#[derive(Clone, PartialEq, Eq)]
pub struct Event {
    /// Stream the event belongs to (`sid`).
    pub stream: StreamId,
    /// Global timestamp (`ts`), logical microseconds.
    pub ts: Timestamp,
    /// Grouping key (`k`).
    pub key: Key,
    /// Payload blob (`v`). Cheap to clone.
    pub value: Bytes,
    /// Tie-breaking sequence number assigned by the executor at admission.
    pub seq: u64,
}

impl Event {
    /// Build an event with `seq = 0` (executors overwrite `seq`).
    pub fn new(
        stream: impl Into<StreamId>,
        ts: Timestamp,
        key: Key,
        value: impl Into<Bytes>,
    ) -> Self {
        Event { stream: stream.into(), ts, key, value: value.into(), seq: 0 }
    }

    /// The total order used to feed operators: increasing `(ts, seq)`.
    pub fn order(&self) -> (Timestamp, u64) {
        (self.ts, self.seq)
    }

    /// Payload as UTF-8 text, if valid.
    pub fn value_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.value).ok()
    }

    /// Approximate in-memory footprint, used for queue byte accounting.
    pub fn approx_size(&self) -> usize {
        std::mem::size_of::<Event>()
            + self.stream.as_str().len()
            + self.key.len()
            + self.value.len()
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Event {{ stream: {}, ts: {}, seq: {}, key: {:?}, value: {} bytes }}",
            self.stream,
            self.ts,
            self.seq,
            self.key,
            self.value.len()
        )
    }
}

/// An emitted-but-not-yet-admitted event: what operators produce via
/// [`crate::operator::Emitter::publish`]. The runtime assigns the timestamp
/// (input ts + 1, per §3: "each output event has a timestamp greater than
/// the timestamp of the input event") and the tie-break `seq`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmitRecord {
    /// Destination stream name.
    pub stream: StreamId,
    /// Key of the new event.
    pub key: Key,
    /// Payload of the new event.
    pub value: Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_equality_and_borrow() {
        let a = StreamId::from("S1");
        let b = StreamId::from(String::from("S1"));
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a.clone());
        // Borrow<str> lets us look up by &str without allocating.
        assert!(set.contains("S1"));
        assert_eq!(a.to_string(), "S1");
    }

    #[test]
    fn key_text_and_binary() {
        let k = Key::from("walmart");
        assert_eq!(k.as_str(), Some("walmart"));
        assert_eq!(k.len(), 7);
        let b = Key::from(vec![0xff, 0xfe]);
        assert_eq!(b.as_str(), None);
        assert!(format!("{b:?}").contains("fffe"));
        assert!(Key::empty().is_empty());
    }

    #[test]
    fn route_hash_depends_on_operator() {
        let k = Key::from("best-buy");
        assert_ne!(k.route_hash("U1"), k.route_hash("U2"));
        assert_eq!(k.route_hash("U1"), k.route_hash("U1"));
    }

    #[test]
    fn same_key_different_updaters_have_distinct_slates_premise() {
        // §3: "each pair ⟨update U, key k⟩ uniquely determines a slate".
        // The routing hash is the mechanism; two updaters on one key must be
        // separable.
        let k = Key::from("kosmix");
        let (a, b) = (k.route_hash("profile"), k.route_hash("venues"));
        assert_ne!(a, b);
    }

    #[test]
    fn event_order_is_ts_then_seq() {
        let mut e1 = Event::new("S1", 10, Key::from("a"), "x");
        let mut e2 = Event::new("S2", 10, Key::from("b"), "y");
        e1.seq = 1;
        e2.seq = 2;
        assert!(e1.order() < e2.order());
        let e3 = Event::new("S1", 9, Key::from("c"), "z");
        assert!(e3.order() < e1.order());
    }

    #[test]
    fn event_value_str_and_size() {
        let e = Event::new("S1", 1, Key::from("k"), "payload");
        assert_eq!(e.value_str(), Some("payload"));
        assert!(e.approx_size() >= "S1".len() + 1 + 7);
        let bin = Event::new("S1", 1, Key::from("k"), vec![0xff, 0x00]);
        assert_eq!(bin.value_str(), None);
    }

    #[test]
    fn event_debug_is_compact() {
        let e = Event::new("S1", 42, Key::from("k"), vec![1, 2, 3]);
        let s = format!("{e:?}");
        assert!(s.contains("ts: 42"), "{s}");
        assert!(s.contains("3 bytes"), "{s}");
    }
}
