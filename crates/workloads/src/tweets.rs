//! A synthetic Twitter-Firehose stand-in.
//!
//! Produces tweet events shaped like the ones the paper's applications
//! consume: JSON payloads with an author, text, topic mentions, optional
//! retweet/reply references, and optional URLs. Author popularity follows a
//! Zipf distribution (§5's skew); topic mix is configurable and supports
//! *planted hot-topic bursts* so the hot-topics experiment (Figure 1(c))
//! has a known ground truth.

use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arrivals::ArrivalProcess;
use crate::zipf::Zipf;

/// Default topic vocabulary.
pub const DEFAULT_TOPICS: &[&str] = &[
    "sports", "politics", "music", "movies", "tech", "food", "travel", "fashion", "finance",
    "weather",
];

/// A planted burst: between `start_us` and `end_us`, `topic` is mentioned
/// with `boost`× its usual probability (renormalized).
#[derive(Clone, Debug)]
pub struct PlantedBurst {
    /// Topic to make hot.
    pub topic: String,
    /// Burst start (µs).
    pub start_us: u64,
    /// Burst end (µs).
    pub end_us: u64,
    /// Probability multiplier.
    pub boost: f64,
}

/// Synthetic tweet stream generator.
#[derive(Debug)]
pub struct TweetGenerator {
    rng: StdRng,
    users: Zipf,
    topics: Vec<String>,
    topic_dist: Zipf,
    arrivals: ArrivalProcess,
    now_us: u64,
    bursts: Vec<PlantedBurst>,
    retweet_prob: f64,
    url_prob: f64,
    seq: u64,
}

impl TweetGenerator {
    /// A generator over `n_users` Zipf(1.05)-popular users at `rate`
    /// events/sec, deterministic for a given `seed`.
    pub fn new(seed: u64, n_users: usize, rate_per_sec: f64) -> Self {
        TweetGenerator {
            rng: StdRng::seed_from_u64(seed),
            users: Zipf::new(n_users.max(1), 1.05),
            topics: DEFAULT_TOPICS.iter().map(|s| s.to_string()).collect(),
            topic_dist: Zipf::new(DEFAULT_TOPICS.len(), 0.8),
            arrivals: ArrivalProcess::Poisson { events_per_sec: rate_per_sec },
            now_us: 0,
            bursts: Vec::new(),
            retweet_prob: 0.25,
            url_prob: 0.15,
            seq: 0,
        }
    }

    /// Override the user-popularity skew.
    pub fn with_user_skew(mut self, s: f64) -> Self {
        self.users = Zipf::new(self.users.len(), s);
        self
    }

    /// Override the arrival process.
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Plant a hot-topic burst.
    pub fn with_burst(mut self, burst: PlantedBurst) -> Self {
        self.bursts.push(burst);
        self
    }

    /// Override the retweet probability.
    pub fn with_retweet_prob(mut self, p: f64) -> Self {
        self.retweet_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Start the virtual clock at `us`.
    pub fn starting_at(mut self, us: u64) -> Self {
        self.now_us = us;
        self
    }

    /// The topic vocabulary.
    pub fn topics(&self) -> &[String] {
        &self.topics
    }

    fn pick_topic(&mut self) -> String {
        // Planted bursts first: active burst wins a boosted coin flip.
        for burst in &self.bursts {
            if (burst.start_us..burst.end_us).contains(&self.now_us) {
                let base = 1.0 / self.topics.len() as f64;
                let p = (base * burst.boost).min(0.95);
                if self.rng.gen_bool(p) {
                    return burst.topic.clone();
                }
            }
        }
        self.topics[self.topic_dist.sample(&mut self.rng)].clone()
    }

    /// Generate the next tweet event. Key = author user id; value = the
    /// tweet JSON.
    pub fn next_event(&mut self, stream: &str) -> Event {
        let user_rank = self.users.sample(&mut self.rng);
        let user = format!("user-{user_rank}");
        let topic = self.pick_topic();
        self.seq += 1;
        let mut fields = vec![
            ("id".to_string(), Json::num(self.seq as f64)),
            ("user".to_string(), Json::str(user.clone())),
            (
                "text".to_string(),
                Json::str(format!("synthetic tweet #{} about {topic} #{topic}", self.seq)),
            ),
            ("topics".to_string(), Json::arr([Json::str(topic)])),
        ];
        if self.rng.gen_bool(self.retweet_prob) {
            let target = format!("user-{}", self.users.sample(&mut self.rng));
            let kind = if self.rng.gen_bool(0.5) { "retweet_of" } else { "reply_to" };
            fields.push((kind.to_string(), Json::str(target)));
        }
        if self.rng.gen_bool(self.url_prob) {
            let url = format!("http://example.com/page{}", self.rng.gen_range(0..50));
            fields.push(("urls".to_string(), Json::arr([Json::str(url)])));
        }
        let value = Json::Obj(fields).to_compact().into_bytes();
        let ts = self.now_us;
        self.now_us += self.arrivals.next_gap_us(self.now_us, &mut self.rng).max(1);
        Event::new(stream, ts, Key::from(user), value)
    }

    /// Generate `n` events.
    pub fn take(&mut self, stream: &str, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.next_event(stream)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tweets_are_valid_json_with_required_fields() {
        let mut gen = TweetGenerator::new(42, 100, 1000.0);
        for ev in gen.take("S1", 50) {
            let v = Json::from_payload(&ev.value).unwrap();
            assert!(v.get("user").is_some());
            assert!(v.get("text").is_some());
            let topics = v.get("topics").unwrap().as_arr().unwrap();
            assert_eq!(topics.len(), 1);
            assert_eq!(ev.key.as_str().unwrap(), v.get("user").unwrap().as_str().unwrap());
        }
    }

    #[test]
    fn timestamps_strictly_increase() {
        let mut gen = TweetGenerator::new(1, 10, 5000.0);
        let events = gen.take("S1", 200);
        for w in events.windows(2) {
            assert!(w[1].ts > w[0].ts);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<_> = TweetGenerator::new(7, 50, 100.0).take("S1", 30);
        let b: Vec<_> = TweetGenerator::new(7, 50, 100.0).take("S1", 30);
        assert_eq!(a, b);
        let c: Vec<_> = TweetGenerator::new(8, 50, 100.0).take("S1", 30);
        assert_ne!(a, c);
    }

    #[test]
    fn user_popularity_is_skewed() {
        let mut gen = TweetGenerator::new(3, 1000, 1000.0);
        let mut counts = std::collections::HashMap::new();
        for ev in gen.take("S1", 20_000) {
            *counts.entry(ev.key.as_str().unwrap().to_string()).or_insert(0u32) += 1;
        }
        let top = counts.values().max().copied().unwrap();
        let mean = 20_000 / counts.len() as u32;
        assert!(top > mean * 5, "top user should dominate: top={top} mean={mean}");
    }

    #[test]
    fn planted_burst_dominates_its_window() {
        let mut gen = TweetGenerator::new(5, 100, 10_000.0).with_burst(PlantedBurst {
            topic: "earthquake".into(),
            start_us: 0,
            end_us: 500_000,
            boost: 8.0,
        });
        let mut in_window = 0;
        let mut hits = 0;
        for ev in gen.take("S1", 5000) {
            let v = Json::from_payload(&ev.value).unwrap();
            let topic = v.get("topics").unwrap().at(0).unwrap().as_str().unwrap().to_string();
            if ev.ts < 500_000 {
                in_window += 1;
                if topic == "earthquake" {
                    hits += 1;
                }
            } else {
                assert_ne!(topic, "earthquake", "burst topic only appears in its window");
            }
        }
        assert!(in_window > 0);
        assert!(
            hits as f64 / in_window as f64 > 0.4,
            "boosted topic should dominate: {hits}/{in_window}"
        );
    }

    #[test]
    fn retweet_probability_zero_suppresses_references() {
        let mut gen = TweetGenerator::new(9, 20, 100.0).with_retweet_prob(0.0);
        for ev in gen.take("S1", 100) {
            let v = Json::from_payload(&ev.value).unwrap();
            assert!(v.get("retweet_of").is_none());
            assert!(v.get("reply_to").is_none());
        }
    }
}
