//! The deterministic reference executor.
//!
//! Section 3 argues that a MapUpdate application is *well-defined* — it
//! generates well-defined streams and slate-update sequences — provided:
//!
//! 1. map and update functions are deterministic;
//! 2. events are fed to each function in increasing timestamp order with a
//!    deterministic tie-break; and
//! 3. output timestamps strictly exceed input timestamps (so cycles make
//!    progress).
//!
//! "Ideally, a MapUpdate implementation should produce these exact streams
//! and slate updates. Due to practical constraints, however, it often can
//! only approximate them." This module *is* the ideal: a single-threaded
//! executor that realizes the exact semantics. The distributed engines in
//! `muppet-runtime` are tested against it — exact equality for loss-free
//! runs of order-insensitive (commutative) applications, bounded deviation
//! otherwise.
//!
//! Implementation: a priority queue of admitted events ordered by
//! `(ts, seq)` where `seq` is an admission counter (the deterministic
//! tie-break). Each step pops the globally-least event and delivers it to
//! every subscribed operator in `OpId` order; emissions are admitted with
//! `ts + 1` and the next `seq` values.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::error::{Error, Result};
use crate::event::{Event, Key, StreamId};
use crate::hash::FxHashMap;
use crate::operator::{Mapper, Updater, VecEmitter};
use crate::slate::Slate;
use crate::workflow::{OpId, OpKind, Workflow};

/// Default bound on delivered events, so accidental self-feeding loops in
/// tests fail fast instead of spinning forever.
pub const DEFAULT_STEP_BUDGET: u64 = 10_000_000;

/// Heap entry: min-order by `(ts, seq)`.
#[derive(PartialEq, Eq)]
struct Pending(Event);

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.order().cmp(&other.0.order())
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Counters describing a finished reference run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Events admitted (external + emitted).
    pub admitted: u64,
    /// Operator invocations (one event can fan out to several subscribers).
    pub deliveries: u64,
    /// Events emitted by operators.
    pub emitted: u64,
}

/// The single-threaded golden-model executor.
pub struct ReferenceExecutor<'wf> {
    wf: &'wf Workflow,
    mappers: FxHashMap<OpId, Box<dyn Mapper>>,
    updaters: FxHashMap<OpId, Box<dyn Updater>>,
    heap: BinaryHeap<Reverse<Pending>>,
    next_seq: u64,
    // BTreeMap so `slates_of` iterates keys deterministically.
    slates: BTreeMap<(OpId, Key), Slate>,
    record_streams: Vec<StreamId>,
    recorded: FxHashMap<StreamId, Vec<Event>>,
    stats: RunStats,
    step_budget: u64,
}

impl<'wf> ReferenceExecutor<'wf> {
    /// Build an executor for `wf`. Operator implementations must then be
    /// registered for every declared operator before running.
    pub fn new(wf: &'wf Workflow) -> Self {
        ReferenceExecutor {
            wf,
            mappers: FxHashMap::default(),
            updaters: FxHashMap::default(),
            heap: BinaryHeap::new(),
            next_seq: 0,
            slates: BTreeMap::new(),
            record_streams: Vec::new(),
            recorded: FxHashMap::default(),
            stats: RunStats::default(),
            step_budget: DEFAULT_STEP_BUDGET,
        }
    }

    /// Cap the number of delivered events (loop safety). The default is
    /// [`DEFAULT_STEP_BUDGET`].
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Record every event that flows through `stream` (for assertions and
    /// replay comparisons).
    pub fn record_stream(&mut self, stream: &str) {
        self.record_streams.push(StreamId::from(stream));
    }

    /// Register a map implementation; its `name()` must match a declared
    /// map function.
    pub fn register_mapper(&mut self, mapper: impl Mapper) -> &mut Self {
        self.register_mapper_boxed(Box::new(mapper)).expect("mapper not declared in workflow");
        self
    }

    /// Register a boxed mapper, returning an error on mismatches.
    pub fn register_mapper_boxed(&mut self, mapper: Box<dyn Mapper>) -> Result<()> {
        let id = self
            .wf
            .op_id(mapper.name())
            .ok_or_else(|| Error::UnknownOperator(mapper.name().to_string()))?;
        if self.wf.op(id).kind != OpKind::Map {
            return Err(Error::OperatorMismatch {
                expected: "a map function".into(),
                got: mapper.name().to_string(),
            });
        }
        self.mappers.insert(id, mapper);
        Ok(())
    }

    /// Register an update implementation; its `name()` must match a
    /// declared update function.
    pub fn register_updater(&mut self, updater: impl Updater) -> &mut Self {
        self.register_updater_boxed(Box::new(updater)).expect("updater not declared in workflow");
        self
    }

    /// Register a boxed updater, returning an error on mismatches.
    pub fn register_updater_boxed(&mut self, updater: Box<dyn Updater>) -> Result<()> {
        let id = self
            .wf
            .op_id(updater.name())
            .ok_or_else(|| Error::UnknownOperator(updater.name().to_string()))?;
        if self.wf.op(id).kind != OpKind::Update {
            return Err(Error::OperatorMismatch {
                expected: "an update function".into(),
                got: updater.name().to_string(),
            });
        }
        self.updaters.insert(id, updater);
        Ok(())
    }

    /// Admit an external event. Only declared external streams accept
    /// outside events.
    pub fn push_external(&mut self, stream: &str, mut event: Event) {
        assert!(
            self.wf.is_external(stream),
            "stream {stream} is not external; operators publish internal events"
        );
        event.stream = StreamId::from(stream);
        self.admit(event);
    }

    /// Admit a batch of external events into one stream.
    pub fn push_external_batch(&mut self, stream: &str, events: impl IntoIterator<Item = Event>) {
        for e in events {
            self.push_external(stream, e);
        }
    }

    fn admit(&mut self, mut event: Event) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        self.stats.admitted += 1;
        self.heap.push(Reverse(Pending(event)));
    }

    /// Deliver the globally-least pending event to all subscribers.
    /// Returns `false` when no events remain.
    pub fn step(&mut self) -> Result<bool> {
        let Some(Reverse(Pending(event))) = self.heap.pop() else {
            return Ok(false);
        };
        if self.record_streams.contains(&event.stream) {
            self.recorded.entry(event.stream.clone()).or_default().push(event.clone());
        }
        let subscribers = self.wf.subscribers_of(event.stream.as_str()).to_vec();
        let mut emitter = VecEmitter::new();
        for op_id in subscribers {
            self.stats.deliveries += 1;
            if self.stats.deliveries > self.step_budget {
                return Err(Error::LoopBudgetExceeded { steps: self.step_budget });
            }
            match self.wf.op(op_id).kind {
                OpKind::Map => {
                    let mapper = self
                        .mappers
                        .get(&op_id)
                        .ok_or_else(|| Error::UnknownOperator(self.wf.op(op_id).name.clone()))?;
                    mapper.map(&mut emitter, &event);
                }
                OpKind::Update => {
                    let updater = self
                        .updaters
                        .get(&op_id)
                        .ok_or_else(|| Error::UnknownOperator(self.wf.op(op_id).name.clone()))?;
                    let slate =
                        self.slates.entry((op_id, event.key.clone())).or_insert_with(Slate::empty);
                    updater.update(&mut emitter, &event, slate);
                }
            }
            // Admit this operator's emissions before running the next
            // subscriber, so seq order is (op order, emission order) — a
            // fixed deterministic rule.
            for rec in emitter.take() {
                if self.wf.is_external(rec.stream.as_str()) {
                    return Err(Error::ExternalStreamViolation(rec.stream.as_str().to_string()));
                }
                if !self.wf.has_stream(rec.stream.as_str()) {
                    return Err(Error::UnknownStream(rec.stream.as_str().to_string()));
                }
                self.stats.emitted += 1;
                self.admit(Event {
                    stream: rec.stream,
                    ts: event.ts + 1,
                    key: rec.key,
                    value: rec.value,
                    seq: 0,
                });
            }
        }
        Ok(true)
    }

    /// Run until no pending events remain (or the step budget trips).
    pub fn run_to_completion(&mut self) -> Result<RunStats> {
        while self.step()? {}
        Ok(self.stats)
    }

    /// The slate for ⟨updater, key⟩, if any exists.
    pub fn slate(&self, updater: &str, key: &Key) -> Option<&Slate> {
        let id = self.wf.op_id(updater)?;
        self.slates.get(&(id, key.clone()))
    }

    /// All ⟨key, slate⟩ pairs of one updater, in key order.
    pub fn slates_of(&self, updater: &str) -> Vec<(&Key, &Slate)> {
        let Some(id) = self.wf.op_id(updater) else {
            return Vec::new();
        };
        self.slates
            .range((id, Key::empty())..)
            .take_while(|((op, _), _)| *op == id)
            .map(|((_, k), s)| (k, s))
            .collect()
    }

    /// Number of live slates across all updaters.
    pub fn slate_count(&self) -> usize {
        self.slates.len()
    }

    /// Events recorded on `stream` (requires a prior
    /// [`record_stream`](Self::record_stream) call).
    pub fn recorded(&self, stream: &str) -> &[Event] {
        self.recorded.get(stream).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Run statistics so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Emitter, FnMapper, FnUpdater};

    fn counting_workflow() -> Workflow {
        let mut b = Workflow::builder("count");
        b.external_stream("S1");
        b.mapper_publishing("M1", &["S1"], &["S2"]);
        b.updater("U1", &["S2"]);
        b.build().unwrap()
    }

    fn passthrough_mapper() -> FnMapper<impl Fn(&mut dyn Emitter, &Event) + Send + Sync> {
        FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        })
    }

    fn counter_updater() -> FnUpdater<impl Fn(&mut dyn Emitter, &Event, &mut Slate) + Send + Sync> {
        FnUpdater::new("U1", |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        })
    }

    #[test]
    fn counts_events_per_key() {
        let wf = counting_workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(passthrough_mapper());
        exec.register_updater(counter_updater());
        for (i, key) in ["walmart", "bestbuy", "walmart", "walmart"].iter().enumerate() {
            exec.push_external("S1", Event::new("S1", i as u64 + 1, Key::from(*key), "checkin"));
        }
        let stats = exec.run_to_completion().unwrap();
        assert_eq!(exec.slate("U1", &Key::from("walmart")).unwrap().counter(), 3);
        assert_eq!(exec.slate("U1", &Key::from("bestbuy")).unwrap().counter(), 1);
        assert_eq!(exec.slate("U1", &Key::from("jcpenney")), None);
        assert_eq!(stats.admitted, 8, "4 external + 4 mapped");
        assert_eq!(stats.deliveries, 8);
        assert_eq!(stats.emitted, 4);
        assert_eq!(exec.slate_count(), 2);
    }

    #[test]
    fn timestamp_order_across_streams() {
        // §3's two-stream example: events feed in global ts order.
        let mut b = Workflow::builder("merge");
        b.external_stream("A");
        b.external_stream("B");
        b.updater("U", &["A", "B"]);
        let wf = b.build().unwrap();
        let mut exec = ReferenceExecutor::new(&wf);
        // Updater appends "<stream>@<ts>" to its slate to expose order.
        exec.register_updater(FnUpdater::new(
            "U",
            |_: &mut dyn Emitter, ev: &Event, slate: &mut Slate| {
                let mut s = slate.as_str().unwrap_or("").to_string();
                s.push_str(&format!("{}@{};", ev.stream, ev.ts));
                slate.replace(s.into_bytes());
            },
        ));
        // Push out of order; the heap must reorder by ts.
        exec.push_external("B", Event::new("B", 25, Key::from("k"), ""));
        exec.push_external("A", Event::new("A", 21, Key::from("k"), ""));
        exec.push_external("A", Event::new("A", 30, Key::from("k"), ""));
        exec.run_to_completion().unwrap();
        assert_eq!(exec.slate("U", &Key::from("k")).unwrap().as_str(), Some("A@21;B@25;A@30;"));
    }

    #[test]
    fn ties_break_by_admission_order() {
        let mut b = Workflow::builder("tie");
        b.external_stream("S");
        b.updater("U", &["S"]);
        let wf = b.build().unwrap();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_updater(FnUpdater::new(
            "U",
            |_: &mut dyn Emitter, ev: &Event, slate: &mut Slate| {
                let mut s = slate.as_str().unwrap_or("").to_string();
                s.push_str(ev.value_str().unwrap());
                slate.replace(s.into_bytes());
            },
        ));
        for payload in ["a", "b", "c"] {
            exec.push_external("S", Event::new("S", 7, Key::from("k"), payload));
        }
        exec.run_to_completion().unwrap();
        assert_eq!(exec.slate("U", &Key::from("k")).unwrap().as_str(), Some("abc"));
    }

    #[test]
    fn output_ts_exceeds_input_ts() {
        let wf = counting_workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.record_stream("S2");
        exec.register_mapper(passthrough_mapper());
        exec.register_updater(counter_updater());
        exec.push_external("S1", Event::new("S1", 100, Key::from("k"), "x"));
        exec.run_to_completion().unwrap();
        let recorded = exec.recorded("S2");
        assert_eq!(recorded.len(), 1);
        assert_eq!(recorded[0].ts, 101, "output ts = input ts + 1");
    }

    #[test]
    fn cyclic_workflow_terminates_when_bounded() {
        // U republishes each event with a countdown; cycle ends at zero.
        let mut b = Workflow::builder("loop");
        b.external_stream("S1");
        b.mapper_publishing("M", &["S1"], &["S2"]);
        b.updater_publishing("U", &["S2"], &["S2"]);
        let wf = b.build().unwrap();
        assert!(wf.has_declared_cycle());
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(FnMapper::new("M", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }));
        exec.register_updater(FnUpdater::new(
            "U",
            |ctx: &mut dyn Emitter, ev: &Event, slate: &mut Slate| {
                let n: u32 = ev.value_str().unwrap().parse().unwrap();
                slate.incr_counter(1);
                if n > 0 {
                    ctx.publish("S2", ev.key.clone(), (n - 1).to_string().into_bytes());
                }
            },
        ));
        exec.push_external("S1", Event::new("S1", 1, Key::from("k"), "5"));
        exec.run_to_completion().unwrap();
        // Visits: 5,4,3,2,1,0 → six updates.
        assert_eq!(exec.slate("U", &Key::from("k")).unwrap().counter(), 6);
    }

    #[test]
    fn runaway_loop_hits_budget() {
        let mut b = Workflow::builder("runaway");
        b.external_stream("S1");
        b.updater_publishing("U", &["S1", "S2"], &["S2"]);
        let wf = b.build().unwrap();
        let mut exec = ReferenceExecutor::new(&wf).with_step_budget(1000);
        exec.register_updater(FnUpdater::new(
            "U",
            |ctx: &mut dyn Emitter, ev: &Event, _: &mut Slate| {
                ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
            },
        ));
        exec.push_external("S1", Event::new("S1", 1, Key::from("k"), "x"));
        let err = exec.run_to_completion().unwrap_err();
        assert_eq!(err, Error::LoopBudgetExceeded { steps: 1000 });
    }

    #[test]
    fn publishing_to_external_or_unknown_stream_errors() {
        let mut b = Workflow::builder("bad-publish");
        b.external_stream("S1");
        b.mapper("M", &["S1"]);
        let wf = b.build().unwrap();

        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(FnMapper::new("M", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S1", ev.key.clone(), vec![]);
        }));
        exec.push_external("S1", Event::new("S1", 1, Key::from("k"), "x"));
        assert!(matches!(exec.run_to_completion(), Err(Error::ExternalStreamViolation(_))));

        let mut exec2 = ReferenceExecutor::new(&wf);
        exec2.register_mapper(FnMapper::new("M", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S999", ev.key.clone(), vec![]);
        }));
        exec2.push_external("S1", Event::new("S1", 1, Key::from("k"), "x"));
        assert!(matches!(exec2.run_to_completion(), Err(Error::UnknownStream(_))));
    }

    #[test]
    #[should_panic(expected = "not external")]
    fn pushing_into_internal_stream_panics() {
        let wf = counting_workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.push_external("S2", Event::new("S2", 1, Key::from("k"), "x"));
    }

    #[test]
    fn registration_validates_kind_and_name() {
        let wf = counting_workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        // Mapper registered under an updater's name → mismatch.
        let err = exec
            .register_mapper_boxed(Box::new(FnMapper::new(
                "U1",
                |_: &mut dyn Emitter, _: &Event| {},
            )))
            .unwrap_err();
        assert!(matches!(err, Error::OperatorMismatch { .. }));
        let err = exec
            .register_updater_boxed(Box::new(FnUpdater::new(
                "M1",
                |_: &mut dyn Emitter, _: &Event, _: &mut Slate| {},
            )))
            .unwrap_err();
        assert!(matches!(err, Error::OperatorMismatch { .. }));
        let err = exec
            .register_mapper_boxed(Box::new(FnMapper::new(
                "Zed",
                |_: &mut dyn Emitter, _: &Event| {},
            )))
            .unwrap_err();
        assert!(matches!(err, Error::UnknownOperator(_)));
    }

    #[test]
    fn unregistered_operator_fails_at_delivery() {
        let wf = counting_workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(passthrough_mapper());
        // U1 missing.
        exec.push_external("S1", Event::new("S1", 1, Key::from("k"), "x"));
        assert!(matches!(exec.run_to_completion(), Err(Error::UnknownOperator(_))));
    }

    #[test]
    fn two_runs_are_bit_identical() {
        // Determinism: identical inputs ⟹ identical slates and streams.
        let run = || {
            let wf = counting_workflow();
            let mut exec = ReferenceExecutor::new(&wf);
            exec.record_stream("S2");
            exec.register_mapper(passthrough_mapper());
            exec.register_updater(counter_updater());
            let keys = ["a", "b", "a", "c", "b", "a"];
            for (i, k) in keys.iter().enumerate() {
                exec.push_external("S1", Event::new("S1", (i / 2) as u64, Key::from(*k), "x"));
            }
            exec.run_to_completion().unwrap();
            let slates: Vec<(String, u64)> = exec
                .slates_of("U1")
                .into_iter()
                .map(|(k, s)| (k.as_str().unwrap().to_string(), s.counter()))
                .collect();
            let stream: Vec<(u64, u64, String)> = exec
                .recorded("S2")
                .iter()
                .map(|e| (e.ts, e.seq, e.key.as_str().unwrap().to_string()))
                .collect();
            (slates, stream)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slates_of_lists_only_that_updater() {
        let mut b = Workflow::builder("two-updaters");
        b.external_stream("S1");
        b.updater("U1", &["S1"]);
        b.updater("U2", &["S1"]);
        let wf = b.build().unwrap();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_updater(FnUpdater::new(
            "U1",
            |_: &mut dyn Emitter, _: &Event, s: &mut Slate| {
                s.incr_counter(1);
            },
        ));
        exec.register_updater(FnUpdater::new(
            "U2",
            |_: &mut dyn Emitter, _: &Event, s: &mut Slate| {
                s.incr_counter(2);
            },
        ));
        exec.push_external("S1", Event::new("S1", 1, Key::from("k"), "x"));
        exec.run_to_completion().unwrap();
        // §3: each ⟨updater, key⟩ pair has its own slate.
        assert_eq!(exec.slate("U1", &Key::from("k")).unwrap().counter(), 1);
        assert_eq!(exec.slate("U2", &Key::from("k")).unwrap().counter(), 2);
        assert_eq!(exec.slates_of("U1").len(), 1);
        assert_eq!(exec.slates_of("nonexistent").len(), 0);
    }
}
