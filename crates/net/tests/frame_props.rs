//! Property tests for the full `Frame` codec: every variant (including
//! `EventBatch`) round-trips through payload encoding and stream I/O, and
//! adversarial inputs — truncation, byte corruption, random bytes,
//! absurd length/count prefixes — always yield a decode *error*, never a
//! panic or a huge speculative allocation.

use std::io::Cursor;

use muppet_core::codec;
use muppet_core::event::{Event, Key};
use muppet_core::Codec;
use muppet_net::frame::{
    Frame, MembershipPhase, MembershipUpdate, StoreGetItem, StorePutItem, WireEvent, MAX_FORWARDS,
    MAX_FRAME_BYTES,
};
use muppet_net::topology::NodeSpec;
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    (
        "[A-Za-z][A-Za-z0-9_]{0,11}",
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..48),
        proptest::collection::vec(any::<u8>(), 0..256),
        any::<u64>(),
    )
        .prop_map(|(stream, ts, key, value, seq)| {
            let mut event = Event::new(stream.as_str(), ts, Key::from(key), value);
            event.seq = seq;
            event
        })
}

fn arb_wire_event() -> impl Strategy<Value = WireEvent> {
    (
        arb_event(),
        0usize..256,
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of(0u64..1024),
        0u8..=MAX_FORWARDS,
    )
        .prop_map(|(event, op, injected_us, redirected, external, hint, forwards)| WireEvent {
            op,
            event,
            injected_us,
            redirected,
            external,
            thread_hint: hint.map(|t| t as usize),
            forwards,
        })
}

fn arb_node_spec() -> impl Strategy<Value = NodeSpec> {
    (0usize..64, "[a-z0-9.\\-]{1,24}", any::<u16>(), any::<u16>())
        .prop_map(|(id, host, port, http_port)| NodeSpec { id, host, port, http_port })
}

fn arb_membership() -> impl Strategy<Value = MembershipUpdate> {
    (
        any::<u64>(),
        0u8..3,
        proptest::collection::vec(0usize..64, 0..4),
        proptest::collection::vec(arb_node_spec(), 0..6),
    )
        .prop_map(|(epoch, phase, joined, nodes)| MembershipUpdate {
            epoch,
            phase: match phase {
                0 => MembershipPhase::Prepare,
                1 => MembershipPhase::Commit,
                _ => MembershipPhase::Abort,
            },
            joined,
            members: Vec::new(),
            nodes,
        })
}

fn arb_membership_with_members() -> impl Strategy<Value = MembershipUpdate> {
    (arb_membership(), proptest::collection::vec(0usize..64, 0..8))
        .prop_map(|(update, members)| MembershipUpdate { members, ..update })
}

fn arb_opt_bytes() -> impl Strategy<Value = Option<Vec<u8>>> {
    proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64))
}

fn arb_codec() -> impl Strategy<Value = Codec> {
    prop_oneof![Just(Codec::Json), Just(Codec::Mbf)]
}

fn arb_store_put_item() -> impl Strategy<Value = StorePutItem> {
    (
        "[a-z][a-z0-9_-]{0,15}",
        proptest::collection::vec(any::<u8>(), 0..48),
        proptest::collection::vec(any::<u8>(), 0..128),
        proptest::option::of(any::<u64>()),
        arb_codec(),
    )
        .prop_map(|(updater, key, value, ttl_secs, codec)| StorePutItem {
            updater,
            key,
            value: value.into(),
            ttl_secs,
            codec,
        })
}

fn arb_store_get_item() -> impl Strategy<Value = StoreGetItem> {
    ("[a-z][a-z0-9_-]{0,15}", proptest::collection::vec(any::<u8>(), 0..48))
        .prop_map(|(updater, key)| StoreGetItem { updater, key })
}

fn arb_frame() -> BoxedStrategy<Frame> {
    let updater = "[a-z][a-z0-9_-]{0,15}";
    prop_oneof![
        // A hello's codecs byte only exists on the wire from v5 up, so
        // pre-v5 hellos must carry codecs = 0 to round-trip exactly.
        (0usize..64, 3u64..=5, any::<bool>()).prop_map(|(sender, version, mbf)| Frame::Hello {
            sender,
            version,
            codecs: if version >= 5 && mbf { 1 } else { 0 },
        }),
        (any::<bool>()).prop_map(|mbf| Frame::HelloAck { codecs: u8::from(mbf) }),
        arb_wire_event().prop_map(Frame::Event),
        proptest::collection::vec(arb_wire_event(), 0..12).prop_map(Frame::EventBatch),
        (0usize..64, any::<u64>())
            .prop_map(|(failed, epoch)| Frame::FailureReport { failed, epoch }),
        (0usize..64, any::<u64>())
            .prop_map(|(failed, epoch)| Frame::FailureBroadcast { failed, epoch }),
        (0usize..64).prop_map(|machine| Frame::Join { machine }),
        arb_membership_with_members().prop_map(Frame::Membership),
        any::<u64>().prop_map(|epoch| Frame::MembershipAck { epoch }),
        any::<u64>().prop_map(|epoch| Frame::MembershipNack { epoch }),
        (updater, proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(updater, key)| Frame::SlateGet { updater, key }),
        arb_opt_bytes().prop_map(|value| Frame::SlateValue { value }),
        (
            updater,
            proptest::collection::vec(any::<u8>(), 0..48),
            proptest::collection::vec(any::<u8>(), 0..128),
            proptest::option::of(any::<u64>()),
            any::<u64>(),
        )
            .prop_map(|(updater, key, value, ttl_secs, now_us)| Frame::StorePut {
                updater,
                key,
                value,
                ttl_secs,
                now_us,
            }),
        (updater, proptest::collection::vec(any::<u8>(), 0..48), any::<u64>())
            .prop_map(|(updater, key, now_us)| Frame::StoreGet { updater, key, now_us }),
        arb_opt_bytes().prop_map(|value| Frame::StoreValue { value }),
        Just(Frame::StoreAck),
        (proptest::collection::vec(arb_store_put_item(), 0..8), any::<u64>())
            .prop_map(|(items, now_us)| Frame::StorePutBatch { items, now_us }),
        proptest::collection::vec(any::<bool>(), 0..32).prop_map(|ok| Frame::StoreAckBatch { ok }),
        (proptest::collection::vec(arb_store_get_item(), 0..8), any::<u64>())
            .prop_map(|(items, now_us)| Frame::StoreGetBatch { items, now_us }),
        proptest::collection::vec(
            proptest::option::of((proptest::collection::vec(any::<u8>(), 0..64), arb_codec())),
            0..8
        )
        .prop_map(|values| Frame::StoreValueBatch { values }),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn every_variant_roundtrips_through_payload_and_stream(frame in arb_frame()) {
        // Payload-level roundtrip.
        let payload = frame.encode_payload();
        prop_assert_eq!(Frame::decode_payload(&payload), Some(frame.clone()));
        // Stream-level roundtrip (header + CRC + payload).
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let back = Frame::read_from(&mut Cursor::new(&wire)).unwrap();
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn framed_sequences_roundtrip_in_order(frames in proptest::collection::vec(arb_frame(), 1..8)) {
        let mut wire = Vec::new();
        for frame in &frames {
            frame.write_to(&mut wire).unwrap();
        }
        let mut cursor = Cursor::new(&wire);
        for frame in &frames {
            prop_assert_eq!(&Frame::read_from(&mut cursor).unwrap(), frame);
        }
    }

    #[test]
    fn truncation_is_an_error_never_a_panic(frame in arb_frame(), cut in any::<u64>()) {
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        // Any strict prefix must fail to read (EOF or decode error).
        let cut = (cut as usize) % wire.len();
        wire.truncate(cut);
        prop_assert!(Frame::read_from(&mut Cursor::new(&wire)).is_err());
    }

    #[test]
    fn payload_truncation_is_a_decode_error(frame in arb_frame(), cut in any::<u64>()) {
        let payload = frame.encode_payload();
        let cut = (cut as usize) % payload.len();
        // decode_payload must reject every strict prefix: either the
        // fields run out of bytes or the trailing-consumption check
        // fires. Never a panic.
        prop_assert_eq!(Frame::decode_payload(&payload[..cut]), None);
    }

    #[test]
    fn byte_corruption_is_detected(frame in arb_frame(), at in any::<u64>(), flip in 1u8..=255) {
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let at = (at as usize) % wire.len();
        wire[at] ^= flip;
        // A corrupted length prefix desyncs the stream (read error / EOF);
        // a corrupted CRC or payload byte trips the checksum. Either way:
        // an error, not a wrong frame and not a panic.
        prop_assert!(Frame::read_from(&mut Cursor::new(&wire)).is_err());
    }

    #[test]
    fn random_bytes_never_panic_the_payload_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Whatever comes back must be reached without panicking; random
        // bytes decoding to Some(frame) would be fine (and wildly
        // unlikely past the kind byte), the property is "total, no UB-ish
        // surprises, no over-allocation".
        let _ = Frame::decode_payload(&bytes);
    }

    #[test]
    fn random_bytes_never_panic_the_stream_reader(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::read_from(&mut Cursor::new(&bytes));
    }

    #[test]
    fn absurd_length_prefixes_are_rejected_before_allocating(len in any::<u32>(), crc in any::<u32>()) {
        // A header claiming up to 4 GiB of payload with no body: must be
        // rejected (over the frame limit) or fail on EOF — and must not
        // try to allocate the claimed length when it exceeds the limit.
        let mut wire = Vec::new();
        codec::put_u32(&mut wire, len);
        codec::put_u32(&mut wire, crc);
        let err = Frame::read_from(&mut Cursor::new(&wire)).unwrap_err();
        if len as usize > MAX_FRAME_BYTES {
            prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn absurd_batch_counts_are_rejected_without_allocating(count in any::<u64>(), body in proptest::collection::vec(any::<u8>(), 0..32)) {
        // KIND_EVENT_BATCH = 11 with an arbitrary count varint and junk
        // body: the decoder caps its pre-allocation by the buffer size,
        // so even count = u64::MAX cannot reserve beyond ~buffer length.
        let mut payload = vec![11u8];
        codec::put_varint(&mut payload, count);
        payload.extend_from_slice(&body);
        let _ = Frame::decode_payload(&payload);
    }

    #[test]
    fn absurd_store_batch_counts_are_rejected_without_allocating(
        kind in prop_oneof![Just(16u8), Just(17), Just(18), Just(19), Just(22), Just(23)],
        count in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // The four store-batch kinds with an arbitrary count varint and a
        // junk body: the per-item decode runs out of bytes and the
        // pre-allocation is capped by the buffer length — clean rejection,
        // no panic, no huge reserve.
        let mut payload = vec![kind];
        codec::put_varint(&mut payload, count);
        payload.extend_from_slice(&body);
        let _ = Frame::decode_payload(&payload);
    }

    #[test]
    fn absurd_membership_counts_are_rejected_without_allocating(
        epoch in any::<u64>(),
        joined_count in any::<u64>(),
        node_count in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // KIND_MEMBERSHIP = 13: corrupt joined/node counts with a junk
        // body must fail cleanly — the per-entry decode runs out of bytes
        // and the pre-allocations are capped by the buffer length.
        let mut payload = vec![13u8];
        codec::put_varint(&mut payload, epoch);
        payload.push(0); // prepare
        codec::put_varint(&mut payload, joined_count);
        codec::put_varint(&mut payload, node_count);
        payload.extend_from_slice(&body);
        let _ = Frame::decode_payload(&payload);
    }
}
