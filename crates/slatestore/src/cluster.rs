//! The replicated store cluster: Muppet's "Cassandra cluster".
//!
//! "A Muppet application's configuration file identifies a Cassandra
//! cluster ... a key space within the cluster, and a column family" (§4.2).
//! This module provides that cluster: N [`StoreNode`]s placed on a
//! consistent-hash ring, R-way replication, and the §4.2 per-operation
//! consistency levels:
//!
//! > "the application can specify the desired quorum used by the Cassandra
//! > store for a successful read/write operation: any single machine to
//! > which the data is assigned for storage, a majority of replicas ... or
//! > all of the replicas."
//!
//! Values are compressed with [`crate::compress`] on write and decompressed
//! on read ("Muppet compresses each slate before storing it"). Reads
//! resolve divergent replicas by newest `write_ts` and repair stale ones.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use muppet_core::sync::Mutex;
use muppet_core::Codec;

use crate::compress::{compress, decompress};
use crate::device::{DeviceProfile, StorageDevice};
use crate::node::{NodeConfig, NodeStats, StoreNode};
use crate::ring::ConsistentRing;
use crate::types::{CellKey, StoreError, StoreResult};

/// Consistency level for one operation (§4.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Consistency {
    /// Any single replica.
    One,
    /// A majority of the replica set.
    #[default]
    Quorum,
    /// Every replica.
    All,
}

impl Consistency {
    /// Acks required out of `replicas`.
    pub fn required(self, replicas: usize) -> usize {
        match self {
            Consistency::One => 1, // any single replica (replicas is validated >= 1)
            Consistency::Quorum => replicas / 2 + 1,
            Consistency::All => replicas,
        }
    }
}

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of storage nodes.
    pub nodes: usize,
    /// Replication factor.
    pub replication: usize,
    /// Default consistency for reads and writes.
    pub consistency: Consistency,
    /// Storage device profile shared by all nodes.
    pub device: DeviceProfile,
    /// Per-node memtable flush threshold.
    pub memtable_flush_bytes: usize,
    /// Compress values before storing (the §4.2 behaviour; off for
    /// ablation).
    pub compress_values: bool,
    /// Largest run [`StoreCluster::put_many`] hands one node in a single
    /// group commit; bigger batches are split. Bounds WAL latency under a
    /// huge flush tick without giving up the per-batch fsync amortization.
    pub put_batch_max: usize,
    /// fsync node WALs on every append (durable against power loss).
    /// Batched writes group-commit: one fsync per [`StoreCluster::put_many`]
    /// run per node, instead of one per record.
    pub wal_sync_each: bool,
    /// Rewrite JSON container cells forward to MBF during compaction (the
    /// at-rest migration; enabled by the runtime when the store codec is
    /// MBF).
    pub compact_rewrite_mbf: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            nodes: 3,
            replication: 3,
            consistency: Consistency::Quorum,
            device: DeviceProfile::NULL,
            memtable_flush_bytes: 4 * 1024 * 1024,
            compress_values: true,
            put_batch_max: 1024,
            wal_sync_each: false,
            compact_rewrite_mbf: false,
        }
    }
}

struct ClusterNode {
    store: Mutex<StoreNode>,
    device: Arc<StorageDevice>,
    up: AtomicBool,
}

/// Aggregate cluster statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterStats {
    /// Per-node stats summed.
    pub node: NodeStats,
    /// Successful quorum writes.
    pub writes_ok: u64,
    /// Batched write calls ([`StoreCluster::put_many`] chunks).
    pub write_batches: u64,
    /// Successful quorum reads.
    pub reads_ok: u64,
    /// Read-repair writes issued.
    pub read_repairs: u64,
    /// Bytes before compression, across writes.
    pub raw_bytes: u64,
    /// Bytes after compression, across writes.
    pub stored_bytes: u64,
}

/// A replicated slate store cluster.
pub struct StoreCluster {
    cfg: StoreConfig,
    ring: ConsistentRing,
    nodes: Vec<ClusterNode>,
    stats: Mutex<ClusterStats>,
}

impl StoreCluster {
    /// Create a cluster with one data directory per node under `base_dir`.
    pub fn open(
        base_dir: impl AsRef<std::path::Path>,
        cfg: StoreConfig,
    ) -> StoreResult<StoreCluster> {
        assert!(cfg.nodes >= 1, "cluster needs at least one node");
        assert!(cfg.replication >= 1 && cfg.replication <= cfg.nodes, "1 <= replication <= nodes");
        let base = base_dir.as_ref();
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            let device = Arc::new(StorageDevice::new(cfg.device));
            let node_cfg = NodeConfig::new(base.join(format!("node-{i}")))
                .with_flush_bytes(cfg.memtable_flush_bytes)
                .with_wal_sync(cfg.wal_sync_each)
                .with_mbf_rewrite(cfg.compact_rewrite_mbf, cfg.compress_values);
            nodes.push(ClusterNode {
                store: Mutex::new(StoreNode::open(node_cfg, Arc::clone(&device))?),
                device,
                up: AtomicBool::new(true),
            });
        }
        let ring = ConsistentRing::new(cfg.nodes, 64);
        Ok(StoreCluster { cfg, ring, nodes, stats: Mutex::new(ClusterStats::default()) })
    }

    fn replica_set(&self, key: &CellKey) -> Vec<usize> {
        let mut item = Vec::with_capacity(key.row.len() + key.column.len() + 1);
        item.extend_from_slice(&key.row);
        item.push(0);
        item.extend_from_slice(&key.column);
        self.ring.owners(muppet_core::hash::fx64(&item), self.cfg.replication)
    }

    /// Write a JSON/raw `value` at the default consistency.
    pub fn put(
        &self,
        key: &CellKey,
        value: &[u8],
        ttl_secs: Option<u64>,
        now: u64,
    ) -> StoreResult<()> {
        self.put_with(key, value, ttl_secs, now, self.cfg.consistency)
    }

    /// Write a codec-tagged value at the default consistency.
    pub fn put_tagged(
        &self,
        key: &CellKey,
        value: &[u8],
        codec: Codec,
        ttl_secs: Option<u64>,
        now: u64,
    ) -> StoreResult<()> {
        self.put_inner(key, value, codec, ttl_secs, now, self.cfg.consistency)
    }

    /// Write with an explicit consistency level (JSON/raw payload).
    pub fn put_with(
        &self,
        key: &CellKey,
        value: &[u8],
        ttl_secs: Option<u64>,
        now: u64,
        consistency: Consistency,
    ) -> StoreResult<()> {
        self.put_inner(key, value, Codec::Json, ttl_secs, now, consistency)
    }

    fn put_inner(
        &self,
        key: &CellKey,
        value: &[u8],
        codec: Codec,
        ttl_secs: Option<u64>,
        now: u64,
        consistency: Consistency,
    ) -> StoreResult<()> {
        let stored: Bytes = if self.cfg.compress_values {
            compress(value).into()
        } else {
            Bytes::copy_from_slice(value)
        };
        let replicas = self.replica_set(key);
        let required = consistency.required(replicas.len());
        let mut acked = 0usize;
        for &id in &replicas {
            let node = &self.nodes[id];
            if !node.up.load(Ordering::Acquire) {
                continue;
            }
            node.store.lock().put_tagged(key.clone(), stored.clone(), codec, ttl_secs, now)?;
            acked += 1;
        }
        let mut stats = self.stats.lock();
        stats.raw_bytes += value.len() as u64;
        stats.stored_bytes += stored.len() as u64 * replicas.len() as u64;
        if acked >= required {
            stats.writes_ok += 1;
            Ok(())
        } else {
            Err(StoreError::QuorumFailed { required, acked })
        }
    }

    /// Write a run of cells at the default consistency — the batched half
    /// of the §4.2 write-behind pipeline. Cells are grouped *per storage
    /// node* (each cell still reaches its full replica set) and every
    /// node's run lands through [`StoreNode::put_many`], whose WAL group
    /// commit costs one fsync per run under `wal_sync_each` instead of one
    /// per record. Returns one result per input cell: a cell acks when its
    /// quorum is met, independent of its batch-mates.
    pub fn put_many(
        &self,
        items: &[(CellKey, &[u8], Codec, Option<u64>)],
        now: u64,
    ) -> Vec<StoreResult<()>> {
        let mut out: Vec<StoreResult<()>> = Vec::with_capacity(items.len());
        for chunk in items.chunks(self.cfg.put_batch_max.max(1)) {
            out.extend(self.put_chunk(chunk, now));
        }
        out
    }

    fn put_chunk(
        &self,
        items: &[(CellKey, &[u8], Codec, Option<u64>)],
        now: u64,
    ) -> Vec<StoreResult<()>> {
        // Compress once per cell, then fan the prepared bytes out to the
        // replica sets.
        let prepared: Vec<(Bytes, Vec<usize>)> = items
            .iter()
            .map(|(key, value, _, _)| {
                let stored: Bytes = if self.cfg.compress_values {
                    compress(value).into()
                } else {
                    Bytes::copy_from_slice(value)
                };
                (stored, self.replica_set(key))
            })
            .collect();
        // Group per node: node id → the (index, cell) runs it stores.
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (idx, (_, replicas)) in prepared.iter().enumerate() {
            for &node in replicas {
                per_node[node].push(idx);
            }
        }
        let mut acked = vec![0usize; items.len()];
        for (node_id, indices) in per_node.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let node = &self.nodes[node_id];
            if !node.up.load(Ordering::Acquire) {
                continue;
            }
            let entries: Vec<(CellKey, Bytes, Codec, Option<u64>)> = indices
                .iter()
                .map(|&idx| {
                    (items[idx].0.clone(), prepared[idx].0.clone(), items[idx].2, items[idx].3)
                })
                .collect();
            // One lock acquisition and one WAL group commit per node.
            match node.store.lock().put_many(&entries, now) {
                Ok(()) => {
                    for &idx in indices {
                        acked[idx] += 1;
                    }
                }
                Err(_) => { /* nothing on this node acked; quorum math decides */ }
            }
        }
        let mut stats = self.stats.lock();
        stats.write_batches += 1;
        let mut out = Vec::with_capacity(items.len());
        for (idx, (key_value, replicas)) in items.iter().zip(prepared.iter()).enumerate() {
            let required = self.cfg.consistency.required(replicas.1.len());
            stats.raw_bytes += key_value.1.len() as u64;
            stats.stored_bytes += prepared[idx].0.len() as u64 * replicas.1.len() as u64;
            if acked[idx] >= required {
                stats.writes_ok += 1;
                out.push(Ok(()));
            } else {
                out.push(Err(StoreError::QuorumFailed { required, acked: acked[idx] }));
            }
        }
        out
    }

    /// Read a run of cells at the default consistency (the remote miss
    /// path's `StoreGetBatch` lands here: one wire round trip, N point
    /// reads). Quorum failures surface per cell as `None`-less errors
    /// folded to `Err`; callers wanting the availability-first posture map
    /// errors to misses.
    pub fn get_many(&self, keys: &[CellKey], now: u64) -> Vec<StoreResult<Option<Bytes>>> {
        keys.iter().map(|key| self.get(key, now)).collect()
    }

    /// Batched codec-tagged reads (the runtime's miss path under an MBF
    /// store: one round trip, values returned with their format tags).
    pub fn get_many_tagged(
        &self,
        keys: &[CellKey],
        now: u64,
    ) -> Vec<StoreResult<Option<(Bytes, Codec)>>> {
        keys.iter().map(|key| self.get_tagged(key, now)).collect()
    }

    /// Delete at the default consistency.
    pub fn delete(&self, key: &CellKey, now: u64) -> StoreResult<()> {
        let replicas = self.replica_set(key);
        let required = self.cfg.consistency.required(replicas.len());
        let mut acked = 0usize;
        for &id in &replicas {
            let node = &self.nodes[id];
            if !node.up.load(Ordering::Acquire) {
                continue;
            }
            node.store.lock().delete(key.clone(), now)?;
            acked += 1;
        }
        if acked >= required {
            Ok(())
        } else {
            Err(StoreError::QuorumFailed { required, acked })
        }
    }

    /// Read at the default consistency.
    pub fn get(&self, key: &CellKey, now: u64) -> StoreResult<Option<Bytes>> {
        self.get_with(key, now, self.cfg.consistency)
    }

    /// Read at the default consistency, returning the payload with its
    /// codec tag.
    pub fn get_tagged(&self, key: &CellKey, now: u64) -> StoreResult<Option<(Bytes, Codec)>> {
        self.get_inner(key, now, self.cfg.consistency)
    }

    /// Read with an explicit consistency level. Queries replicas until the
    /// required count respond, resolves by newest value, and repairs any
    /// stale replica it contacted.
    pub fn get_with(
        &self,
        key: &CellKey,
        now: u64,
        consistency: Consistency,
    ) -> StoreResult<Option<Bytes>> {
        Ok(self.get_inner(key, now, consistency)?.map(|(value, _)| value))
    }

    fn get_inner(
        &self,
        key: &CellKey,
        now: u64,
        consistency: Consistency,
    ) -> StoreResult<Option<(Bytes, Codec)>> {
        let replicas = self.replica_set(key);
        let required = consistency.required(replicas.len());
        // Collect (node, value, write_ts, codec) from live replicas.
        type ReplicaRead = (usize, Option<(Bytes, u64, Codec)>);
        let mut responses: Vec<ReplicaRead> = Vec::new();
        for &id in &replicas {
            let node = &self.nodes[id];
            if !node.up.load(Ordering::Acquire) {
                continue;
            }
            let mut store = node.store.lock();
            // Peek at write_ts by reading the raw cell through get(); the
            // node returns only bytes, so ask twice is wasteful — instead we
            // use get() and track freshness via a follow-up. To keep the node
            // API small we re-read the timestamp from the merged value path:
            // the node's get already resolves newest-internal; cross-replica
            // resolution needs the ts, so we read it via get_with_ts below.
            let got = store.get_with_ts(key, now)?;
            responses.push((id, got));
            if responses.len() >= required {
                break;
            }
        }
        if responses.len() < required {
            return Err(StoreError::QuorumFailed { required, acked: responses.len() });
        }
        // Newest wins.
        let newest =
            responses.iter().filter_map(|(_, v)| v.as_ref()).max_by_key(|(_, ts, _)| *ts).cloned();
        let mut stats = self.stats.lock();
        stats.reads_ok += 1;
        drop(stats);
        match newest {
            None => Ok(None),
            Some((stored, newest_ts, codec)) => {
                // Read repair: any contacted replica with an older (or no)
                // version gets the newest value written back, codec tag
                // included.
                for (id, resp) in &responses {
                    let stale = match resp {
                        None => true,
                        Some((_, ts, _)) => *ts < newest_ts,
                    };
                    if stale {
                        let node = &self.nodes[*id];
                        node.store.lock().put_tagged(
                            key.clone(),
                            stored.clone(),
                            codec,
                            None,
                            newest_ts,
                        )?;
                        self.stats.lock().read_repairs += 1;
                    }
                }
                let value = if self.cfg.compress_values {
                    Bytes::from(decompress(&stored)?)
                } else {
                    stored
                };
                Ok(Some((value, codec)))
            }
        }
    }

    /// Mark a node down (stops serving reads and writes).
    pub fn node_down(&self, id: usize) {
        self.nodes[id].up.store(false, Ordering::Release);
    }

    /// Bring a node back.
    pub fn node_up(&self, id: usize) {
        self.nodes[id].up.store(true, Ordering::Release);
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, id: usize) -> bool {
        self.nodes[id].up.load(Ordering::Acquire)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Flush every node's memtable (end of experiment phases).
    pub fn flush_all(&self, now: u64) -> StoreResult<()> {
        for node in &self.nodes {
            node.store.lock().flush(now)?;
        }
        Ok(())
    }

    /// Sum of live cells across nodes at `now` (counts replicas; divide by
    /// the replication factor for a logical estimate).
    pub fn live_cells(&self, now: u64) -> StoreResult<usize> {
        let mut total = 0;
        for node in &self.nodes {
            total += node.store.lock().live_cells(now)?;
        }
        Ok(total)
    }

    /// Total SSTable bytes across nodes.
    pub fn disk_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.store.lock().disk_bytes()).sum()
    }

    /// WAL fsyncs across nodes (the group-commit observable: under
    /// `wal_sync_each`, per-record puts cost one fsync each while
    /// `put_many` runs cost one per node per batch).
    pub fn wal_sync_count(&self) -> u64 {
        self.nodes.iter().map(|n| n.store.lock().wal_sync_count()).sum()
    }

    /// Bulk-read every visible row of one column (= update function) across
    /// the cluster — §5's "Bulk Reading of Slates" second option: "request
    /// large-volume row reads from the durable key-value store itself".
    /// Values are decompressed; replicas resolve newest-wins. Down nodes
    /// are skipped (availability over completeness, like Muppet's posture).
    pub fn scan_column(&self, column: &str, now: u64) -> StoreResult<Vec<(Bytes, Bytes)>> {
        use std::collections::BTreeMap;
        let mut newest: BTreeMap<Bytes, (u64, Bytes)> = BTreeMap::new();
        for node in &self.nodes {
            if !node.up.load(Ordering::Acquire) {
                continue;
            }
            let mut store = node.store.lock();
            // scan_all is already newest-per-key within a node; cross-node
            // resolution needs timestamps, so re-read each winner's ts.
            for (key, _) in store.scan_all(now)? {
                if key.column.as_ref() != column.as_bytes() {
                    continue;
                }
                if let Some((value, ts, _)) = store.get_with_ts(&key, now)? {
                    match newest.get(&key.row) {
                        Some((best_ts, _)) if *best_ts >= ts => {}
                        _ => {
                            newest.insert(key.row.clone(), (ts, value));
                        }
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(newest.len());
        for (row, (_, stored)) in newest {
            let value =
                if self.cfg.compress_values { Bytes::from(decompress(&stored)?) } else { stored };
            out.push((row, value));
        }
        Ok(out)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ClusterStats {
        let mut out = *self.stats.lock();
        for node in &self.nodes {
            let s = node.store.lock().stats();
            out.node.puts += s.puts;
            out.node.gets += s.gets;
            out.node.memtable_hits += s.memtable_hits;
            out.node.sstable_hits += s.sstable_hits;
            out.node.misses += s.misses;
            out.node.flushes += s.flushes;
            out.node.compactions += s.compactions;
            out.node.gc_cells += s.gc_cells;
            out.node.rewritten_cells += s.rewritten_cells;
        }
        out
    }

    /// Aggregate device I/O across nodes.
    pub fn io_stats(&self) -> crate::device::IoStats {
        let mut out = crate::device::IoStats::default();
        for node in &self.nodes {
            let s = node.device.stats();
            out.reads += s.reads;
            out.writes += s.writes;
            out.read_bytes += s.read_bytes;
            out.write_bytes += s.write_bytes;
            out.service_us += s.service_us;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::TempDir;

    fn cluster(consistency: Consistency) -> (TempDir, StoreCluster) {
        let dir = TempDir::new("cluster").unwrap();
        let cfg = StoreConfig { nodes: 3, replication: 3, consistency, ..Default::default() };
        let c = StoreCluster::open(dir.path(), cfg).unwrap();
        (dir, c)
    }

    fn key(row: &str) -> CellKey {
        CellKey::new(row.as_bytes(), "U1")
    }

    #[test]
    fn write_read_roundtrip_with_compression() {
        let (_dir, c) = cluster(Consistency::Quorum);
        let slate = br#"{"count": 10, "interests": ["deals","deals","deals"]}"#;
        c.put(&key("user-1"), slate, None, 1).unwrap();
        let got = c.get(&key("user-1"), 2).unwrap().unwrap();
        assert_eq!(got.as_ref(), slate);
        let s = c.stats();
        assert_eq!(s.writes_ok, 1);
        assert_eq!(s.reads_ok, 1);
        assert!(s.stored_bytes > 0);
    }

    #[test]
    fn consistency_required_math() {
        assert_eq!(Consistency::One.required(3), 1);
        assert_eq!(Consistency::Quorum.required(3), 2);
        assert_eq!(Consistency::Quorum.required(4), 3);
        assert_eq!(Consistency::Quorum.required(1), 1);
        assert_eq!(Consistency::All.required(3), 3);
    }

    #[test]
    fn one_and_quorum_survive_single_node_failure_all_does_not() {
        let (_dir, c) = cluster(Consistency::Quorum);
        c.put(&key("k"), b"v", None, 1).unwrap();
        c.node_down(0);
        // Quorum (2 of 3) still works regardless of which node died.
        c.put_with(&key("k"), b"v2", None, 2, Consistency::Quorum).unwrap();
        assert_eq!(c.get_with(&key("k"), 3, Consistency::Quorum).unwrap().unwrap().as_ref(), b"v2");
        c.put_with(&key("k"), b"v3", None, 4, Consistency::One).unwrap();
        // ALL requires every replica: with replication == nodes == 3 and one
        // node down, it must fail.
        let err = c.put_with(&key("k"), b"v4", None, 5, Consistency::All).unwrap_err();
        assert!(matches!(err, StoreError::QuorumFailed { required: 3, acked: 2 }));
        let err = c.get_with(&key("k"), 6, Consistency::All).unwrap_err();
        assert!(matches!(err, StoreError::QuorumFailed { .. }));
    }

    #[test]
    fn read_repair_heals_stale_replica() {
        let (_dir, c) = cluster(Consistency::Quorum);
        c.put(&key("heal"), b"old", None, 10).unwrap();
        // Node 0 misses an update.
        c.node_down(0);
        c.put(&key("heal"), b"new", None, 20).unwrap();
        c.node_up(0);
        // Read at ALL touches every replica → newest wins → repair runs.
        let got = c.get_with(&key("heal"), 30, Consistency::All).unwrap().unwrap();
        assert_eq!(got.as_ref(), b"new");
        assert!(c.stats().read_repairs >= 1);
        // Now even reading only node 0's copy must see the repaired value.
        c.node_down(1);
        c.node_down(2);
        let got = c.get_with(&key("heal"), 40, Consistency::One).unwrap();
        assert_eq!(got.unwrap().as_ref(), b"new");
    }

    #[test]
    fn put_many_equals_per_cell_puts() {
        let (_dir, batched) = cluster(Consistency::Quorum);
        let (_dir2, percell) = cluster(Consistency::Quorum);
        let cells: Vec<(CellKey, Vec<u8>)> =
            (0..40).map(|i| (key(&format!("k{i}")), format!("value-{i}").into_bytes())).collect();
        let items: Vec<(CellKey, &[u8], Codec, Option<u64>)> =
            cells.iter().map(|(k, v)| (k.clone(), v.as_slice(), Codec::Json, None)).collect();
        for r in batched.put_many(&items, 5) {
            r.unwrap();
        }
        for (k, v) in &cells {
            percell.put(k, v, None, 5).unwrap();
        }
        // Bit-identical read-back, and the batched cluster did the same
        // number of logical writes.
        for (k, v) in &cells {
            assert_eq!(batched.get(k, 6).unwrap().unwrap().as_ref(), v.as_slice());
            assert_eq!(batched.get(k, 6).unwrap(), percell.get(k, 6).unwrap());
        }
        assert_eq!(batched.stats().writes_ok, 40);
        assert!(batched.stats().write_batches >= 1);
        assert_eq!(batched.stats().node.puts, percell.stats().node.puts);
    }

    #[test]
    fn put_many_chunks_by_batch_limit_and_reports_quorum_per_cell() {
        let dir = TempDir::new("cluster").unwrap();
        let cfg = StoreConfig { put_batch_max: 8, ..Default::default() };
        let c = StoreCluster::open(dir.path(), cfg).unwrap();
        let values: Vec<Vec<u8>> = (0..20).map(|i| format!("v{i}").into_bytes()).collect();
        let items: Vec<(CellKey, &[u8], Codec, Option<u64>)> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (key(&format!("c{i}")), &v[..], Codec::Json, None))
            .collect();
        let results = c.put_many(&items, 1);
        assert_eq!(results.len(), 20);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(c.stats().write_batches, 3, "20 cells at batch limit 8 = 3 chunks");
        // With every node down, each cell individually reports its quorum
        // failure.
        for n in 0..c.node_count() {
            c.node_down(n);
        }
        let results = c.put_many(&items[..3], 2);
        assert!(results.iter().all(|r| matches!(r, Err(StoreError::QuorumFailed { .. }))));
    }

    #[test]
    fn codec_tag_survives_compressed_cluster_roundtrip_and_repair() {
        let (_dir, c) = cluster(Consistency::Quorum);
        let doc = muppet_core::Json::parse(r#"{"count": 3, "tags": ["a","b"]}"#).unwrap();
        let mbf = doc.to_mbf().unwrap();
        c.put_tagged(&key("bin"), &mbf, Codec::Mbf, None, 10).unwrap();
        let (got, codec) = c.get_tagged(&key("bin"), 11).unwrap().unwrap();
        assert_eq!(codec, Codec::Mbf);
        assert_eq!(got.as_ref(), mbf.as_slice());
        // Repair a stale replica and confirm the tag travels with the value.
        c.node_down(0);
        c.put_tagged(&key("bin"), &mbf, Codec::Mbf, None, 20).unwrap();
        c.node_up(0);
        c.get_with(&key("bin"), 30, Consistency::All).unwrap();
        c.node_down(1);
        c.node_down(2);
        let (healed, codec) = c.get_inner(&key("bin"), 40, Consistency::One).unwrap().unwrap();
        assert_eq!(codec, Codec::Mbf);
        assert_eq!(healed.as_ref(), mbf.as_slice());
    }

    #[test]
    fn get_many_matches_point_reads() {
        let (_dir, c) = cluster(Consistency::Quorum);
        c.put(&key("a"), b"1", None, 1).unwrap();
        c.put(&key("b"), b"2", None, 1).unwrap();
        let keys = vec![key("a"), key("b"), key("ghost")];
        let got = c.get_many(&keys, 2);
        assert_eq!(got[0].as_ref().unwrap().as_deref(), Some(b"1".as_slice()));
        assert_eq!(got[1].as_ref().unwrap().as_deref(), Some(b"2".as_slice()));
        assert_eq!(got[2].as_ref().unwrap(), &None);
    }

    #[test]
    fn missing_keys_read_as_none() {
        let (_dir, c) = cluster(Consistency::Quorum);
        assert_eq!(c.get(&key("ghost"), 1).unwrap(), None);
    }

    #[test]
    fn delete_masks_value_cluster_wide() {
        let (_dir, c) = cluster(Consistency::All);
        c.put(&key("d"), b"v", None, 1).unwrap();
        c.delete(&key("d"), 2).unwrap();
        assert_eq!(c.get(&key("d"), 3).unwrap(), None);
    }

    #[test]
    fn ttl_expires_cluster_wide() {
        let (_dir, c) = cluster(Consistency::Quorum);
        c.put(&key("t"), b"v", Some(1), 1_000_000).unwrap();
        assert!(c.get(&key("t"), 1_500_000).unwrap().is_some());
        assert!(c.get(&key("t"), 3_000_000).unwrap().is_none());
    }

    #[test]
    fn replication_below_node_count_spreads_keys() {
        let dir = TempDir::new("cluster").unwrap();
        let cfg = StoreConfig { nodes: 5, replication: 2, ..Default::default() };
        let c = StoreCluster::open(dir.path(), cfg).unwrap();
        for i in 0..100 {
            c.put(&key(&format!("k{i}")), b"v", None, i).unwrap();
        }
        // Each key on exactly 2 of 5 nodes: total stored cells = 200.
        c.flush_all(1000).unwrap();
        assert_eq!(c.live_cells(1000).unwrap(), 200);
    }

    #[test]
    fn compression_toggle_affects_stored_bytes() {
        let dir_a = TempDir::new("cluster-comp").unwrap();
        let dir_b = TempDir::new("cluster-raw").unwrap();
        let compressible = vec![b'a'; 10_000];
        let mk = |dir: &TempDir, compress: bool| {
            let cfg = StoreConfig { compress_values: compress, ..Default::default() };
            StoreCluster::open(dir.path(), cfg).unwrap()
        };
        let ca = mk(&dir_a, true);
        ca.put(&key("k"), &compressible, None, 1).unwrap();
        assert_eq!(ca.get(&key("k"), 2).unwrap().unwrap().as_ref(), &compressible[..]);
        let cb = mk(&dir_b, false);
        cb.put(&key("k"), &compressible, None, 1).unwrap();
        assert!(ca.stats().stored_bytes < cb.stats().stored_bytes / 10);
    }

    #[test]
    #[should_panic(expected = "replication <= nodes")]
    fn rejects_overbroad_replication() {
        let dir = TempDir::new("cluster").unwrap();
        let cfg = StoreConfig { nodes: 2, replication: 3, ..Default::default() };
        let _ = StoreCluster::open(dir.path(), cfg);
    }
}
