//! X9 — §4.2: TTLs contain storage growth.
//!
//! "Many such applications only care about current activities in their
//! streams ... an application may want to keep track of only active
//! Twitter users (e.g., those who have tweeted at least once in the past
//! quarter), a working set which is typically much smaller than the set of
//! all Twitter users who have ever tweeted."
//!
//! We simulate a churning user population over virtual days: each day a
//! sliding window of users is active. Without TTL the store accumulates
//! every user ever seen; with a 3-day TTL it plateaus at the active set.

use muppet_slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_slatestore::types::CellKey;
use muppet_slatestore::util::TempDir;

use crate::table::Table;
use crate::Scale;

const MICROS_PER_DAY: u64 = 24 * 60 * 60 * 1_000_000;

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X9",
        "TTL contains slate-store growth under churn",
        "§4.2 (time-to-live parameters)",
    );
    let users_per_day = scale.events(2_000);
    let days = 10u64;
    let ttl_days = 3u64;

    let run_store = |ttl: Option<u64>| -> Vec<usize> {
        let dir = TempDir::new("x9").unwrap();
        let store = StoreCluster::open(
            dir.path(),
            StoreConfig { nodes: 1, replication: 1, ..Default::default() },
        )
        .unwrap();
        let mut live_per_day = Vec::new();
        for day in 0..days {
            // The active window slides: day d activates users
            // [d*churn, d*churn + users_per_day).
            let churn = users_per_day / 2;
            let start = day as usize * churn;
            for u in start..start + users_per_day {
                let key = CellKey::new(format!("user-{u:08}"), "profile");
                let now = day * MICROS_PER_DAY + (u % 1000) as u64;
                store.put(&key, format!("{{\"day\":{day}}}").as_bytes(), ttl, now).unwrap();
            }
            let eod = (day + 1) * MICROS_PER_DAY;
            store.flush_all(eod).unwrap();
            live_per_day.push(store.live_cells(eod).unwrap());
        }
        live_per_day
    };

    let no_ttl = run_store(None);
    let with_ttl = run_store(Some(ttl_days * 24 * 3600));

    let mut table = Table::new(["virtual day", "live slates (no TTL)", "live slates (3-day TTL)"]);
    for day in 0..days as usize {
        table.row([day.to_string(), no_ttl[day].to_string(), with_ttl[day].to_string()]);
    }
    table.print();
    let growth_no_ttl = no_ttl[days as usize - 1] as f64 / no_ttl[2] as f64;
    let growth_ttl = with_ttl[days as usize - 1] as f64 / with_ttl[2] as f64;
    println!(
        "\nshape check: without TTL the store grows without bound (×{growth_no_ttl:.2} from day 2\n\
         to day {}); with a {ttl_days}-day TTL it plateaus at the active working set (×{growth_ttl:.2}),\n\
         'keeping slates as long as needed without having to manually delete' (§4.2).",
        days - 1
    );
    assert!(growth_no_ttl > growth_ttl, "TTL must flatten growth");
}
