//! End-to-end observability: the unified registry served over real HTTP
//! at `GET /metrics`, parsed back and checked against the engine's own
//! stats; the enriched `/status` identity fields; and the hot-key
//! telemetry surfacing a skewed workload.

use std::sync::Arc;
use std::time::Duration;

use muppet::obs::parse_exposition;
use muppet::prelude::*;
use muppet::runtime::http::http_get;

fn counter_workflow() -> Workflow {
    let mut b = Workflow::builder("obs-e2e");
    b.external_stream("S1");
    b.updater("tally", &["S1"]);
    b.build().unwrap()
}

fn counter_ops() -> muppet::runtime::engine::OperatorSet {
    muppet::runtime::engine::OperatorSet::new().updater(FnUpdater::new(
        "tally",
        |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        },
    ))
}

fn start(metrics: bool, sample_n: u64) -> Arc<Engine> {
    let cfg = EngineConfig {
        machines: 2,
        workers_per_machine: 2,
        metrics,
        latency_sample_n: sample_n,
        ..EngineConfig::default()
    };
    Arc::new(Engine::start(counter_workflow(), counter_ops(), cfg, None).unwrap())
}

/// Submit `n` events, three quarters of which share one hot key.
fn feed(engine: &Engine, n: u64) {
    for i in 0..n {
        let key = if i % 4 != 0 { Key::from("walmart") } else { Key::from(format!("k{i}")) };
        engine.submit(Event::new("S1", i, key, Vec::new())).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(30)));
}

#[test]
fn metrics_endpoint_round_trips_every_engine_counter() {
    let engine = start(true, 1);
    feed(&engine, 400);
    let server = HttpSlateServer::serve(Arc::clone(&engine) as _).unwrap();

    let (code, body) = http_get(&format!("{}/metrics", server.base_url())).unwrap();
    assert_eq!(code, 200);
    let text = String::from_utf8(body).unwrap();
    let samples = parse_exposition(&text).expect("/metrics must serve valid Prometheus text");

    let flat = |name: &str| -> Option<f64> {
        samples.iter().find(|s| s.name == name && s.labels.is_empty()).map(|s| s.value)
    };
    // Every pre-existing EngineStats counter surfaces as a family.
    let stats = engine.stats();
    assert_eq!(flat("muppet_events_submitted_total"), Some(stats.submitted as f64));
    assert_eq!(flat("muppet_events_processed_total"), Some(stats.processed as f64));
    assert_eq!(flat("muppet_events_emitted_total"), Some(stats.emitted as f64));
    assert_eq!(flat("muppet_overflow_dropped_total"), Some(0.0));
    assert_eq!(flat("muppet_overflow_redirected_total"), Some(0.0));
    assert_eq!(flat("muppet_throttle_waits_total"), Some(stats.throttle_waits as f64));
    assert_eq!(flat("muppet_publish_errors_total"), Some(0.0));
    assert_eq!(flat("muppet_events_forwarded_total"), Some(stats.forwarded as f64));
    assert_eq!(flat("muppet_cache_hits_total"), Some(stats.cache.hits as f64));
    assert_eq!(flat("muppet_cache_misses_total"), Some(stats.cache.misses as f64));
    let lost: f64 =
        samples.iter().filter(|s| s.name == "muppet_events_lost_total").map(|s| s.value).sum();
    assert_eq!(lost, 0.0, "nothing may be lost in a healthy run");

    // Stage histograms: all five stages appear, and with 1-in-1 sampling
    // the service stage saw every processed event.
    let stage_count = |stage: &str| -> f64 {
        samples
            .iter()
            .filter(|s| {
                s.name == "muppet_stage_latency_us_count" && s.label("stage") == Some(stage)
            })
            .map(|s| s.value)
            .sum()
    };
    for stage in ["ingest", "queue_wait", "service", "fanout", "flush"] {
        assert!(
            samples.iter().any(|s| s.name.starts_with("muppet_stage_latency_us")
                && s.label("stage") == Some(stage)),
            "stage {stage} missing from /metrics"
        );
    }
    assert_eq!(stage_count("service"), stats.processed as f64);
    assert!(stage_count("ingest") > 0.0);
    assert!(stage_count("queue_wait") > 0.0);

    // The hot key dominates the space-saving top-k series.
    let hottest = samples
        .iter()
        .filter(|s| s.name == "muppet_hot_key_events_est")
        .max_by(|a, b| a.value.total_cmp(&b.value))
        .expect("hot-key series must be exported");
    assert_eq!(hottest.label("key"), Some("walmart"));
    assert_eq!(hottest.label("op"), Some("tally"));
    assert!(hottest.value >= 300.0, "~3/4 of 400 events hit the hot key: {}", hottest.value);
}

#[test]
fn status_carries_identity_fields_and_agrees_with_metrics() {
    let engine = start(true, 64);
    feed(&engine, 100);
    let server = HttpSlateServer::serve(Arc::clone(&engine) as _).unwrap();

    let (code, body) = http_get(&format!("{}/status", server.base_url())).unwrap();
    assert_eq!(code, 200);
    let status = Json::parse_bytes(&body).unwrap();
    assert_eq!(status.get("submitted").and_then(Json::as_u64), Some(100));
    assert!(status.get("uptime_s").and_then(Json::as_u64).is_some());
    assert_eq!(status.get("epoch").and_then(Json::as_u64), Some(0));
    assert_eq!(
        status.get("protocol_version").and_then(Json::as_u64),
        Some(muppet::net::frame::PROTOCOL_VERSION)
    );
    // The in-process transport hosts every machine, so there is no single
    // local machine id — the field is present but null.
    assert!(status.get("machine_id").is_some());

    // /metrics and /status are views of the same registry state.
    let (_, body) = http_get(&format!("{}/metrics", server.base_url())).unwrap();
    let samples = parse_exposition(&String::from_utf8(body).unwrap()).unwrap();
    let submitted =
        samples.iter().find(|s| s.name == "muppet_events_submitted_total").map(|s| s.value);
    assert_eq!(submitted, Some(100.0));
    let epoch = samples.iter().find(|s| s.name == "muppet_epoch").map(|s| s.value);
    assert_eq!(epoch, Some(0.0));
}

#[test]
fn disabling_metrics_keeps_counters_but_drops_spans_and_sketches() {
    let engine = start(false, 64);
    feed(&engine, 200);
    let server = HttpSlateServer::serve(Arc::clone(&engine) as _).unwrap();

    let (code, body) = http_get(&format!("{}/metrics", server.base_url())).unwrap();
    assert_eq!(code, 200);
    let samples = parse_exposition(&String::from_utf8(body).unwrap()).unwrap();

    // Counters are plain atomics and stay on.
    let submitted =
        samples.iter().find(|s| s.name == "muppet_events_submitted_total").map(|s| s.value);
    assert_eq!(submitted, Some(200.0));
    // No sampled spans, no hot-key sketch.
    let span_count: f64 =
        samples.iter().filter(|s| s.name == "muppet_stage_latency_us_count").map(|s| s.value).sum();
    assert_eq!(span_count, 0.0, "metrics off must record no stage spans");
    assert!(
        !samples.iter().any(|s| s.name == "muppet_hot_key_events_est"),
        "metrics off must not export hot-key series"
    );
    assert!(engine.hot_keys(5).is_empty());
}
