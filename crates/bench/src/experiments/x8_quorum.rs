//! X8 — §4.2: the quorum knob ("any single machine ... a majority of
//! replicas ... or all of the replicas").
//!
//! Replication 3 on an SSD-profiled store: per-operation latency grows
//! with the consistency level, and availability under a single replica
//! failure differs — ONE and QUORUM keep serving, ALL refuses.

use std::time::Instant;

use muppet_slatestore::cluster::{Consistency, StoreCluster, StoreConfig};
use muppet_slatestore::device::DeviceProfile;
use muppet_slatestore::types::CellKey;
use muppet_slatestore::util::TempDir;

use crate::table::{us, Table};
use crate::Scale;

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner("X8", "consistency levels: latency and availability", "§4.2 (quorum parameters)");
    let ops = scale.events(2_000);

    let dir = TempDir::new("x8").unwrap();
    let store = StoreCluster::open(
        dir.path(),
        StoreConfig { nodes: 3, replication: 3, device: DeviceProfile::SSD, ..Default::default() },
    )
    .unwrap();

    // Pre-populate and flush so reads hit SSTables and pay the device's
    // random-read cost (the §4.2 "row fetches" path); one read contacts
    // `required(level)` replicas, so read latency scales with the level.
    let universe = 512usize;
    for i in 0..universe {
        let key = CellKey::new(format!("row-{i:05}"), "U");
        store.put(&key, format!("v{i}").as_bytes(), None, i as u64).unwrap();
    }
    store.flush_all(universe as u64 + 1).unwrap();

    let mut table = Table::new([
        "consistency",
        "replicas on read path",
        "write latency (mean)",
        "read latency (mean)",
        "ok with 1 node down",
    ]);
    for (name, level, replicas_read) in [
        ("ONE", Consistency::One, 1usize),
        ("QUORUM", Consistency::Quorum, 2),
        ("ALL", Consistency::All, 3),
    ] {
        // Write latency with all replicas healthy (writes always fan out to
        // every replica synchronously; the level gates the ack count).
        let t0 = Instant::now();
        for i in 0..ops {
            let key = CellKey::new(format!("{name}-{}", i % 64), "U");
            store.put_with(&key, format!("v{i}").as_bytes(), None, i as u64, level).unwrap();
        }
        let write_us = t0.elapsed().as_micros() as u64 / ops as u64;
        let t0 = Instant::now();
        for i in 0..ops {
            let key = CellKey::new(format!("row-{:05}", i % universe), "U");
            store.get_with(&key, universe as u64 + 1, level).unwrap();
        }
        let read_us = t0.elapsed().as_micros() as u64 / ops as u64;

        // Availability with one replica down.
        store.node_down(0);
        let write_ok =
            store.put_with(&CellKey::new("probe", "U"), b"x", None, 999_999, level).is_ok();
        let read_ok = store.get_with(&CellKey::new("probe", "U"), 1_000_000, level).is_ok();
        store.node_up(0);
        table.row([
            name.to_string(),
            replicas_read.to_string(),
            us(write_us),
            us(read_us),
            format!("write={} read={}", tick(write_ok), tick(read_ok)),
        ]);
    }
    table.print();
    println!(
        "\nshape check: read latency grows with the number of replicas a read must\n\
         contact (ONE < QUORUM < ALL); with one of three replicas down, ONE and QUORUM\n\
         stay available while ALL fails — the §4.2 consistency/availability dial.\n\
         (Writes fan out to all replicas synchronously here, so the level changes\n\
         write availability, not write latency.)"
    );
}

fn tick(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}
