//! `muppetd` — one Muppet machine as a standalone OS process.
//!
//! Joins a static cluster (TOML config or `--peers` flag) — or an
//! already-running one (`--join`, elastic scale-out) — runs the engine
//! for one of the bundled applications over the TCP transport, and
//! serves the §4.4 HTTP endpoints on its topology `http_port`:
//!
//! * `GET  /slate/<updater>/<key>`  — live slate read (cluster-wide: reads
//!   for keys owned by other machines cross the wire);
//! * `GET  /keys/<updater>`         — cached keys;
//! * `GET  /status`                 — engine counters + epoch + failures;
//! * `GET  /metrics`                — Prometheus text exposition (counters,
//!   per-stage latency histograms, hot-key top-k);
//! * `GET  /membership`             — epoch, node list, failed machines;
//! * `POST /submit/<stream>/<key>`  — ingest one event (body = value);
//! * `POST /join` (master only)     — reserve a cluster id for a joiner.
//!
//! Example 3-node loopback cluster:
//!
//! ```sh
//! cargo run --release --bin muppetd -- --peers \
//!     127.0.0.1:9100:8100,127.0.0.1:9101:8101,127.0.0.1:9102:8102 --node 0 &
//! # ... same with --node 1 and --node 2 ...
//! curl -X POST --data-binary '{"topics":["sports"]}' http://127.0.0.1:8100/submit/S1/k1
//! curl http://127.0.0.1:8102/status
//! ```
//!
//! Growing the running cluster by a 4th machine (DESIGN.md §7):
//!
//! ```sh
//! cargo run --release --bin muppetd -- \
//!     --join 127.0.0.1:8100 --listen 127.0.0.1:9103:8103
//! ```
//!
//! The joiner reserves an id at the master's HTTP `/join`, starts its
//! engine (listener live, outside every ring), then announces itself on
//! the wire; the master's epoch-stamped membership update installs it
//! everywhere, with moved slates handed off through the slate store.
//!
//! The failure master (§4.3) runs on the topology's `master` node (default
//! node 0). Kill any other node and keep submitting: the senders report
//! the dead machine, the master broadcasts, and `/status` on every
//! surviving node shows it under `failed_machines`.
//!
//! The event wire batches: outbound events coalesce into `EventBatch`
//! frames per peer, flushed at `--batch-max` events or `--flush-us`
//! microseconds of age, whichever first (see DESIGN.md §5 "Batching and
//! backpressure").

use std::sync::Arc;

use muppet::apps::{hot_topics, retailer};
use muppet::core::workflow::Workflow;
use muppet::prelude::*;
use muppet::runtime::engine::{OperatorSet, TransportKind};
use muppet::runtime::http::http_post;
use muppet::slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_net::topology::Topology;

struct Options {
    topology: Topology,
    node: usize,
    app: String,
    kind: EngineKind,
    workers: usize,
    store_host: Option<usize>,
    data_dir: Option<String>,
    batch_max: usize,
    flush_us: u64,
    flush_batch_max: usize,
    metrics: bool,
    latency_sample_n: u64,
    log_level: Level,
    log_json: bool,
    /// Elastic join state from the grant: (founding machine count, grant
    /// epoch, failed machines, committed ring members).
    join: Option<(usize, u64, Vec<usize>, Vec<usize>)>,
    ingest_wal: Option<String>,
    ingest_sync_each: bool,
    dlq_capacity: Option<usize>,
    wire_codec: CodecChoice,
    combine: bool,
    hot_split_threshold: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: muppetd (--config <cluster.toml> | --peers <host:port:http,...>) --node <id>
           [--app hot_topics|retailer] [--engine muppet1|muppet2]
           [--workers <n>] [--store-host <id>] [--data-dir <path>] [--master <id>]
           [--batch-max <events>] [--flush-us <microseconds>]
           [--flush-batch-max <slates>]
           [--metrics on|off] [--latency-sample-n <n>]
           [--ingest-wal <path>] [--ingest-sync each|group] [--dlq-capacity <n>]
           [--wire-codec auto|json|mbf]
           [--combine on|off] [--hot-split-threshold <events>]
           [--log-level debug|info|warn|error|off] [--log-json]
       muppetd --join <master-host:http_port> --listen <host:port:http_port>
           [--app ...] [--engine ...] [--workers ...] [--store-host <id>] [...]"
    );
    std::process::exit(2)
}

fn fail(msg: String) -> ! {
    eprintln!("muppetd: {msg}");
    std::process::exit(2)
}

/// A parsed join grant.
struct Grant {
    topology: Topology,
    id: usize,
    base: usize,
    epoch: u64,
    failed: Vec<usize>,
    members: Vec<usize>,
    /// The cluster's store host (inherited so handoff faults find the
    /// slates the old owners flushed).
    store_host: Option<usize>,
}

/// Reserve an id at the running cluster's master and parse the grant.
fn reserve_join(master_http: &str, listen: &str) -> Grant {
    let fields: Vec<&str> = listen.split(':').collect();
    if fields.len() != 3 {
        fail(format!("--listen wants host:port:http_port, got '{listen}'"));
    }
    let url = format!("http://{master_http}/join");
    let (code, body) = http_post(&url, listen.as_bytes())
        .unwrap_or_else(|e| fail(format!("cannot reach master at {url}: {e}")));
    let body = String::from_utf8_lossy(&body).to_string();
    if code != 200 {
        fail(format!("master refused the join: {body}"));
    }
    // Grant: "id=N epoch=E base=B failed=a,b members=a,b\n" + topology
    // TOML.
    let (header, toml) =
        body.split_once('\n').unwrap_or_else(|| fail(format!("malformed grant: {body}")));
    let parse_list = |v: &str| -> Vec<usize> {
        v.split(',').filter(|s| !s.is_empty()).filter_map(|s| s.parse().ok()).collect()
    };
    let mut id = None;
    let mut epoch = None;
    let mut base = None;
    let mut failed = Vec::new();
    let mut members: Option<Vec<usize>> = None;
    let mut store_host = None;
    for part in header.split_whitespace() {
        match part.split_once('=') {
            Some(("id", v)) => id = v.parse().ok(),
            Some(("epoch", v)) => epoch = v.parse().ok(),
            Some(("base", v)) => base = v.parse().ok(),
            Some(("failed", v)) => failed = parse_list(v),
            Some(("members", v)) => members = Some(parse_list(v)),
            Some(("store_host", v)) => store_host = v.parse().ok(),
            _ => {}
        }
    }
    let (Some(id), Some(epoch), Some(base), Some(members)) = (id, epoch, base, members) else {
        fail(format!("malformed grant header: {header}"))
    };
    let topology =
        Topology::from_toml_str(toml).unwrap_or_else(|e| fail(format!("bad grant topology: {e}")));
    Grant { topology, id, base, epoch, failed, members, store_host }
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut topology: Option<Topology> = None;
    let mut node: Option<usize> = None;
    let mut app = "hot_topics".to_string();
    let mut kind = EngineKind::Muppet2;
    let mut workers = 4;
    let mut store_host = None;
    let mut data_dir = None;
    let mut master: Option<usize> = None;
    let mut join: Option<String> = None;
    let mut listen: Option<String> = None;
    let defaults = EngineConfig::default();
    let mut batch_max = defaults.net_batch_max;
    let mut flush_us = defaults.net_flush_us;
    let mut flush_batch_max = defaults.flush_batch_max;
    let mut metrics = defaults.metrics;
    let mut latency_sample_n = defaults.latency_sample_n;
    // Unlike library embeddings (silent by default), a daemon logs its
    // operational incidents.
    let mut log_level = Level::Info;
    let mut log_json = false;
    let mut ingest_wal = None;
    let mut ingest_sync_each = false;
    let mut dlq_capacity = None;
    let mut wire_codec = defaults.wire_codec;
    let mut combine = defaults.combine;
    let mut hot_split_threshold = defaults.hot_split_threshold;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--config" => {
                let path = value();
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    fail(format!("cannot read {path}: {e}"));
                });
                topology = Some(Topology::from_toml_str(&text).unwrap_or_else(|e| {
                    fail(format!("bad config {path}: {e}"));
                }));
            }
            "--peers" => {
                topology = Some(Topology::from_peer_list(value()).unwrap_or_else(|e| {
                    fail(format!("bad --peers: {e}"));
                }));
            }
            "--node" => node = value().parse().ok(),
            "--join" => join = Some(value().to_string()),
            "--listen" => listen = Some(value().to_string()),
            "--app" => app = value().to_string(),
            "--engine" => {
                kind = match value() {
                    "muppet1" | "1" => EngineKind::Muppet1,
                    "muppet2" | "2" => EngineKind::Muppet2,
                    other => {
                        eprintln!("muppetd: unknown engine {other:?}");
                        usage()
                    }
                }
            }
            "--workers" => workers = value().parse().unwrap_or(4),
            "--batch-max" => {
                batch_max = value().parse().unwrap_or_else(|_| {
                    eprintln!("muppetd: --batch-max wants an event count");
                    usage()
                })
            }
            "--flush-us" => {
                flush_us = value().parse().unwrap_or_else(|_| {
                    eprintln!("muppetd: --flush-us wants microseconds");
                    usage()
                })
            }
            "--flush-batch-max" => {
                flush_batch_max = value().parse().unwrap_or_else(|_| {
                    eprintln!("muppetd: --flush-batch-max wants a slate count");
                    usage()
                })
            }
            "--metrics" => {
                metrics = match value() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => {
                        eprintln!("muppetd: --metrics wants on|off, got {other:?}");
                        usage()
                    }
                }
            }
            "--latency-sample-n" => {
                latency_sample_n = value().parse().unwrap_or_else(|_| {
                    eprintln!("muppetd: --latency-sample-n wants an event count");
                    usage()
                })
            }
            "--log-level" => {
                log_level = Level::parse(value()).unwrap_or_else(|| {
                    eprintln!("muppetd: --log-level wants debug|info|warn|error|off");
                    usage()
                })
            }
            "--log-json" => log_json = true,
            "--ingest-wal" => ingest_wal = Some(value().to_string()),
            "--ingest-sync" => {
                ingest_sync_each = match value() {
                    "each" => true,
                    "group" => false,
                    other => {
                        eprintln!("muppetd: --ingest-sync wants each|group, got {other:?}");
                        usage()
                    }
                }
            }
            "--dlq-capacity" => {
                dlq_capacity = Some(value().parse().unwrap_or_else(|_| {
                    eprintln!("muppetd: --dlq-capacity wants an event count");
                    usage()
                }))
            }
            "--wire-codec" => {
                wire_codec = value().parse().unwrap_or_else(|_| {
                    eprintln!("muppetd: --wire-codec wants auto|json|mbf");
                    usage()
                })
            }
            "--combine" => {
                combine = match value() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => {
                        eprintln!("muppetd: --combine wants on|off, got {other:?}");
                        usage()
                    }
                }
            }
            "--hot-split-threshold" => {
                hot_split_threshold = value().parse().unwrap_or_else(|_| {
                    eprintln!("muppetd: --hot-split-threshold wants an event count");
                    usage()
                })
            }
            "--store-host" => store_host = value().parse().ok(),
            "--data-dir" => data_dir = Some(value().to_string()),
            "--master" => master = value().parse().ok(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("muppetd: unknown flag {other:?}");
                usage()
            }
        }
    }

    if let Some(master_http) = join {
        // Elastic join: the grant supplies topology, id, epoch state —
        // and the cluster's store host, unless overridden explicitly.
        let listen = listen.unwrap_or_else(|| fail("--join requires --listen".to_string()));
        let grant = reserve_join(&master_http, &listen);
        return Options {
            topology: grant.topology,
            node: grant.id,
            app,
            kind,
            workers,
            store_host: store_host.or(grant.store_host),
            data_dir,
            batch_max,
            flush_us,
            flush_batch_max,
            metrics,
            latency_sample_n,
            log_level,
            log_json,
            join: Some((grant.base, grant.epoch, grant.failed, grant.members)),
            ingest_wal,
            ingest_sync_each,
            dlq_capacity,
            wire_codec,
            combine,
            hot_split_threshold,
        };
    }

    let mut topology = topology.unwrap_or_else(|| usage());
    if let Some(m) = master {
        topology.master = m;
    }
    let node = node.unwrap_or_else(|| usage());
    if node >= topology.len() {
        fail(format!("--node {node} not in topology of {} nodes", topology.len()));
    }
    Options {
        topology,
        node,
        app,
        kind,
        workers,
        store_host,
        data_dir,
        batch_max,
        flush_us,
        flush_batch_max,
        metrics,
        latency_sample_n,
        log_level,
        log_json,
        join: None,
        ingest_wal,
        ingest_sync_each,
        dlq_capacity,
        wire_codec,
        combine,
        hot_split_threshold,
    }
}

fn app_workflow_and_ops(app: &str) -> (Workflow, OperatorSet) {
    match app {
        "hot_topics" => (
            hot_topics::workflow(),
            OperatorSet::new()
                .mapper(hot_topics::TopicMapper::new())
                .updater(hot_topics::MinuteCounter::new())
                .updater(hot_topics::HotDetector::new(3.0)),
        ),
        "retailer" => (
            retailer::workflow(),
            OperatorSet::new()
                .mapper(retailer::RetailerMapper::new())
                .updater(retailer::Counter::new()),
        ),
        other => {
            eprintln!("muppetd: unknown app {other:?} (have: hot_topics, retailer)");
            std::process::exit(2)
        }
    }
}

/// SIGTERM latch. Rust's std installs no handlers of its own; the raw
/// libc `signal` (std already links libc) is all a flag flip needs, and
/// a flag flip is all that is async-signal-safe anyway.
static TERM: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_term(_signum: i32) {
    TERM.store(true, std::sync::atomic::Ordering::Release);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGTERM: i32 = 15;

fn main() {
    let opts = parse_args();
    let (workflow, ops) = app_workflow_and_ops(&opts.app);

    // The store service: the hosting node opens a real cluster on disk;
    // other nodes reach it through the transport's store frames.
    let store: Option<Arc<StoreCluster>> = match opts.store_host {
        Some(host) if host == opts.node => {
            let dir = opts.data_dir.clone().unwrap_or_else(|| {
                format!("{}/muppetd-node{}", std::env::temp_dir().display(), opts.node)
            });
            // With an ingest WAL the store IS the checkpoint: the replay
            // cursor is only as durable as the store's own WAL, so sync
            // its appends too.
            // An MBF-storing node also rewrites pre-upgrade JSON cells to
            // MBF as compaction touches them, so an upgraded cluster
            // converges to binary at rest without a migration pass.
            let store_cfg = StoreConfig {
                wal_sync_each: opts.ingest_wal.is_some(),
                compact_rewrite_mbf: opts.wire_codec.store_codec() == Codec::Mbf,
                ..StoreConfig::default()
            };
            match StoreCluster::open(&dir, store_cfg) {
                Ok(cluster) => Some(Arc::new(cluster)),
                Err(e) => {
                    eprintln!("muppetd: cannot open store at {dir}: {e:?}");
                    std::process::exit(1)
                }
            }
        }
        _ => None,
    };

    let http_port = opts.topology.nodes[opts.node].http_port;
    let (base_machines, initial_epoch, initial_failed, ring_members) = match &opts.join {
        Some((base, epoch, failed, members)) => {
            (Some(*base), *epoch, failed.clone(), Some(members.clone()))
        }
        None => (None, 0, Vec::new(), None),
    };
    let cfg = EngineConfig {
        kind: opts.kind,
        machines: opts.topology.len(),
        workers_per_machine: opts.workers,
        workers_per_op: opts.workers,
        transport: TransportKind::Tcp { topology: opts.topology.clone(), local: opts.node },
        store_host: opts.store_host,
        net_batch_max: opts.batch_max,
        net_flush_us: opts.flush_us,
        flush_batch_max: opts.flush_batch_max,
        metrics: opts.metrics,
        latency_sample_n: opts.latency_sample_n,
        log_level: opts.log_level,
        log_json: opts.log_json,
        base_machines,
        pending_join: opts.join.is_some(),
        initial_epoch,
        initial_failed,
        ring_members,
        ingest_wal: opts.ingest_wal.as_ref().map(std::path::PathBuf::from),
        ingest_sync_each: opts.ingest_sync_each,
        dlq_capacity: opts.dlq_capacity.unwrap_or(muppet::runtime::engine::DEFAULT_DLQ_CAPACITY),
        wire_codec: opts.wire_codec,
        combine: opts.combine,
        hot_split_threshold: opts.hot_split_threshold,
        ..EngineConfig::default()
    };
    let engine = match Engine::start(workflow, ops, cfg, store) {
        Ok(engine) => Arc::new(engine),
        Err(e) => {
            eprintln!("muppetd: engine failed to start: {e}");
            std::process::exit(1)
        }
    };

    let http = if http_port != 0 {
        let addr = format!("{}:{}", opts.topology.nodes[opts.node].host, http_port);
        match HttpSlateServer::serve_on(
            Arc::clone(&engine) as Arc<dyn muppet::runtime::http::SlateReader>,
            &addr,
        ) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("muppetd: cannot bind http on {addr}: {e}");
                std::process::exit(1)
            }
        }
    } else {
        None
    };

    // Elastic join: the listener is live — announce readiness; the
    // master's prepare/commit installs this machine into every ring.
    // Delivery of the announcement is NOT the join: the master's
    // protocol can still abort (a worker's prepare un-acked), so wait
    // until this node actually appears in its own committed ring and
    // re-announce if it does not. A node that silently sits outside
    // every ring is worse than one that exits loudly.
    if opts.join.is_some() {
        let mut joined = false;
        'announce: for attempt in 0..5 {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_secs(1));
            }
            if let Err(e) = engine.announce_join() {
                eprintln!("muppetd: join announcement attempt {attempt} failed: {e}");
                continue;
            }
            // The commit normally lands within milliseconds; give the
            // cluster-wide flush barrier a generous window.
            for _ in 0..100 {
                if engine.ring_contains(opts.node) {
                    joined = true;
                    break 'announce;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        }
        if !joined {
            eprintln!("muppetd: join never committed (this node is outside every ring); giving up");
            std::process::exit(1)
        }
    }

    // Restart re-identification (DESIGN.md §11): a durable node coming
    // back up announces itself to the master under its old id, so the
    // §4.3 death recorded against the previous incarnation is cleared
    // and the old ring position restored. Best-effort with retries: at
    // cluster bootstrap the master may simply not be up yet, and a fresh
    // (never-crashed) start is a no-op on the master.
    if opts.ingest_wal.is_some() && opts.join.is_none() {
        for attempt in 0..3 {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_millis(500));
            }
            match engine.announce_restart() {
                Ok(()) => break,
                Err(e) => {
                    eprintln!("muppetd: restart announcement attempt {attempt} failed: {e}")
                }
            }
        }
    }

    let node_spec = &opts.topology.nodes[opts.node];
    println!(
        "muppetd: node {}/{} ({}) listening on {}:{}{} app={} engine={:?} master={}{}",
        opts.node,
        opts.topology.len(),
        if opts.topology.master == opts.node { "master" } else { "worker" },
        node_spec.host,
        node_spec.port,
        http.as_ref().map(|h| format!(" http={}", h.port())).unwrap_or_default(),
        opts.app,
        opts.kind,
        opts.topology.master,
        if opts.join.is_some() { " (joined live)" } else { "" },
    );
    // Flush the ready line so supervisors (and the e2e test) can wait on it.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Serve until killed. SIGTERM is the clean-shutdown path: drain the
    // queues, flush every dirty slate, fsync the ingest WAL, persist the
    // replay cursor, exit 0 — the next start replays zero events. SIGKILL
    // (or a crash) skips all of that; the next start replays the WAL tail
    // past the last checkpoint instead.
    unsafe { signal(SIGTERM, on_term) };
    loop {
        if TERM.load(std::sync::atomic::Ordering::Acquire) {
            eprintln!("muppetd: SIGTERM — checkpointing");
            if engine.checkpoint(std::time::Duration::from_secs(10)) {
                std::process::exit(0);
            }
            eprintln!("muppetd: checkpoint incomplete; restart will replay the WAL tail");
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}
