//! # muppet-apps — the paper's example MapUpdate applications
//!
//! Faithful Rust ports of every application the paper describes:
//!
//! | Module | Paper reference |
//! |---|---|
//! | [`retailer`] | Example 1 / Example 4 / Figure 1(b) / Figures 3–4: count Foursquare checkins per retailer |
//! | [`hot_topics`] | Example 2 / Example 5 / Figure 1(c): detect hot Twitter topics per minute |
//! | [`reputation`] | Example 3: maintain per-user reputation scores |
//! | [`top_urls`] | §2: "maintaining the top-ten URLs being passed around on Twitter" |
//! | [`http_counters`] | §2: "live counters of the number of HTTP requests made to various parts of a Web site" |
//! | [`split_counter`] | §5 Example 6: hotspot relief by splitting an associative/commutative count across keys |
//!
//! Every module exposes its `workflow()` plus operator constructors, usable
//! with both the deterministic [`muppet_core::reference::ReferenceExecutor`]
//! and the `muppet-runtime` engines.

pub mod hot_topics;
pub mod http_counters;
pub mod reputation;
pub mod retailer;
pub mod split_counter;
pub mod top_urls;
