// lint-fixture-as: crates/runtime/src/fixture.rs
//! Fixture: latent panics on production paths — each must be flagged.

pub fn prod(v: Option<u64>, r: Result<u64, String>) -> u64 {
    let a = v.unwrap(); // finding
    let b = r.expect("always ok"); // finding
    a + b
}
