//! The transport abstraction.
//!
//! §4.1: "Muppet lets the workers pass events directly to one another
//! without going through any master." A [`Transport`] is that direct
//! worker→worker path plus the thin master channel of §4.3 (failure
//! reports and broadcasts) and the §4.4 remote slate-read path.
//!
//! Two implementations exist:
//!
//! * [`InProcessTransport`] — the seed's simulated cluster: every machine
//!   lives in one process and "the wire" is a synchronous callback into the
//!   engine. Zero behaviour change from the pre-transport engine.
//! * [`crate::tcp::TcpTransport`] — real sockets with length-prefixed
//!   binary framing and per-peer connection pooling; each engine process
//!   owns one machine of the cluster.
//!
//! The engine side of the wire is the [`ClusterHandler`]: the transport
//! calls it to finish local delivery, apply failure protocol steps, and
//! answer slate/store requests. Registration is late (`register`) because
//! the engine needs the transport at construction time and vice versa.

use std::fmt;
use std::sync::{Arc, OnceLock, Weak};

use muppet_core::workflow::OpId;
use muppet_core::Codec;

use crate::frame::{MembershipUpdate, StoreGetItem, StorePutItem, WireEvent};

/// Cluster-wide machine index (ring member id).
pub type MachineId = usize;

/// Why a transport operation failed.
#[derive(Debug)]
pub enum NetError {
    /// The destination machine cannot be reached (dead process, refused
    /// connection, reset pipe, or — in process — a crashed simulated
    /// machine). This is the §4.3 trigger.
    Unreachable(MachineId),
    /// The peer spoke, but not the protocol.
    Protocol(String),
    /// No handler registered / no such machine in the topology.
    NoRoute(MachineId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable(m) => write!(f, "machine {m} unreachable"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::NoRoute(m) => write!(f, "no route to machine {m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The engine-side callbacks a transport delivers into.
pub trait ClusterHandler: Send + Sync + 'static {
    /// Finish delivery of an event addressed to local machine `dest`
    /// (enqueue with two-choice dispatch, apply the overflow policy).
    /// `Err(Unreachable)` if `dest` is not a live machine here.
    fn deliver_event(&self, dest: MachineId, ev: WireEvent) -> Result<(), NetError>;

    /// Finish delivery of a *combined* event: one wire event whose payload
    /// absorbed `absorbed` original same-⟨op,key⟩ events through the
    /// operator's declared combiner (map-side pre-aggregation in the sender
    /// outbox). Default: deliver like any other event — handlers that track
    /// per-original-event ledgers override to account the absorbed count.
    fn deliver_combined(
        &self,
        dest: MachineId,
        ev: WireEvent,
        absorbed: u64,
    ) -> Result<(), NetError> {
        let _ = absorbed;
        self.deliver_event(dest, ev)
    }

    /// Fold two event payloads for `op` through its declared associative
    /// combiner (see `muppet_core::operator::Updater::combine`). `None`
    /// (the default) means "no combiner declared — deliver individually";
    /// the sender outbox calls this while coalescing same-⟨op,key⟩ runs
    /// before framing.
    fn combine_values(&self, op: OpId, acc: &[u8], next: &[u8]) -> Option<Vec<u8>> {
        let _ = (op, acc, next);
        None
    }

    /// An asynchronous send path (the TCP transport's per-peer batching
    /// senders) gave up on `dest`: the whole in-flight batch plus
    /// everything still queued behind it is undeliverable. One §4.3
    /// detection — the implementation reports the failure once and
    /// accounts every event in `lost` individually (lost-and-logged,
    /// never retried). Default: drop silently (handlers that never use an
    /// async transport need no accounting).
    fn handle_send_failure(&self, dest: MachineId, lost: Vec<WireEvent>) {
        let _ = (dest, lost);
    }

    /// A failure report reached the master role on this node (§4.3).
    /// `epoch` is the membership epoch the reporter observed the failure
    /// under — the master rejects reports staler than the machine's
    /// latest join, so a slow report can never kill a re-joined
    /// incarnation.
    fn handle_failure_report(&self, failed: MachineId, epoch: u64);

    /// A master broadcast arrived: drop `failed` from every hash ring
    /// (§4.3), unless the broadcast's `epoch` predates the machine's
    /// latest join.
    fn handle_failure_broadcast(&self, failed: MachineId, epoch: u64);

    /// Master role only: a reserved machine announced it is live and
    /// ready to join the rings (elastic scale-out; DESIGN.md §7). The
    /// implementation runs the prepare/commit membership protocol.
    fn handle_join(&self, _machine: MachineId) {}

    /// An epoch-stamped membership update arrived (prepare or commit).
    /// Returns true when the phase was applied (the ack); prepare
    /// implementations must flush moved-away dirty slates before
    /// returning.
    fn handle_membership(&self, _update: &MembershipUpdate) -> bool {
        false
    }

    /// Read the live cached slate of ⟨updater, key⟩ on local machine
    /// `dest` (§4.4).
    fn read_local_slate(&self, dest: MachineId, updater: &str, key: &[u8]) -> Option<Vec<u8>>;

    /// Persist slate bytes into the locally hosted store, if this node
    /// hosts one. `codec` is the payload format tag persisted with the
    /// cell (stored values may be compressed, so it cannot be re-sniffed
    /// at rest).
    fn backend_store(
        &self,
        _updater: &str,
        _key: &[u8],
        _value: &[u8],
        _codec: Codec,
        _ttl_secs: Option<u64>,
        _now_us: u64,
    ) {
    }

    /// Load slate bytes from the locally hosted store, if any.
    fn backend_load(&self, _updater: &str, _key: &[u8], _now_us: u64) -> Option<Vec<u8>> {
        None
    }

    /// Persist a run of slates into the locally hosted store, returning
    /// per-item success in order. Default: one [`ClusterHandler::backend_store`]
    /// per item (the unbatched store path has no failure signal, so every
    /// item reports true) — store hosts override this to group-commit the
    /// run and report real per-cell outcomes.
    fn backend_store_many(&self, items: &[StorePutItem], now_us: u64) -> Vec<bool> {
        items
            .iter()
            .map(|item| {
                self.backend_store(
                    &item.updater,
                    &item.key,
                    &item.value,
                    item.codec,
                    item.ttl_secs,
                    now_us,
                );
                true
            })
            .collect()
    }

    /// Load a run of slates from the locally hosted store, in order.
    fn backend_load_many(&self, items: &[StoreGetItem], now_us: u64) -> Vec<Option<Vec<u8>>> {
        items.iter().map(|item| self.backend_load(&item.updater, &item.key, now_us)).collect()
    }

    /// A restarted incarnation of `machine` re-identified itself (crash
    /// recovery): clear any §4.3 death-ledger state for it, make it
    /// routable again, and — on the master — re-admit it to the rings.
    /// Returns this node's membership epoch for the returning node to
    /// fence itself with. Default: acknowledge at epoch 0 without
    /// clearing anything (handlers without failure state).
    fn handle_reintroduce(&self, _machine: MachineId) -> u64 {
        0
    }
}

/// A cluster wire: direct event passing, the master failure channel, and
/// remote slate/store reads.
pub trait Transport: Send + Sync + 'static {
    /// Attach the engine. Must be called exactly once, before traffic.
    fn register(&self, handler: Weak<dyn ClusterHandler>);

    /// Machine ids this transport delivers locally (for the in-process
    /// transport: all of them).
    fn is_local(&self, machine: MachineId) -> bool;

    /// The machine this process runs, when exactly one is local.
    fn local_machine(&self) -> Option<MachineId>;

    /// Pass an event directly to `dest`'s worker queues.
    /// `Err(Unreachable)` is the §4.3 detection signal. Asynchronous
    /// transports may accept the event into a bounded outbound queue and
    /// surface a later wire failure through
    /// [`ClusterHandler::handle_send_failure`] instead.
    fn send_event(&self, dest: MachineId, ev: WireEvent) -> Result<(), NetError>;

    /// Events accepted by [`Transport::send_event`] but not yet on the
    /// wire (asynchronous transports). The engine adds this to its
    /// pending/throttle budget so a slow peer pushes back on the source
    /// instead of growing an unbounded buffer. Synchronous transports
    /// have no outbound queue: 0.
    fn outbound_backlog(&self) -> usize {
        0
    }

    /// Report `failed` to the master role (local call or wire frame),
    /// stamped with the reporter's membership epoch.
    fn report_failure(&self, failed: MachineId, epoch: u64);

    /// Master-side: tell every machine to drop `failed` from its rings.
    fn broadcast_failure(&self, failed: MachineId, epoch: u64);

    /// Joiner-side: announce to the master role that `machine` (this
    /// process's reserved id) is live and ready to enter the rings.
    /// Errors when the announcement could not reach the master — the
    /// joiner must surface or retry it, or it would sit outside every
    /// ring forever believing it joined.
    fn send_join(&self, master: MachineId, machine: MachineId) -> Result<(), NetError>;

    /// Master-side: deliver one membership phase to `dest`. With
    /// `want_ack` the call blocks until the peer acknowledges (the
    /// prepare barrier: moved-away slates are flushed before the ack).
    fn send_membership(
        &self,
        dest: MachineId,
        update: &MembershipUpdate,
        want_ack: bool,
    ) -> Result<(), NetError>;

    /// Read the live cached slate owned by `dest` (§4.4).
    fn read_slate(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, NetError>;

    /// Persist slate bytes on the store-hosting machine `dest`. `codec`
    /// tags the payload format; transports whose connection did not
    /// negotiate MBF transcode an MBF value to JSON text on the way out.
    #[allow(clippy::too_many_arguments)]
    fn store_put(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
        value: &[u8],
        codec: Codec,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> Result<(), NetError>;

    /// Load slate bytes from the store-hosting machine `dest`.
    fn store_get(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
        now_us: u64,
    ) -> Result<Option<Vec<u8>>, NetError>;

    /// Persist a run of slates on the store-hosting machine `dest` —
    /// ideally in one wire round trip ([`crate::frame::Frame::StorePutBatch`]).
    /// Items are taken by value so a frame-building transport never
    /// re-copies the payload. Returns per-item success in order; an
    /// `Err` means the whole batch may not have reached the store (the
    /// caller keeps every slate dirty). Default: one
    /// [`Transport::store_put`] per item, mapping that item's wire
    /// failure to `false` — correct but unbatched.
    fn store_put_many(
        &self,
        dest: MachineId,
        items: Vec<StorePutItem>,
        now_us: u64,
    ) -> Result<Vec<bool>, NetError> {
        Ok(items
            .iter()
            .map(|item| {
                self.store_put(
                    dest,
                    &item.updater,
                    &item.key,
                    &item.value,
                    item.codec,
                    item.ttl_secs,
                    now_us,
                )
                .is_ok()
            })
            .collect())
    }

    /// Load a run of slates from the store-hosting machine `dest` —
    /// ideally one [`crate::frame::Frame::StoreGetBatch`] round trip.
    /// Default: one [`Transport::store_get`] per item (wire failures read
    /// as misses, the availability-first posture of the miss path).
    fn store_get_many(
        &self,
        dest: MachineId,
        items: Vec<StoreGetItem>,
        now_us: u64,
    ) -> Result<Vec<Option<Vec<u8>>>, NetError> {
        Ok(items
            .iter()
            .map(|item| self.store_get(dest, &item.updater, &item.key, now_us).ok().flatten())
            .collect())
    }

    /// Announce to `dest` that `machine` — a previously failed id — is a
    /// restarted incarnation re-identifying itself (crash recovery).
    /// Returns `dest`'s membership epoch. Default: unsupported.
    fn reintroduce(&self, dest: MachineId, machine: MachineId) -> Result<u64, NetError> {
        let _ = (dest, machine);
        Err(NetError::Protocol("this transport does not support reintroduction".into()))
    }

    /// Forget any local send-side death state for `peer` (a permanently
    /// downed outbox, a dead sender thread) so traffic can flow to its
    /// restarted incarnation. Synchronous transports keep no such state:
    /// default no-op.
    fn revive_peer(&self, _peer: MachineId) {}
}

/// Shared late-registration slot for the engine handler.
#[derive(Default)]
pub(crate) struct HandlerSlot(OnceLock<Weak<dyn ClusterHandler>>);

impl HandlerSlot {
    pub(crate) fn register(&self, handler: Weak<dyn ClusterHandler>) {
        if self.0.set(handler).is_err() {
            panic!("transport handler registered twice");
        }
    }

    pub(crate) fn get(&self) -> Option<Arc<dyn ClusterHandler>> {
        self.0.get().and_then(Weak::upgrade)
    }
}

/// The seed's in-process "wire": synchronous hand-off into the engine that
/// owns every machine. Refactored behind [`Transport`] with identical
/// semantics — `send_event` is a direct call into the engine's delivery
/// path, and the failure protocol short-circuits through the in-process
/// master.
#[derive(Default)]
pub struct InProcessTransport {
    handler: HandlerSlot,
}

impl InProcessTransport {
    /// A fresh in-process wire.
    pub fn new() -> InProcessTransport {
        InProcessTransport::default()
    }

    fn handler(&self) -> Option<Arc<dyn ClusterHandler>> {
        self.handler.get()
    }
}

impl Transport for InProcessTransport {
    fn register(&self, handler: Weak<dyn ClusterHandler>) {
        self.handler.register(handler);
    }

    fn is_local(&self, _machine: MachineId) -> bool {
        true
    }

    fn local_machine(&self) -> Option<MachineId> {
        None
    }

    fn send_event(&self, dest: MachineId, ev: WireEvent) -> Result<(), NetError> {
        match self.handler() {
            Some(h) => h.deliver_event(dest, ev),
            None => Err(NetError::NoRoute(dest)),
        }
    }

    fn report_failure(&self, failed: MachineId, epoch: u64) {
        if let Some(h) = self.handler() {
            h.handle_failure_report(failed, epoch);
        }
    }

    fn broadcast_failure(&self, failed: MachineId, epoch: u64) {
        if let Some(h) = self.handler() {
            h.handle_failure_broadcast(failed, epoch);
        }
    }

    fn send_join(&self, _master: MachineId, machine: MachineId) -> Result<(), NetError> {
        match self.handler() {
            Some(h) => {
                h.handle_join(machine);
                Ok(())
            }
            None => Err(NetError::NoRoute(machine)),
        }
    }

    fn send_membership(
        &self,
        dest: MachineId,
        update: &MembershipUpdate,
        want_ack: bool,
    ) -> Result<(), NetError> {
        match self.handler() {
            Some(h) => {
                let acked = h.handle_membership(update);
                if want_ack && !acked {
                    return Err(NetError::Protocol(format!(
                        "membership epoch {} not acknowledged",
                        update.epoch
                    )));
                }
                Ok(())
            }
            None => Err(NetError::NoRoute(dest)),
        }
    }

    fn read_slate(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, NetError> {
        match self.handler() {
            Some(h) => Ok(h.read_local_slate(dest, updater, key)),
            None => Err(NetError::NoRoute(dest)),
        }
    }

    fn store_put(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
        value: &[u8],
        codec: Codec,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> Result<(), NetError> {
        match self.handler() {
            Some(h) => {
                h.backend_store(updater, key, value, codec, ttl_secs, now_us);
                Ok(())
            }
            None => Err(NetError::NoRoute(dest)),
        }
    }

    fn store_get(
        &self,
        dest: MachineId,
        updater: &str,
        key: &[u8],
        now_us: u64,
    ) -> Result<Option<Vec<u8>>, NetError> {
        match self.handler() {
            Some(h) => Ok(h.backend_load(updater, key, now_us)),
            None => Err(NetError::NoRoute(dest)),
        }
    }

    fn store_put_many(
        &self,
        dest: MachineId,
        items: Vec<StorePutItem>,
        now_us: u64,
    ) -> Result<Vec<bool>, NetError> {
        // One handler call for the whole run: the in-process store host
        // group-commits it exactly like a remote one would.
        match self.handler() {
            Some(h) => Ok(h.backend_store_many(&items, now_us)),
            None => Err(NetError::NoRoute(dest)),
        }
    }

    fn store_get_many(
        &self,
        dest: MachineId,
        items: Vec<StoreGetItem>,
        now_us: u64,
    ) -> Result<Vec<Option<Vec<u8>>>, NetError> {
        match self.handler() {
            Some(h) => Ok(h.backend_load_many(&items, now_us)),
            None => Err(NetError::NoRoute(dest)),
        }
    }

    fn reintroduce(&self, dest: MachineId, machine: MachineId) -> Result<u64, NetError> {
        match self.handler() {
            Some(h) => Ok(h.handle_reintroduce(machine)),
            None => Err(NetError::NoRoute(dest)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::sync::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Default)]
    struct RecordingHandler {
        delivered: AtomicUsize,
        reports: Mutex<Vec<MachineId>>,
        broadcasts: Mutex<Vec<MachineId>>,
        joins: Mutex<Vec<MachineId>>,
        memberships: Mutex<Vec<MembershipUpdate>>,
    }

    impl ClusterHandler for RecordingHandler {
        fn deliver_event(&self, dest: MachineId, _ev: WireEvent) -> Result<(), NetError> {
            if dest == 9 {
                return Err(NetError::Unreachable(dest));
            }
            self.delivered.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn handle_failure_report(&self, failed: MachineId, _epoch: u64) {
            self.reports.lock().push(failed);
        }
        fn handle_failure_broadcast(&self, failed: MachineId, _epoch: u64) {
            self.broadcasts.lock().push(failed);
        }
        fn handle_join(&self, machine: MachineId) {
            self.joins.lock().push(machine);
        }
        fn handle_membership(&self, update: &MembershipUpdate) -> bool {
            self.memberships.lock().push(update.clone());
            true
        }
        fn read_local_slate(
            &self,
            _dest: MachineId,
            updater: &str,
            _key: &[u8],
        ) -> Option<Vec<u8>> {
            (updater == "present").then(|| b"value".to_vec())
        }
    }

    fn wire_event() -> WireEvent {
        WireEvent {
            op: 0,
            event: muppet_core::event::Event::new("S", 1, muppet_core::event::Key::from("k"), ""),
            injected_us: 0,
            redirected: false,
            external: true,
            thread_hint: None,
            forwards: 0,
        }
    }

    #[test]
    fn in_process_routes_to_handler() {
        let transport = InProcessTransport::new();
        let handler = Arc::new(RecordingHandler::default());
        transport.register(Arc::downgrade(&handler) as Weak<dyn ClusterHandler>);

        assert!(transport.send_event(0, wire_event()).is_ok());
        assert!(matches!(transport.send_event(9, wire_event()), Err(NetError::Unreachable(9))));
        transport.report_failure(9, 0);
        transport.broadcast_failure(9, 0);
        assert_eq!(handler.delivered.load(Ordering::Relaxed), 1);
        assert_eq!(*handler.reports.lock(), vec![9]);
        assert_eq!(*handler.broadcasts.lock(), vec![9]);
        assert_eq!(transport.read_slate(0, "present", b"k").unwrap(), Some(b"value".to_vec()));
        assert_eq!(transport.read_slate(0, "absent", b"k").unwrap(), None);
        assert!(transport.is_local(7));
        assert_eq!(transport.local_machine(), None);
    }

    #[test]
    fn in_process_join_and_membership_route_to_handler() {
        let transport = InProcessTransport::new();
        let handler = Arc::new(RecordingHandler::default());
        transport.register(Arc::downgrade(&handler) as Weak<dyn ClusterHandler>);

        transport.send_join(0, 3).unwrap();
        assert_eq!(*handler.joins.lock(), vec![3]);
        let update = MembershipUpdate {
            epoch: 1,
            phase: crate::frame::MembershipPhase::Prepare,
            joined: vec![3],
            members: vec![0, 3],
            nodes: Vec::new(),
        };
        transport.send_membership(0, &update, true).unwrap();
        assert_eq!(handler.memberships.lock().len(), 1);
        assert_eq!(handler.memberships.lock()[0], update);
    }

    #[test]
    fn unregistered_transport_has_no_route() {
        let transport = InProcessTransport::new();
        assert!(matches!(transport.send_event(0, wire_event()), Err(NetError::NoRoute(0))));
    }

    #[test]
    fn dropped_handler_means_no_route() {
        let transport = InProcessTransport::new();
        let handler = Arc::new(RecordingHandler::default());
        transport.register(Arc::downgrade(&handler) as Weak<dyn ClusterHandler>);
        drop(handler);
        assert!(matches!(transport.send_event(0, wire_event()), Err(NetError::NoRoute(0))));
    }
}
