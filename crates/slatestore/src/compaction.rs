//! Size-tiered compaction, Cassandra-style.
//!
//! §4.2 calls out compaction twice: it competes with reads for I/O
//! ("Cassandra also requires I/O capacity for periodic compactions, thus
//! slowing down Muppet"), and read amplification grows with the number of
//! un-compacted flushes of a row. Size-tiered compaction groups SSTables of
//! similar size and merges each group into one table; newest `write_ts`
//! wins per key, expired-TTL cells are dropped, and tombstones are dropped
//! only on *full* compactions (when every table participates, so no older
//! version can resurface).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::sstable::SSTable;
use crate::types::{Cell, CellKey, StoreResult};

/// Compaction tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct CompactionPolicy {
    /// Minimum number of similar-size tables before a tier compacts.
    pub min_threshold: usize,
    /// Tables within `bucket_ratio`× of each other share a tier.
    pub bucket_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { min_threshold: 4, bucket_ratio: 2.0 }
    }
}

/// Pick the indices of tables to merge next, or `None` if no tier is ripe.
/// `sizes` are file lengths in table order.
pub fn pick_tier(sizes: &[u64], policy: &CompactionPolicy) -> Option<Vec<usize>> {
    if sizes.len() < policy.min_threshold {
        return None;
    }
    // Sort indices by size, walk buckets of similar size.
    let mut by_size: Vec<usize> = (0..sizes.len()).collect();
    by_size.sort_by_key(|&i| sizes[i]);
    let mut bucket: Vec<usize> = Vec::new();
    for &i in &by_size {
        match bucket.last() {
            Some(&prev)
                if (sizes[i] as f64) <= (sizes[prev].max(1) as f64) * policy.bucket_ratio =>
            {
                bucket.push(i);
            }
            _ => {
                if bucket.len() >= policy.min_threshold {
                    break;
                }
                bucket.clear();
                bucket.push(i);
            }
        }
    }
    if bucket.len() >= policy.min_threshold {
        bucket.sort_unstable();
        Some(bucket)
    } else {
        None
    }
}

/// Merge `tables` (newest first) into a single sorted run.
///
/// * Per key, the cell with the greatest `write_ts` wins; ties break toward
///   the newest table (lowest index).
/// * Cells whose TTL lapsed before `now` are dropped.
/// * Tombstones are dropped iff `drop_tombstones` (full compaction).
pub fn merge_tables(
    tables: &[&SSTable],
    now: u64,
    drop_tombstones: bool,
) -> StoreResult<Vec<(CellKey, Cell)>> {
    // K-way merge over fully-scanned runs. SSTables are block-structured,
    // so streaming iterators buy little here; scan() keeps it simple and
    // still charges the device for every block (the §4.2 compaction cost).
    let mut runs: Vec<Vec<(CellKey, Cell)>> = Vec::with_capacity(tables.len());
    for t in tables {
        runs.push(t.scan()?);
    }
    let mut cursors = vec![0usize; runs.len()];
    // Heap entries: Reverse((key, run_index)) → smallest key first, then
    // newest run (lowest index) first for equal keys.
    let mut heap: BinaryHeap<Reverse<(CellKey, usize)>> = BinaryHeap::new();
    for (run_idx, run) in runs.iter().enumerate() {
        if let Some((k, _)) = run.first() {
            heap.push(Reverse((k.clone(), run_idx)));
        }
    }
    let mut out: Vec<(CellKey, Cell)> = Vec::new();
    let mut current: Option<(CellKey, Cell, usize)> = None; // (key, best cell, run idx)

    while let Some(Reverse((key, run_idx))) = heap.pop() {
        let cell = runs[run_idx][cursors[run_idx]].1.clone();
        cursors[run_idx] += 1;
        if let Some((k, _)) = runs[run_idx].get(cursors[run_idx]) {
            heap.push(Reverse((k.clone(), run_idx)));
        }
        match &mut current {
            Some((cur_key, cur_cell, cur_run)) if *cur_key == key => {
                // Same key from an older (or same-age) source: keep the
                // version with the larger write_ts; tie → newer table.
                if cell.write_ts > cur_cell.write_ts
                    || (cell.write_ts == cur_cell.write_ts && run_idx < *cur_run)
                {
                    *cur_cell = cell;
                    *cur_run = run_idx;
                }
            }
            _ => {
                if let Some((k, c, _)) = current.take() {
                    push_merged(&mut out, k, c, now, drop_tombstones);
                }
                current = Some((key, cell, run_idx));
            }
        }
    }
    if let Some((k, c, _)) = current.take() {
        push_merged(&mut out, k, c, now, drop_tombstones);
    }
    Ok(out)
}

fn push_merged(
    out: &mut Vec<(CellKey, Cell)>,
    key: CellKey,
    cell: Cell,
    now: u64,
    drop_tombstones: bool,
) {
    if cell.expired(now) {
        return; // TTL GC (§4.2)
    }
    if cell.tombstone && drop_tombstones {
        return;
    }
    out.push((key, cell));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceProfile, StorageDevice};
    use crate::sstable::SSTableWriter;
    use crate::util::TempDir;
    use std::sync::Arc;

    fn device() -> Arc<StorageDevice> {
        Arc::new(StorageDevice::new(DeviceProfile::NULL))
    }

    fn table(dir: &TempDir, name: &str, cells: &[(&str, Cell)]) -> SSTable {
        let mut sorted: Vec<_> = cells.to_vec();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        let mut w = SSTableWriter::create(dir.file(name), device(), sorted.len()).unwrap();
        for (row, cell) in &sorted {
            w.add(&CellKey::new(row.as_bytes(), "U"), cell).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn pick_tier_requires_min_threshold() {
        let p = CompactionPolicy::default();
        assert_eq!(pick_tier(&[100, 100, 100], &p), None);
        assert_eq!(pick_tier(&[100, 110, 95, 105], &p), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn pick_tier_groups_similar_sizes_only() {
        let p = CompactionPolicy::default();
        // Three small + one huge: no tier of 4 similar tables.
        assert_eq!(pick_tier(&[10, 12, 11, 100_000], &p), None);
        // Four small among huge ones: the small tier compacts.
        let got = pick_tier(&[10, 100_000, 12, 11, 13, 90_000], &p).unwrap();
        assert_eq!(got, vec![0, 2, 3, 4]);
    }

    #[test]
    fn newest_write_wins_across_tables() {
        let dir = TempDir::new("compact").unwrap();
        let newer = table(&dir, "new.sst", &[("k", Cell::live("v2", 20, None))]);
        let older = table(
            &dir,
            "old.sst",
            &[("k", Cell::live("v1", 10, None)), ("only-old", Cell::live("x", 5, None))],
        );
        let merged = merge_tables(&[&newer, &older], 1_000_000, true).unwrap();
        assert_eq!(merged.len(), 2);
        let k = merged.iter().find(|(key, _)| key.row.as_ref() == b"k").unwrap();
        assert_eq!(k.1.value.as_ref(), b"v2");
        assert_eq!(k.1.write_ts, 20);
    }

    #[test]
    fn write_ts_tie_breaks_toward_newest_table() {
        let dir = TempDir::new("compact").unwrap();
        let newer = table(&dir, "new.sst", &[("k", Cell::live("new", 10, None))]);
        let older = table(&dir, "old.sst", &[("k", Cell::live("old", 10, None))]);
        let merged = merge_tables(&[&newer, &older], 0, false).unwrap();
        assert_eq!(merged[0].1.value.as_ref(), b"new");
    }

    #[test]
    fn tombstone_masks_value_and_drops_on_full_compaction() {
        let dir = TempDir::new("compact").unwrap();
        let newer = table(&dir, "new.sst", &[("k", Cell::tombstone(20))]);
        let older = table(&dir, "old.sst", &[("k", Cell::live("v1", 10, None))]);
        // Partial compaction keeps the tombstone (it must continue masking
        // older tables not in this merge).
        let partial = merge_tables(&[&newer, &older], 0, false).unwrap();
        assert_eq!(partial.len(), 1);
        assert!(partial[0].1.tombstone);
        // Full compaction drops it.
        let full = merge_tables(&[&newer, &older], 0, true).unwrap();
        assert!(full.is_empty());
    }

    #[test]
    fn expired_ttl_cells_are_garbage_collected() {
        let dir = TempDir::new("compact").unwrap();
        let t = table(
            &dir,
            "t.sst",
            &[
                ("fresh", Cell::live("v", 1_000_000, Some(100))),
                ("stale", Cell::live("v", 1_000_000, Some(1))),
            ],
        );
        // now = 10s: "stale" (1s TTL) lapsed, "fresh" (100s) lives.
        let merged = merge_tables(&[&t], 10_000_000, false).unwrap();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].0.row.as_ref(), b"fresh");
    }

    #[test]
    fn merged_output_is_sorted_and_unique() {
        let dir = TempDir::new("compact").unwrap();
        let a = table(
            &dir,
            "a.sst",
            &[("a", Cell::live("1", 1, None)), ("c", Cell::live("3", 1, None))],
        );
        let b = table(
            &dir,
            "b.sst",
            &[("b", Cell::live("2", 2, None)), ("c", Cell::live("newer", 9, None))],
        );
        let merged = merge_tables(&[&a, &b], 0, true).unwrap();
        let rows: Vec<&[u8]> = merged.iter().map(|(k, _)| k.row.as_ref()).collect();
        assert_eq!(rows, vec![b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
        assert_eq!(merged[2].1.value.as_ref(), b"newer");
    }

    #[test]
    fn merge_of_empty_input_is_empty() {
        let merged = merge_tables(&[], 0, true).unwrap();
        assert!(merged.is_empty());
    }
}
