// lint-fixture-as: crates/runtime/src/fixture.rs
//! Fixture: raw locks that must each produce a `no-raw-lock` finding.

use parking_lot::Mutex; // finding: parking_lot import
use std::sync::{Arc, RwLock}; // finding: grouped std::sync lock import

pub struct Raw {
    a: Mutex<u64>,
    b: Arc<RwLock<u64>>,
    c: std::sync::Condvar, // finding: direct std::sync lock path
}
