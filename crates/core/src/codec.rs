//! Binary encoding primitives shared by the WAL, SSTable, and network
//! framing code: LEB128 varints, length-prefixed byte strings, and a
//! checksum — plus the wire encoding of [`Event`]s used by `muppet-net`'s
//! framing. All decoding is bounds-checked and returns `None`/errors
//! instead of panicking — these functions parse data from disk and from
//! the network.

use crate::event::{Event, Key, StreamId};

/// Maximum encoded size of a varint u64.
pub const MAX_VARINT_LEN: usize = 10;

/// Append a LEB128 varint encoding of `value` to `out`.
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a varint from the front of `buf`. Returns `(value, bytes_read)`.
#[inline]
pub fn get_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return None;
        }
        let payload = (byte & 0x7f) as u64;
        // The 10th byte may only contribute 1 bit.
        if shift == 63 && payload > 1 {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// Append a varint length prefix followed by the bytes.
#[inline]
pub fn put_len_prefixed(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Read a length-prefixed byte string from the front of `buf`.
/// Returns `(bytes, total_bytes_read)`.
#[inline]
pub fn get_len_prefixed(buf: &[u8]) -> Option<(&[u8], usize)> {
    let (len, n) = get_varint(buf)?;
    let len = usize::try_from(len).ok()?;
    let end = n.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    Some((&buf[n..end], end))
}

/// Append an optional byte string: a presence byte (0/1) then, when
/// present, the length-prefixed bytes. Shared by the network framing and
/// store codecs (previously copy-pasted in each).
#[inline]
pub fn put_opt_bytes(out: &mut Vec<u8>, value: &Option<Vec<u8>>) {
    match value {
        Some(bytes) => {
            out.push(1);
            put_len_prefixed(out, bytes);
        }
        None => out.push(0),
    }
}

/// Read an optional byte string written by [`put_opt_bytes`]. Returns
/// `(value, bytes_read)`; `None` on truncation or a presence byte other
/// than 0/1.
#[inline]
pub fn get_opt_bytes(buf: &[u8]) -> Option<(Option<Vec<u8>>, usize)> {
    match *buf.first()? {
        0 => Some((None, 1)),
        1 => {
            let (bytes, n) = get_len_prefixed(&buf[1..])?;
            Some((Some(bytes.to_vec()), 1 + n))
        }
        _ => None,
    }
}

/// Append an optional varint: a presence byte (0/1) then, when present,
/// the varint.
#[inline]
pub fn put_opt_varint(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            out.push(1);
            put_varint(out, v);
        }
        None => out.push(0),
    }
}

/// Read an optional varint written by [`put_opt_varint`]. Returns
/// `(value, bytes_read)`; `None` on truncation, a presence byte other
/// than 0/1, or an overlong varint (same >10-byte rejection as
/// [`get_varint`]).
#[inline]
pub fn get_opt_varint(buf: &[u8]) -> Option<(Option<u64>, usize)> {
    match *buf.first()? {
        0 => Some((None, 1)),
        1 => {
            let (v, n) = get_varint(&buf[1..])?;
            Some((Some(v), 1 + n))
        }
        _ => None,
    }
}

/// Append a fixed little-endian u32.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a fixed little-endian u32 at `offset`.
#[inline]
pub fn get_u32(buf: &[u8], offset: usize) -> Option<u32> {
    let end = offset.checked_add(4)?;
    buf.get(offset..end).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
}

/// Append a fixed little-endian u64.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a fixed little-endian u64 at `offset`.
#[inline]
pub fn get_u64(buf: &[u8], offset: usize) -> Option<u64> {
    let end = offset.checked_add(8)?;
    buf.get(offset..end).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
}

/// CRC-32C (Castagnoli) over `bytes`, implemented with a 256-entry table.
/// Used to detect torn or corrupted WAL and SSTable records.
pub fn crc32c(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0x82f6_3b78 } else { crc >> 1 };
            }
            *entry = crc;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Append the wire encoding of an event: stream, ts, seq, key, value —
/// strings and blobs length-prefixed, integers as varints.
pub fn put_event(out: &mut Vec<u8>, event: &Event) {
    put_len_prefixed(out, event.stream.as_str().as_bytes());
    put_varint(out, event.ts);
    put_varint(out, event.seq);
    put_len_prefixed(out, event.key.as_bytes());
    put_len_prefixed(out, &event.value);
}

/// Decode an event from the front of `buf`. Returns `(event,
/// bytes_read)`; `None` on truncated or malformed input (including a
/// non-UTF-8 stream name).
pub fn get_event(buf: &[u8]) -> Option<(Event, usize)> {
    let mut at = 0;
    let (stream, n) = get_len_prefixed(&buf[at..])?;
    let stream = std::str::from_utf8(stream).ok()?;
    at += n;
    let (ts, n) = get_varint(&buf[at..])?;
    at += n;
    let (seq, n) = get_varint(&buf[at..])?;
    at += n;
    let (key, n) = get_len_prefixed(&buf[at..])?;
    at += n;
    let key = Key::from(key);
    let (value, n) = get_len_prefixed(&buf[at..])?;
    at += n;
    let mut event = Event::new(StreamId::from(stream), ts, key, value.to_vec());
    event.seq = seq;
    Some((event, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 255, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (got, n) = get_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_single_byte_for_small_values() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn varint_rejects_truncation_and_overlong() {
        assert!(get_varint(&[]).is_none());
        assert!(get_varint(&[0x80]).is_none());
        assert!(get_varint(&[0x80; 10]).is_none());
        // 10th byte with more than 1 significant bit overflows u64.
        let mut overlong = vec![0xffu8; 9];
        overlong.push(0x02);
        assert!(get_varint(&overlong).is_none());
    }

    #[test]
    fn varint_u64_max_is_ten_bytes() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_VARINT_LEN);
        assert_eq!(get_varint(&buf), Some((u64::MAX, 10)));
    }

    #[test]
    fn len_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_len_prefixed(&mut buf, b"hello");
        put_len_prefixed(&mut buf, b"");
        let (a, n) = get_len_prefixed(&buf).unwrap();
        assert_eq!(a, b"hello");
        let (b, m) = get_len_prefixed(&buf[n..]).unwrap();
        assert_eq!(b, b"");
        assert_eq!(n + m, buf.len());
    }

    #[test]
    fn len_prefixed_rejects_truncated_payload() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 100); // claims 100 bytes follow
        buf.extend_from_slice(b"short");
        assert!(get_len_prefixed(&buf).is_none());
    }

    #[test]
    fn len_prefixed_rejects_huge_length_without_overflow() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert!(get_len_prefixed(&buf).is_none());
    }

    #[test]
    fn opt_bytes_roundtrip_and_reject_bad_presence() {
        let mut buf = Vec::new();
        put_opt_bytes(&mut buf, &Some(b"payload".to_vec()));
        put_opt_bytes(&mut buf, &None);
        let (a, n) = get_opt_bytes(&buf).unwrap();
        assert_eq!(a.as_deref(), Some(&b"payload"[..]));
        let (b, m) = get_opt_bytes(&buf[n..]).unwrap();
        assert_eq!(b, None);
        assert_eq!(n + m, buf.len());
        assert!(get_opt_bytes(&[]).is_none());
        assert!(get_opt_bytes(&[2]).is_none(), "presence byte must be 0/1");
        assert!(get_opt_bytes(&[1, 5, b'x']).is_none(), "truncated payload");
    }

    #[test]
    fn opt_varint_roundtrip_and_reject_overlong() {
        let mut buf = Vec::new();
        put_opt_varint(&mut buf, Some(u64::MAX));
        put_opt_varint(&mut buf, None);
        let (a, n) = get_opt_varint(&buf).unwrap();
        assert_eq!(a, Some(u64::MAX));
        let (b, m) = get_opt_varint(&buf[n..]).unwrap();
        assert_eq!(b, None);
        assert_eq!(n + m, buf.len());
        assert!(get_opt_varint(&[]).is_none());
        assert!(get_opt_varint(&[7]).is_none(), "presence byte must be 0/1");
        // Present flag followed by an 11-byte (overlong) varint.
        let mut overlong = vec![1u8];
        overlong.extend_from_slice(&[0x80; 10]);
        overlong.push(0x01);
        assert!(get_opt_varint(&overlong).is_none());
    }

    #[test]
    fn fixed_ints_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, 0x0102_0304_0506_0708);
        assert_eq!(get_u32(&buf, 0), Some(0xdead_beef));
        assert_eq!(get_u64(&buf, 4), Some(0x0102_0304_0506_0708));
        assert_eq!(get_u32(&buf, 9), None);
        assert_eq!(get_u64(&buf, usize::MAX), None);
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 test vector: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        // "123456789"
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc32c_detects_bitflips() {
        let base = crc32c(b"muppet slate payload");
        let mut corrupted = b"muppet slate payload".to_vec();
        corrupted[3] ^= 0x01;
        assert_ne!(crc32c(&corrupted), base);
    }

    #[test]
    fn event_wire_roundtrip() {
        let mut e = Event::new("S1", 123_456, Key::from("walmart"), vec![0xff, 0x00, 0x7f]);
        e.seq = 42;
        let mut buf = Vec::new();
        put_event(&mut buf, &e);
        // A second event concatenates cleanly.
        let empty = Event::new("", 0, Key::empty(), Vec::new());
        put_event(&mut buf, &empty);
        let (got, n) = get_event(&buf).unwrap();
        assert_eq!(got, e);
        let (got2, m) = get_event(&buf[n..]).unwrap();
        assert_eq!(got2, empty);
        assert_eq!(n + m, buf.len());
    }

    #[test]
    fn event_wire_rejects_truncation_and_bad_utf8() {
        let e = Event::new("stream", 7, Key::from("k"), b"value".to_vec());
        let mut buf = Vec::new();
        put_event(&mut buf, &e);
        for cut in 0..buf.len() {
            assert!(get_event(&buf[..cut]).is_none(), "cut at {cut} must fail");
        }
        // Corrupt the stream name with invalid UTF-8.
        let mut bad = buf.clone();
        bad[1] = 0xff;
        assert!(get_event(&bad).is_none());
    }
}
