//! The failure master (§4.3), epoch-aware for elastic membership.
//!
//! Muppet deliberately keeps the master *off the data path*: "Muppet lets
//! the workers pass events directly to one another without going through
//! any master. (The master in Muppet is used for handling failures.)"
//!
//! Failure protocol: when worker A cannot reach worker B, A reports B's
//! machine to the master; the master broadcasts the failure so every
//! worker's hash ring drops the machine; the undeliverable event is lost
//! (and logged), not retried. Detection is driven by traffic, which the
//! paper argues beats periodic pings at streaming rates.
//!
//! With elastic membership (DESIGN.md §7) a machine id can *re-join* at a
//! later epoch, so bare ids no longer identify an incarnation: a stale
//! report — observed against the old incarnation, delayed on the wire —
//! must not kill the new one. Every report and broadcast is therefore
//! stamped with the membership epoch the failure was observed under, and
//! the registry rejects anything staler than the machine's latest join.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use muppet_core::hash::{FxHashMap, FxHashSet};
use muppet_core::sync::RwLock;

/// One failure report, for the experiment log.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Machine that was found unreachable.
    pub machine: usize,
    /// The membership epoch the reporter observed the failure under.
    pub epoch: u64,
    /// When the report arrived at the master.
    pub at: Instant,
}

/// The master: failure registry + broadcast, epoch-fenced.
#[derive(Debug, Default)]
pub struct Master {
    failed: RwLock<FxHashSet<usize>>,
    /// Latest epoch each machine (re-)joined at. Absent = a founding
    /// member (joined at epoch 0).
    joined: RwLock<FxHashMap<usize, u64>>,
    reports: RwLock<Vec<FailureReport>>,
    broadcasts: AtomicU64,
    stale_rejections: AtomicU64,
}

impl Master {
    /// A master with no known failures.
    pub fn new() -> Self {
        Master::default()
    }

    /// The epoch `machine` last joined at (0 for founding members).
    pub fn joined_epoch(&self, machine: usize) -> u64 {
        self.joined.read().get(&machine).copied().unwrap_or(0)
    }

    /// Record that `machine` (re-)joined the cluster at `epoch`: clears
    /// any failed mark from a previous incarnation and fences out stale
    /// reports (those stamped with an earlier epoch).
    pub fn mark_joined(&self, machine: usize, epoch: u64) {
        let mut joined = self.joined.write();
        let slot = joined.entry(machine).or_insert(0);
        if epoch >= *slot {
            *slot = epoch;
            self.failed.write().remove(&machine);
        }
    }

    /// Report `machine` unreachable, observed under membership `epoch`.
    /// Returns `true` if this was the first live report (i.e. a broadcast
    /// should happen); duplicates are absorbed, and reports staler than
    /// the machine's latest join are rejected outright — they describe a
    /// previous incarnation.
    pub fn report_failure(&self, machine: usize, epoch: u64) -> bool {
        if epoch < self.joined_epoch(machine) {
            self.stale_rejections.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        {
            let failed = self.failed.read();
            if failed.contains(&machine) {
                return false;
            }
        }
        let mut failed = self.failed.write();
        // Re-check the fence under the write lock: a concurrent
        // mark_joined must win over a racing stale report.
        if epoch < self.joined_epoch(machine) {
            self.stale_rejections.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if !failed.insert(machine) {
            return false;
        }
        self.reports.write().push(FailureReport { machine, epoch, at: Instant::now() });
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Record a failure learned from a master *broadcast* (as opposed to a
    /// locally observed one): updates the failed set without logging a
    /// report or counting a broadcast, so receiving nodes never re-fan the
    /// news out. Returns `true` if the machine was newly marked; stale
    /// broadcasts (older than the machine's latest join) are rejected.
    pub fn mark_failed(&self, machine: usize, epoch: u64) -> bool {
        if epoch < self.joined_epoch(machine) {
            self.stale_rejections.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.failed.write().insert(machine)
    }

    /// Whether a machine is known-failed ("each worker keeps track of all
    /// failed machines" — centralized here; the shared read lock is the
    /// broadcast).
    pub fn is_failed(&self, machine: usize) -> bool {
        self.failed.read().contains(&machine)
    }

    /// Snapshot of failed machine ids.
    pub fn failed_machines(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.failed.read().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// All failure reports so far.
    pub fn reports(&self) -> Vec<FailureReport> {
        self.reports.read().clone()
    }

    /// Number of broadcasts issued (== distinct accepted failures).
    pub fn broadcast_count(&self) -> u64 {
        self.broadcasts.load(Ordering::Relaxed)
    }

    /// Reports/broadcasts rejected for carrying a stale epoch.
    pub fn stale_rejection_count(&self) -> u64 {
        self.stale_rejections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_report_broadcasts_duplicates_absorbed() {
        let m = Master::new();
        assert!(!m.is_failed(3));
        assert!(m.report_failure(3, 0));
        assert!(!m.report_failure(3, 0), "duplicate report must not re-broadcast");
        assert!(m.is_failed(3));
        assert_eq!(m.broadcast_count(), 1);
        assert_eq!(m.reports().len(), 1);
        assert_eq!(m.failed_machines(), vec![3]);
    }

    #[test]
    fn multiple_failures_accumulate() {
        let m = Master::new();
        m.report_failure(1, 0);
        m.report_failure(0, 0);
        m.report_failure(2, 0);
        assert_eq!(m.failed_machines(), vec![0, 1, 2]);
        assert_eq!(m.broadcast_count(), 3);
    }

    #[test]
    fn concurrent_reports_broadcast_exactly_once() {
        use std::sync::Arc;
        let m = Arc::new(Master::new());
        let winners: Vec<bool> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.report_failure(7, 0))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        assert_eq!(winners.iter().filter(|&&w| w).count(), 1, "exactly one reporter wins");
        assert_eq!(m.broadcast_count(), 1);
    }

    #[test]
    fn rejoin_clears_the_failed_mark() {
        let m = Master::new();
        assert!(m.report_failure(2, 0));
        assert!(m.is_failed(2));
        m.mark_joined(2, 3);
        assert!(!m.is_failed(2), "a re-joined machine is alive again");
        assert_eq!(m.joined_epoch(2), 3);
    }

    #[test]
    fn stale_report_cannot_kill_a_rejoined_incarnation() {
        // The bug this fences: machine 2 fails, re-joins at epoch 3, and
        // only then does a slow worker's report — observed against the
        // *old* incarnation under epoch 0 — reach the master. Without the
        // epoch stamp the bare-usize registry would kill the new
        // incarnation.
        let m = Master::new();
        m.mark_joined(2, 3);
        assert!(!m.report_failure(2, 0), "stale-epoch report must be rejected");
        assert!(!m.is_failed(2));
        assert_eq!(m.broadcast_count(), 0);
        assert_eq!(m.stale_rejection_count(), 1);
        // A report observed at (or after) the join epoch is legitimate:
        // the *new* incarnation really did die.
        assert!(m.report_failure(2, 3));
        assert!(m.is_failed(2));
    }

    #[test]
    fn stale_broadcast_receipt_is_rejected_too() {
        let m = Master::new();
        m.mark_joined(4, 2);
        assert!(!m.mark_failed(4, 1), "stale broadcast must not mark the new incarnation");
        assert!(!m.is_failed(4));
        assert!(m.mark_failed(4, 2));
        assert!(m.is_failed(4));
    }

    #[test]
    fn mark_joined_ignores_regressions() {
        let m = Master::new();
        m.mark_joined(1, 5);
        m.mark_joined(1, 2); // an out-of-order (older) join must not lower the fence
        assert_eq!(m.joined_epoch(1), 5);
        assert!(!m.report_failure(1, 4));
        assert!(m.report_failure(1, 5));
    }
}
