//! Failure drill (§4.3): kill a machine mid-stream and watch Muppet
//! detect it on the next send, broadcast via the master, reroute around
//! it, and account for every lost event.
//!
//! ```sh
//! cargo run --example failure_drill
//! ```

use std::time::{Duration, Instant};

use muppet::apps::retailer::{self, Counter, RetailerMapper};
use muppet::prelude::*;
use muppet::workloads::checkins::CheckinGenerator;

const BEFORE: usize = 10_000;
const AFTER: usize = 10_000;

fn main() {
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 4,
        workers_per_machine: 2,
        ..EngineConfig::default()
    };
    let engine = Engine::start(
        retailer::workflow(),
        OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
        cfg,
        None,
    )
    .expect("engine starts");

    let mut gen = CheckinGenerator::new(5, 2_000, 1_000.0);

    println!("phase 1: {BEFORE} checkins across 4 healthy machines");
    for ev in gen.take(retailer::CHECKIN_STREAM, BEFORE) {
        engine.submit(ev).expect("submit");
    }
    assert!(engine.drain(Duration::from_secs(30)));
    let healthy = engine.stats();
    println!(
        "  processed {} operator calls, 0 losses ({} lost)",
        healthy.processed,
        healthy.lost_machine_failure + healthy.lost_in_queues
    );

    println!("\nphase 2: killing machine 2 (its queued events and unflushed slates are lost)");
    engine.kill_machine(2);
    assert!(!engine.failure_detected(2), "failure is unknown until a send hits it (§4.3)");
    let kill_at = Instant::now();

    println!("phase 3: {AFTER} more checkins — the first send to machine 2 reports the failure");
    let mut detection_latency = None;
    for ev in gen.take(retailer::CHECKIN_STREAM, AFTER) {
        engine.submit(ev).expect("submit");
        if detection_latency.is_none() && engine.failure_detected(2) {
            detection_latency = Some(kill_at.elapsed());
        }
    }
    assert!(engine.drain(Duration::from_secs(30)));
    assert!(engine.failure_detected(2), "traffic must have detected the failure");

    let stats = engine.stats();
    let lost = stats.lost_machine_failure + stats.lost_in_queues;
    println!("\nresults:");
    println!(
        "  failure detected after {:?} (traffic-driven, no ping period)",
        detection_latency.unwrap_or_default()
    );
    println!("  events lost to the dead machine: {lost} (logged, not retried — §4.3's choice of latency over completeness)");
    println!("  events processed post-failure:  {}", stats.processed - healthy.processed);
    for line in engine.recent_drops().iter().take(3) {
        println!("  drop log: {line}");
    }

    // The survivors keep exact counts of everything that reached them.
    let total_counted: u64 = ["Walmart", "Sam's Club", "Best Buy", "Target", "JCPenney"]
        .iter()
        .filter_map(|r| engine.read_slate(retailer::COUNTER, &Key::from(*r)))
        .map(|b| String::from_utf8(b).unwrap().parse::<u64>().unwrap())
        .sum();
    println!("  retail checkins counted by survivors: {total_counted}");
    engine.shutdown();
    assert!(lost > 0, "a kill under load must lose something (bounded)");
    println!("\n✓ failure detected on send, rerouted via hash ring, loss bounded and logged");
}
