//! SSTables: immutable sorted on-disk runs, flushed from memtables.
//!
//! §4.2 describes the behaviour this file format exists to support: point
//! reads of uncached slates need "random-seek I/O capacity", periodic
//! compactions rewrite files, and "the more times a row is flushed to disk
//! ... the more files will have to be checked for the row". The format is
//! a simplified Cassandra/LevelDB hybrid:
//!
//! ```text
//! [block 0][block 1]...[index block][bloom block][footer]
//! block      := [u32 crc][u32 len][cell records...]   (~4 KiB of records)
//! index      := [u32 crc][u32 len][(first key, offset, len) per block]
//! bloom      := [u32 crc][u32 len][BloomFilter bytes]
//! footer     := index_off u64 | bloom_off u64 | entries u64 | magic u64
//! ```
//!
//! Point reads consult the bloom filter, binary-search the in-memory index,
//! and read exactly one block (charged to the [`StorageDevice`]).

use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use muppet_core::codec::{crc32c, get_u32, get_u64, put_u32, put_u64, put_varint};
use muppet_core::codec::{get_len_prefixed, get_varint, put_len_prefixed};

use crate::bloom::BloomFilter;
use crate::device::StorageDevice;
use crate::record::{decode_cell, encode_cell};
use crate::types::{Cell, CellKey, StoreError, StoreResult};

const MAGIC: u64 = 0x4d55_5050_5353_5442; // "MUPPSSTB"
const FOOTER_LEN: usize = 32;
/// Target uncompressed block payload size.
pub const BLOCK_TARGET: usize = 4096;

/// Streaming writer; `add` must be called in strictly ascending key order.
pub struct SSTableWriter {
    path: PathBuf,
    file: File,
    device: Arc<StorageDevice>,
    block: Vec<u8>,
    block_first_key: Option<CellKey>,
    index: Vec<(CellKey, u64, u32)>,
    offset: u64,
    entries: u64,
    bloom: BloomFilter,
    last_key: Option<CellKey>,
}

impl SSTableWriter {
    /// Create a writer; `expected_entries` sizes the bloom filter.
    pub fn create(
        path: impl AsRef<Path>,
        device: Arc<StorageDevice>,
        expected_entries: usize,
    ) -> StoreResult<SSTableWriter> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(SSTableWriter {
            path,
            file,
            device,
            block: Vec::with_capacity(BLOCK_TARGET + 512),
            block_first_key: None,
            index: Vec::new(),
            offset: 0,
            entries: 0,
            bloom: BloomFilter::with_capacity(expected_entries, 0.01),
            last_key: None,
        })
    }

    /// Append a cell; keys must arrive in strictly ascending order.
    pub fn add(&mut self, key: &CellKey, cell: &Cell) -> StoreResult<()> {
        if let Some(last) = &self.last_key {
            assert!(key > last, "SSTable keys must be strictly ascending: {last} !< {key}");
        }
        self.last_key = Some(key.clone());
        if self.block_first_key.is_none() {
            self.block_first_key = Some(key.clone());
        }
        self.bloom.insert(&bloom_item(key));
        encode_cell(&mut self.block, key, cell);
        self.entries += 1;
        if self.block.len() >= BLOCK_TARGET {
            self.finish_block()?;
        }
        Ok(())
    }

    fn finish_block(&mut self) -> StoreResult<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        // lint: allow(no-unwrap-in-prod) — `add` sets the first key whenever it fills `block`
        let first = self.block_first_key.take().expect("non-empty block has a first key");
        let framed_len = write_framed(&mut self.file, &self.block)?;
        self.device.charge_write(framed_len);
        self.index.push((first, self.offset, framed_len as u32));
        self.offset += framed_len as u64;
        self.block.clear();
        Ok(())
    }

    /// Finalize the table and return a reader over it.
    pub fn finish(mut self) -> StoreResult<SSTable> {
        self.finish_block()?;
        // Index block.
        let mut index_payload = Vec::new();
        for (key, off, len) in &self.index {
            put_len_prefixed(&mut index_payload, &key.row);
            put_len_prefixed(&mut index_payload, &key.column);
            put_varint(&mut index_payload, *off);
            put_varint(&mut index_payload, *len as u64);
        }
        let index_off = self.offset;
        let framed = write_framed(&mut self.file, &index_payload)?;
        self.device.charge_write(framed);
        self.offset += framed as u64;
        // Bloom block.
        let bloom_off = self.offset;
        let bloom_bytes = self.bloom.to_bytes();
        let framed = write_framed(&mut self.file, &bloom_bytes)?;
        self.device.charge_write(framed);
        self.offset += framed as u64;
        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        put_u64(&mut footer, index_off);
        put_u64(&mut footer, bloom_off);
        put_u64(&mut footer, self.entries);
        put_u64(&mut footer, MAGIC);
        self.file.write_all(&footer)?;
        muppet_core::sync::audit::blocking_io("sstable fsync");
        self.file.sync_data()?;
        let file_len = self.offset + FOOTER_LEN as u64;

        // Reopen read-only: `File::create` handles are write-only, and the
        // reader wants positioned reads on an immutable file.
        let read_handle = File::open(&self.path)?;
        Ok(SSTable {
            path: self.path,
            file: read_handle,
            device: self.device,
            index: self.index,
            bloom: self.bloom,
            entries: self.entries,
            file_len,
        })
    }
}

fn write_framed(file: &mut File, payload: &[u8]) -> StoreResult<usize> {
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut frame, crc32c(payload));
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(payload);
    file.write_all(&frame)?;
    Ok(frame.len())
}

fn read_framed_at(file: &File, offset: u64, framed_len: usize) -> StoreResult<Vec<u8>> {
    use std::os::unix::fs::FileExt;
    let mut buf = vec![0u8; framed_len];
    file.read_exact_at(&mut buf, offset)?;
    let crc = get_u32(&buf, 0).ok_or_else(|| StoreError::Corrupt("frame: truncated crc".into()))?;
    let len = get_u32(&buf, 4).ok_or_else(|| StoreError::Corrupt("frame: truncated len".into()))?;
    if len as usize + 8 != framed_len {
        return Err(StoreError::Corrupt("frame: length mismatch".into()));
    }
    let payload = buf.split_off(8);
    if crc32c(&payload) != crc {
        return Err(StoreError::Corrupt("frame: checksum mismatch".into()));
    }
    Ok(payload)
}

fn bloom_item(key: &CellKey) -> Vec<u8> {
    let mut item = Vec::with_capacity(key.row.len() + key.column.len() + 1);
    item.extend_from_slice(&key.row);
    item.push(0);
    item.extend_from_slice(&key.column);
    item
}

/// An immutable, open SSTable.
pub struct SSTable {
    path: PathBuf,
    file: File,
    device: Arc<StorageDevice>,
    index: Vec<(CellKey, u64, u32)>,
    bloom: BloomFilter,
    entries: u64,
    file_len: u64,
}

impl std::fmt::Debug for SSTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SSTable")
            .field("path", &self.path)
            .field("entries", &self.entries)
            .field("blocks", &self.index.len())
            .field("bytes", &self.file_len)
            .finish()
    }
}

impl SSTable {
    /// Open an existing table from disk (reads footer, index, bloom).
    pub fn open(path: impl AsRef<Path>, device: Arc<StorageDevice>) -> StoreResult<SSTable> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        if file_len < FOOTER_LEN as u64 {
            return Err(StoreError::Corrupt("sstable: too short".into()));
        }
        use std::os::unix::fs::FileExt;
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact_at(&mut footer, file_len - FOOTER_LEN as u64)?;
        // lint: allow(no-unwrap-in-prod) — fixed FOOTER_LEN array, offsets statically in bounds
        let index_off = get_u64(&footer, 0).unwrap();
        // lint: allow(no-unwrap-in-prod) — fixed FOOTER_LEN array, offsets statically in bounds
        let bloom_off = get_u64(&footer, 8).unwrap();
        // lint: allow(no-unwrap-in-prod) — fixed FOOTER_LEN array, offsets statically in bounds
        let entries = get_u64(&footer, 16).unwrap();
        // lint: allow(no-unwrap-in-prod) — fixed FOOTER_LEN array, offsets statically in bounds
        let magic = get_u64(&footer, 24).unwrap();
        if magic != MAGIC {
            return Err(StoreError::Corrupt("sstable: bad magic".into()));
        }
        if index_off > bloom_off || bloom_off > file_len - FOOTER_LEN as u64 {
            return Err(StoreError::Corrupt("sstable: bad section offsets".into()));
        }
        let index_payload = read_framed_at(&file, index_off, (bloom_off - index_off) as usize)?;
        let bloom_payload =
            read_framed_at(&file, bloom_off, (file_len - FOOTER_LEN as u64 - bloom_off) as usize)?;
        device.charge_read(index_payload.len() + bloom_payload.len());

        let mut index = Vec::new();
        let mut rest: &[u8] = &index_payload;
        while !rest.is_empty() {
            let (row, n1) =
                get_len_prefixed(rest).ok_or_else(|| StoreError::Corrupt("index: row".into()))?;
            rest = &rest[n1..];
            let (col, n2) =
                get_len_prefixed(rest).ok_or_else(|| StoreError::Corrupt("index: col".into()))?;
            rest = &rest[n2..];
            let (off, n3) =
                get_varint(rest).ok_or_else(|| StoreError::Corrupt("index: off".into()))?;
            rest = &rest[n3..];
            let (len, n4) =
                get_varint(rest).ok_or_else(|| StoreError::Corrupt("index: len".into()))?;
            rest = &rest[n4..];
            index.push((CellKey::new(row, col), off, len as u32));
        }
        let bloom = BloomFilter::from_bytes(&bloom_payload)?;
        Ok(SSTable { path, file, device, index, bloom, entries, file_len })
    }

    /// Point lookup. `None` when the key is certainly absent; the returned
    /// cell may be a tombstone (caller interprets).
    pub fn get(&self, key: &CellKey) -> StoreResult<Option<Cell>> {
        if self.index.is_empty() || !self.bloom.may_contain(&bloom_item(key)) {
            return Ok(None);
        }
        // Last block whose first key <= key.
        let block_idx = match self.index.binary_search_by(|(first, _, _)| first.cmp(key)) {
            Ok(i) => i,
            Err(0) => return Ok(None), // key sorts before the first block
            Err(i) => i - 1,
        };
        let (_, offset, framed_len) = &self.index[block_idx];
        self.device.charge_read(*framed_len as usize);
        let payload = read_framed_at(&self.file, *offset, *framed_len as usize)?;
        let mut rest: &[u8] = &payload;
        while !rest.is_empty() {
            let ((k, cell), n) = decode_cell(rest)?;
            match k.cmp(key) {
                std::cmp::Ordering::Equal => return Ok(Some(cell)),
                std::cmp::Ordering::Greater => return Ok(None),
                std::cmp::Ordering::Less => rest = &rest[n..],
            }
        }
        Ok(None)
    }

    /// Scan every cell in key order (compaction, bulk dump). Charges the
    /// device for each block.
    pub fn scan(&self) -> StoreResult<Vec<(CellKey, Cell)>> {
        let mut out = Vec::with_capacity(self.entries as usize);
        for (_, offset, framed_len) in &self.index {
            self.device.charge_read(*framed_len as usize);
            let payload = read_framed_at(&self.file, *offset, *framed_len as usize)?;
            let mut rest: &[u8] = &payload;
            while !rest.is_empty() {
                let (rec, n) = decode_cell(rest)?;
                out.push(rec);
                rest = &rest[n..];
            }
        }
        Ok(out)
    }

    /// Number of cells in the table.
    pub fn entry_count(&self) -> u64 {
        self.entries
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// File path (for deletion after compaction).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use crate::util::TempDir;

    fn device() -> Arc<StorageDevice> {
        Arc::new(StorageDevice::new(DeviceProfile::NULL))
    }

    fn build_table(dir: &TempDir, name: &str, n: u64) -> SSTable {
        let mut w = SSTableWriter::create(dir.file(name), device(), n as usize).unwrap();
        for i in 0..n {
            let key = CellKey::new(format!("row-{i:06}"), "U1");
            let cell = Cell::live(format!("value-{i}"), i, None);
            w.add(&key, &cell).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn write_then_point_read() {
        let dir = TempDir::new("sst").unwrap();
        let table = build_table(&dir, "t1.sst", 1000);
        assert_eq!(table.entry_count(), 1000);
        assert!(table.block_count() > 1, "1000 entries should span blocks");
        for i in [0u64, 1, 499, 998, 999] {
            let key = CellKey::new(format!("row-{i:06}"), "U1");
            let cell = table.get(&key).unwrap().unwrap();
            assert_eq!(cell.value.as_ref(), format!("value-{i}").as_bytes());
            assert_eq!(cell.write_ts, i);
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let dir = TempDir::new("sst").unwrap();
        let table = build_table(&dir, "t.sst", 100);
        assert!(table.get(&CellKey::new("row-999999", "U1")).unwrap().is_none());
        assert!(table.get(&CellKey::new("aaaa", "U1")).unwrap().is_none(), "before first block");
        assert!(table.get(&CellKey::new("row-000001", "U2")).unwrap().is_none(), "wrong column");
    }

    #[test]
    fn reopen_from_disk() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.file("t.sst");
        {
            build_table(&dir, "t.sst", 500);
        }
        let table = SSTable::open(&path, device()).unwrap();
        assert_eq!(table.entry_count(), 500);
        let cell = table.get(&CellKey::new("row-000250", "U1")).unwrap().unwrap();
        assert_eq!(cell.value.as_ref(), b"value-250");
    }

    #[test]
    fn scan_returns_everything_in_order() {
        let dir = TempDir::new("sst").unwrap();
        let table = build_table(&dir, "t.sst", 300);
        let all = table.scan().unwrap();
        assert_eq!(all.len(), 300);
        for window in all.windows(2) {
            assert!(window[0].0 < window[1].0, "scan must be sorted");
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_adds_panic() {
        let dir = TempDir::new("sst").unwrap();
        let mut w = SSTableWriter::create(dir.file("bad.sst"), device(), 10).unwrap();
        w.add(&CellKey::new("b", "U"), &Cell::live("v", 1, None)).unwrap();
        w.add(&CellKey::new("a", "U"), &Cell::live("v", 2, None)).unwrap();
    }

    #[test]
    fn tombstones_and_ttl_survive() {
        let dir = TempDir::new("sst").unwrap();
        let mut w = SSTableWriter::create(dir.file("t.sst"), device(), 4).unwrap();
        w.add(&CellKey::new("a", "U"), &Cell::live("v", 1, Some(30))).unwrap();
        w.add(&CellKey::new("b", "U"), &Cell::tombstone(2)).unwrap();
        let t = w.finish().unwrap();
        assert_eq!(t.get(&CellKey::new("a", "U")).unwrap().unwrap().ttl_secs, Some(30));
        assert!(t.get(&CellKey::new("b", "U")).unwrap().unwrap().tombstone);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.file("t.sst");
        build_table(&dir, "t.sst", 200);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the first data block.
        data[20] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let table = SSTable::open(&path, device()).unwrap();
        let key = CellKey::new("row-000000", "U1");
        assert!(matches!(table.get(&key), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn open_rejects_non_sstables() {
        let dir = TempDir::new("sst").unwrap();
        let path = dir.file("junk.sst");
        std::fs::write(&path, b"this is not an sstable at all................").unwrap();
        assert!(SSTable::open(&path, device()).is_err());
        std::fs::write(&path, b"x").unwrap();
        assert!(SSTable::open(&path, device()).is_err());
    }

    #[test]
    fn device_io_is_charged_per_block_read() {
        let dir = TempDir::new("sst").unwrap();
        let dev = device();
        let mut w = SSTableWriter::create(dir.file("t.sst"), Arc::clone(&dev), 1000).unwrap();
        for i in 0..1000u64 {
            w.add(&CellKey::new(format!("row-{i:06}"), "U1"), &Cell::live("v", i, None)).unwrap();
        }
        let t = w.finish().unwrap();
        let writes_after_build = dev.stats().writes;
        assert!(writes_after_build as usize >= t.block_count());
        let reads_before = dev.stats().reads;
        t.get(&CellKey::new("row-000500", "U1")).unwrap();
        assert_eq!(dev.stats().reads, reads_before + 1, "one block read per point lookup");
    }

    #[test]
    fn empty_table_is_valid() {
        let dir = TempDir::new("sst").unwrap();
        let w = SSTableWriter::create(dir.file("e.sst"), device(), 0).unwrap();
        let t = w.finish().unwrap();
        assert_eq!(t.entry_count(), 0);
        assert!(t.get(&CellKey::new("any", "U")).unwrap().is_none());
        assert!(t.scan().unwrap().is_empty());
    }
}
