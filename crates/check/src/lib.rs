//! # muppet-check — the workspace's correctness tooling
//!
//! Three layers (DESIGN.md §12):
//!
//! * [`lexer`] + [`rules`] + [`lint`] — a zero-dependency source scanner
//!   with repo-specific deny rules (`no-raw-lock`, `no-unwrap-in-prod`,
//!   `no-wallclock-in-deterministic`, `lock-across-io`), runnable as
//!   `cargo run -p muppet-check -- lint`;
//! * the `lock-audit` feature of `muppet-core::sync` (driven from this
//!   crate's integration tests) — runtime lock-order cycle detection and
//!   IO-under-lock reporting over the real engine;
//! * [`sched`] + [`models`] — a deterministic-seed schedule perturbation
//!   harness and small executable models of the repo's three hairiest
//!   lock protocols (ingest-WAL group commit, single-flight miss reads,
//!   flush-CAS vs concurrent mutation), each asserted over thousands of
//!   interleavings.

pub mod lexer;
pub mod lint;
pub mod models;
pub mod rules;
pub mod sched;
