//! # muppet-core — the MapUpdate programming model
//!
//! This crate defines the data model and programming interfaces of
//! **MapUpdate**, the MapReduce-style framework for fast data introduced by
//! the Muppet paper (Lam et al., VLDB 2012), plus a deterministic
//! single-threaded *reference executor* that realizes the paper's
//! "well-defined" semantics exactly (Section 3):
//!
//! * events are tuples ⟨sid, ts, k, v⟩ ([`event::Event`]);
//! * a *stream* is the sequence of events with one sid in increasing
//!   timestamp order, with a deterministic tie-breaking procedure;
//! * *map* functions ([`operator::Mapper`]) consume events and emit events;
//! * *update* functions ([`operator::Updater`]) additionally receive the
//!   **slate** ([`slate::Slate`]) for the event's key — the summary of all
//!   events with that key the updater has seen so far;
//! * applications are workflows ([`workflow::Workflow`]) — directed graphs
//!   (cycles allowed) of map/update functions connected by streams;
//! * every output event carries a timestamp strictly greater than its input
//!   event, which keeps cyclic workflows well-defined.
//!
//! The distributed runtime lives in `muppet-runtime`; the durable slate
//! store lives in `muppet-slatestore`. Both build exclusively on the types
//! defined here, and both are tested against [`reference::ReferenceExecutor`]
//! as the golden model.
//!
//! The crate is dependency-light by design: JSON (used throughout the paper
//! for slate and feed payloads) and binary codecs are implemented here.

pub mod codec;
pub mod config;
pub mod error;
pub mod event;
pub mod hash;
pub mod json;
pub mod mbf;
pub mod operator;
pub mod reference;
pub mod slate;
pub mod sync;
pub mod time;
pub mod workflow;

pub use error::{Error, Result};
pub use event::{Event, Key, StreamId, Timestamp};
pub use json::Json;
pub use mbf::{Codec, CodecChoice};
pub use operator::{combine_decimal_sum, CombinedUpdate, Emitter, Mapper, Updater};
pub use reference::ReferenceExecutor;
pub use slate::Slate;
pub use workflow::{Workflow, WorkflowBuilder};
