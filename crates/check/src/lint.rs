//! The lint driver: workspace walking, per-path rule scoping, and the
//! report the CLI renders.

use std::path::{Path, PathBuf};

use crate::lexer;
use crate::rules::{self, Finding};

/// Where the workspace root is when nothing is passed explicitly: two
/// levels above this crate's manifest (baked at compile time, correct for
/// in-repo `cargo run -p muppet-check`).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Which rules apply to a repo-relative path (forward slashes).
/// `None` means the file is exempt from scanning entirely.
fn scopes(path: &str) -> Option<Vec<&'static str>> {
    const EXEMPT_PREFIXES: [&str; 5] = [
        "vendor/", // API-compat shims for absent crates.io deps
        "target/",
        ".git/",
        "crates/core/src/sync",   // the shim IS the sanctioned lock layer
        "crates/check/fixtures/", // deliberately-dirty lint fixtures
    ];
    if EXEMPT_PREFIXES.iter().any(|p| path.starts_with(p)) {
        return None;
    }
    let mut rules = vec!["no-raw-lock"];
    let prod_serving = [
        "crates/runtime/src/",
        "crates/net/src/",
        "crates/slatestore/src/",
        "crates/obs/src/",
        "src/",
    ];
    if prod_serving.iter().any(|p| path.starts_with(p)) {
        rules.push("no-unwrap-in-prod");
        rules.push("lock-across-io");
    }
    if path.starts_with("crates/core/src/") || path.starts_with("crates/workloads/src/") {
        rules.push("no-wallclock-in-deterministic");
    }
    Some(rules)
}

fn run_rule(rule: &str, path: &str, lines: &[lexer::LineInfo]) -> Vec<Finding> {
    match rule {
        "no-raw-lock" => rules::no_raw_lock(path, lines),
        "no-unwrap-in-prod" => rules::no_unwrap_in_prod(path, lines),
        "no-wallclock-in-deterministic" => rules::no_wallclock_in_deterministic(path, lines),
        "lock-across-io" => rules::lock_across_io(path, lines),
        other => panic!("unknown rule `{other}`"),
    }
}

/// Lint one source text as if it lived at `virtual_path` (repo-relative).
/// This is the unit the fixture tests drive directly.
pub fn lint_source(virtual_path: &str, source: &str) -> Vec<Finding> {
    let Some(rules) = scopes(virtual_path) else {
        return Vec::new();
    };
    let lines = lexer::scan(source);
    rules.iter().flat_map(|r| run_rule(r, virtual_path, &lines)).collect()
}

/// The outcome of a lint run.
pub struct Report {
    /// All findings, in path order.
    pub findings: Vec<Finding>,
    /// How many files were scanned (exempt files not counted).
    pub files_scanned: usize,
}

impl Report {
    /// The `file:line: rule: message` lines plus a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        let files: std::collections::BTreeSet<&str> =
            self.findings.iter().map(|f| f.file.as_str()).collect();
        out.push_str(&format!(
            "muppet-check: {} finding{} in {} file{} ({} files scanned)\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            files.len(),
            if files.len() == 1 { "" } else { "s" },
            self.files_scanned,
        ));
        out
    }

    /// Machine-readable JSON summary (no external deps: hand-rendered).
    pub fn render_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    r#"{{"rule":"{}","file":"{}","line":{},"message":"{}"}}"#,
                    f.rule,
                    esc(&f.file),
                    f.line,
                    esc(&f.message)
                )
            })
            .collect();
        format!(
            r#"{{"files_scanned":{},"finding_count":{},"findings":[{}]}}"#,
            self.files_scanned,
            self.findings.len(),
            findings.join(",")
        )
    }
}

/// Recursively collect every `.rs` file under `root`, repo-relative.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Lint the whole workspace under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0;
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if scopes(&rel_str).is_none() {
            continue;
        }
        scanned += 1;
        let source = std::fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source(&rel_str, &source));
    }
    Ok(Report { findings, files_scanned: scanned })
}

/// Lint explicit files (fixture mode). Each file may open with a
/// `// lint-fixture-as: <repo-relative path>` header that sets the
/// virtual path rules are scoped by; without one, the path is used as-is
/// relative to the current directory.
pub fn lint_files(paths: &[String]) -> std::io::Result<Report> {
    let mut findings = Vec::new();
    for p in paths {
        let source = std::fs::read_to_string(p)?;
        let virtual_path = source
            .lines()
            .next()
            .and_then(|l| l.trim().strip_prefix("// lint-fixture-as:"))
            .map(|v| v.trim().to_string())
            .unwrap_or_else(|| p.replace('\\', "/"));
        findings.extend(lint_source(&virtual_path, &source).into_iter().map(|mut f| {
            // Report the real on-disk path so diagnostics stay clickable.
            f.file = p.clone();
            f
        }));
    }
    Ok(Report { findings, files_scanned: paths.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_rules() {
        assert!(scopes("vendor/parking_lot/src/lib.rs").is_none());
        assert!(scopes("crates/core/src/sync/audit.rs").is_none());
        assert!(scopes("crates/check/fixtures/no_raw_lock/flagged.rs").is_none());
        let engine = scopes("crates/runtime/src/engine.rs").unwrap();
        assert!(engine.contains(&"no-raw-lock"));
        assert!(engine.contains(&"no-unwrap-in-prod"));
        assert!(engine.contains(&"lock-across-io"));
        let core = scopes("crates/core/src/reference.rs").unwrap();
        assert!(core.contains(&"no-wallclock-in-deterministic"));
        assert!(!core.contains(&"no-unwrap-in-prod"));
        // The binary slate codec is replay-critical: its byte output must
        // be a pure function of the document, so the wall-clock ban
        // covers it (at-rest bytes and WAL replay both depend on it).
        let mbf = scopes("crates/core/src/mbf.rs").unwrap();
        assert!(mbf.contains(&"no-wallclock-in-deterministic"));
        // Integration tests: raw-lock rule still applies, unwrap rule not.
        let t = scopes("tests/store_pipeline.rs").unwrap();
        assert!(t.contains(&"no-raw-lock"));
        assert!(!t.contains(&"no-unwrap-in-prod"));
    }

    #[test]
    fn workspace_is_lint_clean() {
        // The repo's own acceptance gate, dogfooded as a unit test: the
        // full workspace must produce zero findings.
        let report = lint_workspace(&default_root()).expect("workspace readable");
        assert!(
            report.findings.is_empty(),
            "workspace must be lint-clean:\n{}",
            report.render_text()
        );
        assert!(report.files_scanned > 50, "sanity: walked the real tree");
    }
}
