//! The space-saving heavy-hitters sketch (Metwally et al.) behind
//! per-⟨op, key⟩ rate telemetry.
//!
//! §5: "The distribution of event keys can be strongly skewed ...
//! updaters can receive widely varying loads." Exact per-key counting
//! over an unbounded key universe is off the table on the hot path, so
//! each cache shard keeps a fixed-capacity sketch: the top keys are
//! counted exactly once they enter, and any key's reported count
//! overshoots its true count by at most `err` (the count it inherited
//! when it evicted the previous minimum). Classic guarantee: with
//! capacity `m` after `N` offered events, `err ≤ N / m`, so any key with
//! true rate above `N / m` is guaranteed present.

use std::collections::HashMap;
use std::hash::Hash;

/// One tracked heavy hitter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeavyHitter<K> {
    /// The tracked key.
    pub key: K,
    /// Estimated count (true count ≤ `count`, ≥ `count - err`).
    pub count: u64,
    /// Overestimation bound inherited at entry.
    pub err: u64,
}

/// A fixed-capacity space-saving sketch.
#[derive(Clone, Debug)]
pub struct SpaceSaving<K: Eq + Hash + Clone> {
    capacity: usize,
    index: HashMap<K, usize>,
    entries: Vec<HeavyHitter<K>>,
    offered: u64,
}

impl<K: Eq + Hash + Clone> SpaceSaving<K> {
    /// A sketch tracking at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpaceSaving {
            capacity,
            index: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            offered: 0,
        }
    }

    /// Offer one occurrence of `key`.
    pub fn offer(&mut self, key: K) {
        self.offer_n(key, 1);
    }

    /// Offer `weight` occurrences of `key` (sampled callers offer the
    /// sampling interval as the weight).
    pub fn offer_n(&mut self, key: K, weight: u64) {
        self.offered += weight;
        if let Some(&i) = self.index.get(&key) {
            self.entries[i].count += weight;
            return;
        }
        if self.entries.len() < self.capacity {
            let i = self.entries.len();
            self.entries.push(HeavyHitter { key: key.clone(), count: weight, err: 0 });
            self.index.insert(key, i);
            return;
        }
        // Evict the minimum: the newcomer inherits its count as error.
        let (min_i, _) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.count)
            // lint: allow(no-unwrap-in-prod) — reached only when entries.len() == capacity >= 1
            .expect("capacity >= 1 so entries is non-empty");
        let evicted_count = self.entries[min_i].count;
        let old_key = std::mem::replace(
            &mut self.entries[min_i],
            HeavyHitter { key: key.clone(), count: evicted_count + weight, err: evicted_count },
        )
        .key;
        self.index.remove(&old_key);
        self.index.insert(key, min_i);
    }

    /// The top `k` tracked keys, highest estimated count first (ties by
    /// smaller error).
    pub fn top(&self, k: usize) -> Vec<HeavyHitter<K>> {
        let mut all = self.entries.clone();
        all.sort_by(|a, b| b.count.cmp(&a.count).then(a.err.cmp(&b.err)));
        all.truncate(k);
        all
    }

    /// The estimated count for `key`, if tracked.
    pub fn estimate(&self, key: &K) -> Option<u64> {
        self.index.get(key).map(|&i| self.entries[i].count)
    }

    /// Keys currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no key has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum keys tracked.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total weight offered (the `N` in the `N / m` error bound).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The worst-case overestimation of any reported count right now.
    pub fn error_bound(&self) -> u64 {
        self.offered / self.capacity as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.offer("a");
        }
        for _ in 0..3 {
            s.offer("b");
        }
        assert_eq!(s.estimate(&"a"), Some(5));
        assert_eq!(s.estimate(&"b"), Some(3));
        let top = s.top(10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].key, "a");
        assert_eq!(top[0].err, 0, "no eviction happened, counts are exact");
        assert_eq!(s.offered(), 8);
    }

    #[test]
    fn eviction_inherits_error() {
        let mut s = SpaceSaving::new(2);
        s.offer("a");
        s.offer("a");
        s.offer("b");
        // "c" evicts "b" (the min, count 1) and inherits err = 1.
        s.offer("c");
        assert_eq!(s.estimate(&"b"), None);
        let c = s.top(10).into_iter().find(|h| h.key == "c").unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.err, 1);
    }

    #[test]
    fn heavy_key_survives_noise() {
        let mut s = SpaceSaving::new(4);
        for i in 0..1000u64 {
            s.offer("hot");
            s.offer(match i % 3 {
                0 => "x",
                1 => "y",
                _ => "z",
            });
            // A stream of one-off keys hammering the sketch.
            if i % 2 == 0 {
                s.offer_n(Box::leak(format!("cold-{i}").into_boxed_str()) as &str, 1);
            }
        }
        let top = s.top(1);
        assert_eq!(top[0].key, "hot");
        assert!(top[0].count >= 1000, "hot key never undercounts");
        assert!(top[0].count - top[0].err <= 1000, "guaranteed-count lower bound holds");
    }

    #[test]
    fn weighted_offers_count_in_bulk() {
        let mut s = SpaceSaving::new(2);
        s.offer_n("a", 64);
        s.offer_n("a", 64);
        assert_eq!(s.estimate(&"a"), Some(128));
        assert_eq!(s.offered(), 128);
        assert_eq!(s.error_bound(), 64);
    }
}
