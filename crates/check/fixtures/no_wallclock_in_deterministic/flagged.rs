// lint-fixture-as: crates/core/src/fixture.rs
//! Fixture: wall-clock reads in a deterministic crate — each flagged.

use std::time::{Instant, SystemTime};

pub fn now_pair() -> (Instant, SystemTime) {
    let a = Instant::now(); // finding
    let b = SystemTime::now(); // finding
    (a, b)
}
