//! The central correctness claim: the distributed engines approximate the
//! reference executor's well-defined semantics (§3), and for loss-free
//! configurations of commutative applications they match it *exactly* —
//! including across an elastic mid-stream machine join.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use muppet::apps::hot_topics::{self, HotDetector, MinuteCounter, TopicMapper};
use muppet::apps::retailer::{self, Counter, RetailerMapper};
use muppet::prelude::*;
use muppet::slatestore::util::TempDir;
use muppet::workloads::checkins::CheckinGenerator;
use muppet::workloads::tweets::TweetGenerator;

fn reference_counts(events: &[Event]) -> BTreeMap<String, u64> {
    let wf = retailer::workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.register_mapper(RetailerMapper::new());
    exec.register_updater(Counter::new());
    for ev in events {
        exec.push_external(retailer::CHECKIN_STREAM, ev.clone());
    }
    exec.run_to_completion().unwrap();
    exec.slates_of(retailer::COUNTER)
        .into_iter()
        .map(|(k, s)| (k.as_str().unwrap().to_string(), s.counter()))
        .collect()
}

fn engine_counts(events: &[Event], kind: EngineKind, machines: usize) -> BTreeMap<String, u64> {
    let cfg = EngineConfig {
        kind,
        machines,
        workers_per_machine: 3,
        workers_per_op: 3,
        // Zero-loss configuration: queues never drop, sources block.
        overflow: OverflowPolicy::SourceThrottle,
        queue_capacity: 512,
        ..EngineConfig::default()
    };
    let engine = Engine::start(
        retailer::workflow(),
        OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
        cfg,
        None,
    )
    .unwrap();
    for ev in events {
        engine.submit(ev.clone()).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(60)), "engine must drain");
    let mut out = BTreeMap::new();
    for (retailer_name, _) in muppet::workloads::checkins::RETAILER_VENUES {
        if let Some(bytes) = engine.read_slate(retailer::COUNTER, &Key::from(*retailer_name)) {
            out.insert(
                retailer_name.to_string(),
                String::from_utf8(bytes).unwrap().parse().unwrap(),
            );
        }
    }
    let stats = engine.shutdown();
    assert_eq!(stats.dropped_overflow, 0, "zero-loss config must not drop");
    assert_eq!(stats.lost_machine_failure + stats.lost_in_queues, 0);
    out
}

#[test]
fn muppet2_matches_reference_exactly() {
    let mut gen = CheckinGenerator::new(101, 1000, 2000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 8000);
    let expected = reference_counts(&events);
    let got = engine_counts(&events, EngineKind::Muppet2, 3);
    assert_eq!(got, expected);
}

#[test]
fn muppet1_matches_reference_exactly() {
    let mut gen = CheckinGenerator::new(202, 1000, 2000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 8000);
    let expected = reference_counts(&events);
    let got = engine_counts(&events, EngineKind::Muppet1, 3);
    assert_eq!(got, expected);
}

#[test]
fn both_engines_agree_with_each_other_and_ground_truth() {
    let mut gen = CheckinGenerator::new(303, 500, 2000.0).with_venue_skew(1.8);
    let events = gen.take(retailer::CHECKIN_STREAM, 6000);
    let truth: BTreeMap<String, u64> =
        CheckinGenerator::expected_retailer_counts(&events).into_iter().collect();
    let v1 = engine_counts(&events, EngineKind::Muppet1, 2);
    let v2 = engine_counts(&events, EngineKind::Muppet2, 2);
    assert_eq!(v1, truth, "Muppet 1.0 vs ground truth");
    assert_eq!(v2, truth, "Muppet 2.0 vs ground truth");
}

/// Run `events` through an engine that *grows by one machine* mid-stream
/// (elastic join, DESIGN.md §7) and return the per-retailer totals.
fn engine_counts_with_join(
    events: &[Event],
    kind: EngineKind,
    machines: usize,
    store: Option<Arc<StoreCluster>>,
) -> BTreeMap<String, u64> {
    let cfg = EngineConfig {
        kind,
        machines,
        workers_per_machine: 2,
        workers_per_op: 2,
        overflow: OverflowPolicy::SourceThrottle,
        queue_capacity: 512,
        ..EngineConfig::default()
    };
    let engine = Engine::start(
        retailer::workflow(),
        OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
        cfg,
        store,
    )
    .unwrap();
    let epoch_before = engine.epoch();
    let (first, second) = events.split_at(events.len() / 2);
    for ev in first {
        engine.submit(ev.clone()).unwrap();
    }
    // Mid-stream — no drain, no quiesce: queues are hot while the new
    // machine enters the rings and moved slates are handed off.
    let joined = engine.join_machine().unwrap();
    assert_eq!(joined, machines, "ids are append-only");
    assert!(engine.ring_contains(joined), "the joiner must enter the ring");
    assert!(engine.epoch() > epoch_before, "a join must mint a new epoch");
    for ev in second {
        engine.submit(ev.clone()).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(60)), "engine must drain");
    let mut out = BTreeMap::new();
    for (retailer_name, _) in muppet::workloads::checkins::RETAILER_VENUES {
        if let Some(bytes) = engine.read_slate(retailer::COUNTER, &Key::from(*retailer_name)) {
            out.insert(
                retailer_name.to_string(),
                String::from_utf8(bytes).unwrap().parse().unwrap(),
            );
        }
    }
    let stats = engine.shutdown();
    assert_eq!(stats.dropped_overflow, 0, "zero-loss config must not drop");
    assert_eq!(
        stats.lost_machine_failure + stats.lost_in_queues,
        0,
        "a mid-stream join must be loss-free on the handoff path"
    );
    out
}

#[test]
fn muppet2_with_midstream_join_matches_reference_exactly() {
    // Store-backed handoff: the old owner flushes moved slates, the new
    // machine faults them in — totals must still be exact.
    let dir = TempDir::new("join-ref-m2").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let mut gen = CheckinGenerator::new(505, 800, 2000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 8000);
    let expected = reference_counts(&events);
    let got = engine_counts_with_join(&events, EngineKind::Muppet2, 3, Some(store));
    assert_eq!(got, expected);
}

#[test]
fn muppet1_with_midstream_join_matches_reference_exactly() {
    let dir = TempDir::new("join-ref-m1").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let mut gen = CheckinGenerator::new(606, 800, 2000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 8000);
    let expected = reference_counts(&events);
    let got = engine_counts_with_join(&events, EngineKind::Muppet1, 3, Some(store));
    assert_eq!(got, expected);
}

#[test]
fn midstream_join_without_store_transfers_slates_directly() {
    // No store attached: the in-process handoff moves the slate slots
    // between machine caches instead — still exact.
    let mut gen = CheckinGenerator::new(707, 500, 2000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 6000);
    let expected = reference_counts(&events);
    let got = engine_counts_with_join(&events, EngineKind::Muppet2, 2, None);
    assert_eq!(got, expected);
}

/// Canonical form of a slate payload: an MBF document decodes, JSON text
/// parses, and both render the same compact canonical text (sorted keys,
/// shortest number form). Payloads that are not documents at all (plain
/// text counters) compare as raw text. This is the comparison mode the
/// binary-representation tests need — byte equality is too strict once
/// the same document can be at rest in two codecs.
fn canonical(bytes: &[u8]) -> String {
    Json::from_payload(bytes)
        .map(|doc| doc.to_compact())
        .unwrap_or_else(|_| String::from_utf8_lossy(bytes).into_owned())
}

/// Run hot_topics (container-valued slates) over a store-backed engine
/// pinned to `codec` and return ⟨canonical minute-counter slates, how
/// many stored values were MBF at rest⟩. The store is scanned directly
/// after shutdown, so the values compared are the bytes that actually
/// rested on disk.
fn hot_topics_at_rest(codec: CodecChoice, events: &[Event]) -> (BTreeMap<String, String>, usize) {
    let dir = TempDir::new("canon").unwrap();
    let store = Arc::new(StoreCluster::open(dir.path(), StoreConfig::default()).unwrap());
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 2,
        overflow: OverflowPolicy::SourceThrottle,
        flush: FlushPolicy::WriteThrough,
        wire_codec: codec,
        ..EngineConfig::default()
    };
    let engine = Engine::start(
        hot_topics::workflow(),
        OperatorSet::new()
            .mapper(TopicMapper::new())
            .updater(MinuteCounter::new())
            .updater(HotDetector::new(3.0)),
        cfg,
        Some(Arc::clone(&store)),
    )
    .unwrap();
    for ev in events {
        engine.submit(ev.clone()).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(60)));
    let now = engine.now_us();
    engine.shutdown();
    let rows = store.scan_column(hot_topics::MINUTE_COUNTER, now + 1).unwrap();
    let mbf_at_rest = rows.iter().filter(|(_, value)| muppet::core::mbf::is_mbf(value)).count();
    let slates = rows
        .into_iter()
        .map(|(row, value)| (String::from_utf8_lossy(&row).into_owned(), canonical(&value)))
        .collect();
    (slates, mbf_at_rest)
}

#[test]
fn mbf_at_rest_matches_reference_canonically() {
    let mut gen = TweetGenerator::new(909, 300, 2000.0);
    let events = gen.take(hot_topics::TWEET_STREAM, 6000);

    // Reference truth, canonicalized the same way.
    let wf = hot_topics::workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.register_mapper(TopicMapper::new());
    exec.register_updater(MinuteCounter::new());
    exec.register_updater(HotDetector::new(3.0));
    for ev in &events {
        exec.push_external(hot_topics::TWEET_STREAM, ev.clone());
    }
    exec.run_to_completion().unwrap();
    let expected: BTreeMap<String, String> = exec
        .slates_of(hot_topics::MINUTE_COUNTER)
        .into_iter()
        .map(|(k, s)| (String::from_utf8_lossy(k.as_bytes()).into_owned(), canonical(s.bytes())))
        .collect();
    assert!(!expected.is_empty(), "the workload must produce minute-counter slates");

    let (json_slates, json_mbf) = hot_topics_at_rest(CodecChoice::Json, &events);
    let (mbf_slates, mbf_mbf) = hot_topics_at_rest(CodecChoice::Mbf, &events);

    // Same documents regardless of the at-rest codec — and both exactly
    // the reference's.
    assert_eq!(json_slates, expected, "JSON at rest vs reference");
    assert_eq!(mbf_slates, expected, "MBF at rest vs reference");

    // The codec choice actually changed the resting representation.
    assert_eq!(json_mbf, 0, "a JSON-pinned engine must not store MBF");
    assert_eq!(mbf_mbf, mbf_slates.len(), "an MBF engine stores every container slate in MBF");
}

#[test]
fn single_machine_single_worker_degenerate_cluster() {
    // The smallest possible cluster must still be correct.
    let mut gen = CheckinGenerator::new(404, 100, 1000.0);
    let events = gen.take(retailer::CHECKIN_STREAM, 1000);
    let expected = reference_counts(&events);
    let cfg = EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 1,
        workers_per_machine: 1,
        overflow: OverflowPolicy::SourceThrottle,
        ..EngineConfig::default()
    };
    let engine = Engine::start(
        retailer::workflow(),
        OperatorSet::new().mapper(RetailerMapper::new()).updater(Counter::new()),
        cfg,
        None,
    )
    .unwrap();
    for ev in &events {
        engine.submit(ev.clone()).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(30)));
    for (retailer_name, expect) in &expected {
        let got = engine
            .read_slate(retailer::COUNTER, &Key::from(retailer_name.as_str()))
            .map(|b| String::from_utf8(b).unwrap().parse::<u64>().unwrap())
            .unwrap_or(0);
        assert_eq!(got, *expect, "{retailer_name}");
    }
    engine.shutdown();
}
