//! Fast, deterministic hashing.
//!
//! Muppet routes every event by hashing ⟨event key, destination function⟩ to
//! a worker (§4.1), and hashes again inside each machine to pick the
//! primary/secondary queue (§4.5). Those hashes must be *stable across
//! machines and runs* — all workers share one hash function so any worker
//! can compute any event's destination without asking a master. The std
//! `SipHash` with `RandomState` is per-process-seeded and therefore unusable
//! here; we implement the Fx polynomial hash (as used by rustc) which is
//! deterministic, very fast on short keys, and of adequate quality for
//! load-spreading.

use std::hash::{BuildHasherDefault, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Deterministic 64-bit Fx hash of a byte slice.
#[inline]
pub fn fx64(bytes: &[u8]) -> u64 {
    let mut h = FxHasher64::default();
    h.write(bytes);
    h.finish()
}

/// Deterministic 64-bit hash of two byte slices (e.g. key + operator name)
/// with a length separator so `("ab","c")` and `("a","bc")` differ.
#[inline]
pub fn fx64_pair(a: &[u8], b: &[u8]) -> u64 {
    let mut h = FxHasher64::default();
    h.write(a);
    h.write_u64(a.len() as u64);
    h.write(b);
    h.finish()
}

/// Fx hasher state. Implements [`Hasher`] so it can plug into std maps via
/// [`FxBuildHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // Fx's final multiply mixes *upward*: the low bits of the state are
        // poorly distributed, and both the worker hash ring and the queue
        // dispatcher bucket hashes with `% n`. Finalize with SplitMix64 so
        // every bit is usable.
        mix64(self.hash)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Mix in the remainder length so trailing zero bytes change the hash.
            word[7] = rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for std collections: `HashMap<K, V, FxBuildHasher>`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` keyed with the deterministic Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Mix a 64-bit value (SplitMix64 finalizer). Used to derive independent
/// hash points for ring virtual nodes and bloom filter probes.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(fx64(b"walmart"), fx64(b"walmart"));
        assert_eq!(fx64_pair(b"k", b"U1"), fx64_pair(b"k", b"U1"));
    }

    #[test]
    fn distinguishes_concat_ambiguity() {
        assert_ne!(fx64_pair(b"ab", b"c"), fx64_pair(b"a", b"bc"));
    }

    #[test]
    fn trailing_zeroes_change_hash() {
        assert_ne!(fx64(b"a"), fx64(b"a\0"));
        assert_ne!(fx64(b""), fx64(b"\0"));
    }

    #[test]
    fn empty_input_hashes_to_default() {
        assert_eq!(fx64(b""), 0);
        // ... but writing zero-length via Hasher keeps the running state.
        let mut h = FxHasher64::default();
        h.write_u64(7);
        let before = h.finish();
        h.write(b"");
        assert_eq!(h.finish(), before);
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sanity: 10k sequential keys into 16 buckets stay within ±30% of
        // the mean. Fx is not cryptographic; this guards against gross
        // regressions only.
        let mut buckets = [0u32; 16];
        for i in 0..10_000u64 {
            let k = format!("user-{i}");
            buckets[(fx64(k.as_bytes()) % 16) as usize] += 1;
        }
        let mean = 10_000 / 16;
        for &b in &buckets {
            assert!(
                (b as i64 - mean as i64).unsigned_abs() < mean as u64 * 3 / 10,
                "bucket {b} vs mean {mean}"
            );
        }
    }

    #[test]
    fn mix64_changes_all_inputs() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn fx_hash_map_usable() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
    }
}
