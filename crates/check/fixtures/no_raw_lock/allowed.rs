// lint-fixture-as: crates/runtime/src/fixture.rs
//! Fixture: a raw lock excused by a reasoned annotation.

// lint: allow(no-raw-lock) — FFI boundary requires the std type here
use std::sync::Mutex;

pub struct Excused {
    // lint: allow(no-raw-lock) — FFI boundary requires the std type here
    inner: Mutex<u64>,
}
