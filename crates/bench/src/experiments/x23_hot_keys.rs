//! X23 — hot keys: map-side combiners and dynamic key splitting.
//!
//! §5: "the distribution of event keys can be strongly skewed … updaters
//! can receive widely varying loads." X12 measured the paper's *manual*
//! Example-6 remedy (the application splits its own counter). This
//! experiment measures the *runtime* remedy stack (DESIGN.md §14): the
//! operator declares an associative `combine`, the engine folds same-key
//! runs in the drained batch (and in the TCP sender outbox before
//! framing), and a SpaceSaving-detected hot key fans out across
//! ring-distributed subslates, merged back on read. Exactness is the
//! invariant: every arm's per-key totals are compared bit-for-bit against
//! `core::reference` ground truth.
//!
//! Arms (identical in-process 2-machine cluster, identical Zipf(1.2)
//! stream, identical instrumented updater):
//!
//! * `naive`          — `combine` off: one slate mutation per event;
//! * `combiner`       — `combine` on, splitting off: drained batches fold
//!   same-key runs, so the head key pays one mutation per batch;
//! * `combiner+split` — + `hot_split_threshold`: the head key's updates
//!   fan across subslates and reads merge them through the combiner.
//!
//! A uniform-key control (s = 0, wide universe — nothing to fold) bounds
//! the combiner's bookkeeping overhead, and a raw two-node TCP section
//! counts framed wire entries for a single-hot-key burst with and without
//! a declared combiner. Results land in `BENCH_x23.json`; the
//! deterministic counter contrasts gate CI, wall-clock ratios are
//! asserted only at full scale (`--quick` timing on shared runners is
//! noise).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use muppet_apps::split_counter::CombiningCounter;
use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_core::operator::{combine_decimal_sum, Emitter, Updater};
use muppet_core::reference::ReferenceExecutor;
use muppet_core::slate::Slate;
use muppet_core::workflow::{OpId, Workflow};
use muppet_net::topology::Topology;
use muppet_net::transport::{ClusterHandler, MachineId, NetError, Transport};
use muppet_net::{BatchConfig, TcpTransport, WireEvent};
use muppet_runtime::dispatch::{split_base_of, split_subkey, SPLIT_WAYS};
use muppet_runtime::engine::{Engine, EngineConfig, EngineStats, OperatorSet};
use muppet_runtime::overflow::OverflowPolicy;
use muppet_workloads::{zipf_events, ZIPF_STREAM};

use crate::table::{rate, Table};
use crate::Scale;

const COUNTER: &str = "zipf-counter";
const MACHINES: usize = 2;
const WORKERS: usize = 1;
const HEAD: &str = "k0";
/// Sized so the Zipf head (~21% of the stream) crosses it early even at
/// `--quick` scale, well before the burst drains.
const SPLIT_THRESHOLD: u64 = 500;
/// Per-mutation cost standing in for the paper's real update functions
/// (JSON slate parse + rebuild, top-K upkeep — cf. X12's heavyweight
/// stand-in). A bare `incr_counter` is the cheapest updater expressible,
/// which would measure the dispatch path, not the combiner: what folding
/// buys is *skipped slate mutations*, so the contrast scales with
/// exactly this per-mutation cost. Identical in every arm.
const UPDATE_COST: Duration = Duration::from_micros(2);

fn workflow() -> Workflow {
    let mut b = Workflow::builder("x23-hot-keys");
    b.external_stream(ZIPF_STREAM);
    b.updater(COUNTER, &[ZIPF_STREAM]);
    b.build().unwrap()
}

/// [`CombiningCounter`] plus a head-key mutation probe: counts `update`
/// invocations that touch the head key's slate — the base key or any of
/// its split subslates — which is exactly the serialization bottleneck
/// the combiner and the splitter attack from opposite ends.
struct InstrumentedCounter {
    head_mutations: Arc<AtomicU64>,
}

impl Updater for InstrumentedCounter {
    fn name(&self) -> &str {
        COUNTER
    }

    fn update(&self, _ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        let head = event.key.as_bytes() == HEAD.as_bytes()
            || split_base_of(&event.key).is_some_and(|base| base.as_bytes() == HEAD.as_bytes());
        if head {
            self.head_mutations.fetch_add(1, Ordering::Relaxed);
        }
        let deadline = Instant::now() + UPDATE_COST;
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
        let n: u64 = std::str::from_utf8(event.value.as_ref())
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        slate.incr_counter(n);
    }

    fn combine(&self, acc: &[u8], next: &[u8]) -> Option<Vec<u8>> {
        combine_decimal_sum(acc, next)
    }

    fn combines(&self) -> bool {
        true
    }
}

/// Ground truth per `core::reference`: the workflow executed one event at
/// a time, no folding, no splitting.
fn reference_counts(events: &[Event]) -> BTreeMap<String, u64> {
    let wf = workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.register_updater(CombiningCounter::named(COUNTER));
    exec.push_external_batch(ZIPF_STREAM, events.iter().cloned());
    exec.run_to_completion().expect("reference run");
    exec.slates_of(COUNTER)
        .into_iter()
        .map(|(k, s)| (String::from_utf8(k.as_bytes().to_vec()).unwrap(), s.counter()))
        .collect()
}

struct Outcome {
    elapsed: Duration,
    stats: EngineStats,
    head_mutations: u64,
    counts: BTreeMap<String, u64>,
    populated_subslates: usize,
}

fn run_arm(events: &[Event], expected: &BTreeMap<String, u64>, cfg: EngineConfig) -> Outcome {
    let head_mutations = Arc::new(AtomicU64::new(0));
    let ops = OperatorSet::new()
        .updater(InstrumentedCounter { head_mutations: Arc::clone(&head_mutations) });
    let engine = Engine::start(workflow(), ops, cfg, None).unwrap();
    let t0 = Instant::now();
    engine.submit_many(events.to_vec()).expect("submit");
    assert!(engine.drain(Duration::from_secs(300)), "arm did not drain");
    let elapsed = t0.elapsed();
    // Reads go through the public merge-on-read path, so a split head
    // key's subslates fold back through the combiner right here.
    let mut counts = BTreeMap::new();
    for key in expected.keys() {
        if let Some(bytes) = engine.read_slate(COUNTER, &Key::from(key.as_str())) {
            counts.insert(key.clone(), String::from_utf8(bytes).unwrap().parse::<u64>().unwrap());
        }
    }
    let head = Key::from(HEAD);
    let populated_subslates = (0..SPLIT_WAYS)
        .filter(|&w| engine.read_slate(COUNTER, &split_subkey(&head, w)).is_some())
        .count();
    let stats = engine.stats();
    engine.shutdown();
    Outcome {
        elapsed,
        stats,
        head_mutations: head_mutations.load(Ordering::Relaxed),
        counts,
        populated_subslates,
    }
}

fn config(combine: bool, hot_split_threshold: u64) -> EngineConfig {
    EngineConfig {
        machines: MACHINES,
        workers_per_machine: WORKERS,
        queue_capacity: 1 << 14,
        drain_batch_max: 512,
        // Loss-free: every arm processes the identical event set, so
        // ratios compare equal work.
        overflow: OverflowPolicy::SourceThrottle,
        combine,
        hot_split_threshold,
        ..EngineConfig::default()
    }
}

/// Fastest of `reps` runs — the standard noise filter for wall-clock
/// contrasts on a shared box (counter-based outcomes are identical across
/// repeats by construction).
fn best_of(reps: usize, mut f: impl FnMut() -> Outcome) -> Outcome {
    let mut best = f();
    for _ in 1..reps {
        let o = f();
        if o.elapsed < best.elapsed {
            best = o;
        }
    }
    best
}

/// Wire sink/source handler: op 1 optionally declares the decimal-sum
/// combiner (source side folds in the outbox), and the sink tracks the
/// delivered total so exactness over the wire is checked, not assumed.
struct WireHandler {
    combining: bool,
    delivered_entries: AtomicUsize,
    absorbed: AtomicUsize,
    sum: AtomicUsize,
}

impl WireHandler {
    fn new(combining: bool) -> Arc<WireHandler> {
        Arc::new(WireHandler {
            combining,
            delivered_entries: AtomicUsize::new(0),
            absorbed: AtomicUsize::new(0),
            sum: AtomicUsize::new(0),
        })
    }
}

impl ClusterHandler for WireHandler {
    fn deliver_event(&self, _dest: MachineId, ev: WireEvent) -> Result<(), NetError> {
        self.delivered_entries.fetch_add(1, Ordering::Relaxed);
        let n: usize =
            std::str::from_utf8(&ev.event.value).unwrap_or("0").trim().parse().unwrap_or(0);
        self.sum.fetch_add(n, Ordering::Relaxed);
        Ok(())
    }
    fn deliver_combined(
        &self,
        dest: MachineId,
        ev: WireEvent,
        absorbed: u64,
    ) -> Result<(), NetError> {
        self.absorbed.fetch_add(absorbed as usize, Ordering::Relaxed);
        self.deliver_event(dest, ev)
    }
    fn combine_values(&self, op: OpId, acc: &[u8], next: &[u8]) -> Option<Vec<u8>> {
        if !self.combining || op != 1 {
            return None;
        }
        combine_decimal_sum(acc, next)
    }
    fn handle_failure_report(&self, _failed: MachineId, _epoch: u64) {}
    fn handle_failure_broadcast(&self, _failed: MachineId, _epoch: u64) {}
    fn read_local_slate(&self, _d: MachineId, _u: &str, _k: &[u8]) -> Option<Vec<u8>> {
        None
    }
}

struct WireOutcome {
    elapsed: Duration,
    entries_framed: u64,
    frames: u64,
}

/// Push an `n`-event single-hot-key unit burst through one batching TCP
/// sender to one peer and count the wire entries actually framed. The
/// long age bound keeps flushes size-triggered, so the naive arm frames
/// exactly `n` entries while the combining arm folds each
/// `batch_max`-sized drain into one carrier entry.
fn wire_burst(n: usize, batch_max: usize, combining: bool) -> WireOutcome {
    let topo = Topology::loopback_ephemeral(2, false).expect("reserve ports");
    let batch = BatchConfig { batch_max, flush_us: 200_000, ..BatchConfig::default() };
    let source = TcpTransport::new_with_batching(topo.clone(), 0, batch).unwrap();
    let sink = TcpTransport::new(topo, 1).unwrap();
    let src_handler = WireHandler::new(combining);
    let sink_handler = WireHandler::new(combining);
    source.register(Arc::downgrade(&src_handler) as Weak<dyn ClusterHandler>);
    sink.register(Arc::downgrade(&sink_handler) as Weak<dyn ClusterHandler>);
    let _listener = sink.start_listener().expect("bind sink");
    let events: Vec<WireEvent> = (0..n)
        .map(|i| WireEvent {
            op: 1,
            event: Event::new(ZIPF_STREAM, i as u64 + 1, Key::from(HEAD), &b"1"[..]),
            injected_us: 0,
            redirected: false,
            external: true,
            thread_hint: None,
            forwards: 0,
        })
        .collect();
    let t0 = Instant::now();
    for ev in events {
        source.send_event(1, ev).expect("wire send");
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while sink_handler.sum.load(Ordering::Relaxed) < n {
        assert!(Instant::now() < deadline, "wire burst never drained");
        std::thread::sleep(Duration::from_micros(200));
    }
    let elapsed = t0.elapsed();
    assert_eq!(sink_handler.sum.load(Ordering::Relaxed), n, "wire totals must stay exact");
    let stats = source.stats();
    WireOutcome {
        elapsed,
        entries_framed: stats.batched_events_sent.load(Ordering::Relaxed),
        frames: stats.frames_sent.load(Ordering::Relaxed),
    }
}

fn arm_json(name: &str, n: usize, o: &Outcome) -> Json {
    let secs = o.elapsed.as_secs_f64().max(1e-9);
    Json::obj([
        ("arm", Json::str(name)),
        ("events", Json::num(n as f64)),
        ("wall_ms", Json::num(o.elapsed.as_secs_f64() * 1e3)),
        ("events_per_sec", Json::num(n as f64 / secs)),
        ("head_slate_mutations", Json::num(o.head_mutations as f64)),
        ("combined_events", Json::num(o.stats.combined_events as f64)),
        ("split_keys_active", Json::num(o.stats.split_keys_active as f64)),
        ("split_merge_reads", Json::num(o.stats.split_merge_reads as f64)),
        ("populated_head_subslates", Json::num(o.populated_subslates as f64)),
        ("p99_e2e_us", Json::num(o.stats.latency.p99_us as f64)),
    ])
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X23",
        "map-side combiners and dynamic hot-key splitting (Zipf counters)",
        "§5 skew; DESIGN.md §14 combiner contract + split lifecycle",
    );
    let full = scale == Scale::FULL;
    let n = scale.events(120_000);
    let events = zipf_events(500, 1.2, n, 77);
    let expected = reference_counts(&events);
    let head_events = expected[HEAD];

    // Counter outcomes are gate-stable per run; best-of-reps only filters
    // scheduler noise out of the wall-clock contrasts.
    let reps = if full { 3 } else { 1 };
    let naive = best_of(reps, || run_arm(&events, &expected, config(false, 0)));
    let combiner = best_of(reps, || run_arm(&events, &expected, config(true, 0)));
    let split = best_of(reps, || run_arm(&events, &expected, config(true, SPLIT_THRESHOLD)));

    let mut table = Table::new([
        "arm",
        "events",
        "wall time",
        "events/s",
        "head slate writes",
        "combined",
        "split active",
        "head subslates",
    ]);
    for (name, o) in [("naive", &naive), ("combiner", &combiner), ("combiner+split", &split)] {
        table.row([
            name.to_string(),
            n.to_string(),
            format!("{:.2?}", o.elapsed),
            rate(n, o.elapsed),
            o.head_mutations.to_string(),
            o.stats.combined_events.to_string(),
            o.stats.split_keys_active.to_string(),
            o.populated_subslates.to_string(),
        ]);
    }
    table.print();

    // Exactness is the contract: all three arms reproduce the reference
    // totals bit-for-bit, split head key included (merged on read).
    assert_eq!(naive.counts, expected, "naive arm must match core::reference");
    assert_eq!(combiner.counts, expected, "folded delivery must match core::reference");
    assert_eq!(split.counts, expected, "split + merge-on-read must match core::reference");

    // The naive arm pays one slate mutation per head event; the combiner
    // folds the head's same-key runs down by ≥10×.
    assert_eq!(naive.head_mutations, head_events, "naive = one mutation per head event");
    assert_eq!(naive.stats.combined_events, 0);
    assert_eq!(naive.stats.split_keys_active, 0);
    assert!(combiner.stats.combined_events > 0, "skewed burst must fold");
    let head_drop = naive.head_mutations as f64 / combiner.head_mutations.max(1) as f64;
    assert!(
        naive.head_mutations >= 10 * combiner.head_mutations,
        "combining must cut head-key slate mutations ≥10× ({} vs {})",
        naive.head_mutations,
        combiner.head_mutations
    );
    assert_eq!(combiner.stats.split_keys_active, 0, "threshold 0 never splits");

    // The split arm fans the head key across subslates and merges on read.
    assert!(
        split.populated_subslates >= 4,
        "head key must spread across ≥4 subslates, got {}",
        split.populated_subslates
    );
    assert!(split.stats.split_keys_active >= 1, "the Zipf head must be split");
    assert!(split.stats.split_merge_reads > 0, "reads of the split key must merge");

    // Uniform control: a wide flat universe offers nothing to fold, so
    // this bounds the combiner's pure bookkeeping overhead.
    let n_uniform = scale.events(60_000);
    let uniform = zipf_events(2_000, 0.0, n_uniform, 101);
    let uniform_expected = reference_counts(&uniform);
    let uniform_naive = best_of(reps, || run_arm(&uniform, &uniform_expected, config(false, 0)));
    let uniform_combine = best_of(reps, || run_arm(&uniform, &uniform_expected, config(true, 0)));
    assert_eq!(uniform_naive.counts, uniform_expected);
    assert_eq!(uniform_combine.counts, uniform_expected);
    let uniform_regression_pct = (uniform_combine.elapsed.as_secs_f64()
        / uniform_naive.elapsed.as_secs_f64().max(1e-9)
        - 1.0)
        * 100.0;

    // Raw wire: a single-hot-key burst through one batching TCP sender —
    // combining folds each batch_max drain into one framed carrier.
    let n_wire = scale.events(100_000);
    let batch_max = 128;
    let wire_naive = wire_burst(n_wire, batch_max, false);
    let wire_combined = wire_burst(n_wire, batch_max, true);
    let wire_bound = (n_wire as u64).div_ceil(batch_max as u64); // × 1 peer
    assert_eq!(
        wire_naive.entries_framed, n_wire as u64,
        "no combiner declared = one wire entry per event"
    );
    assert!(
        wire_combined.entries_framed <= wire_bound,
        "combining must bound framed entries by ⌈N/batch_max⌉·peers ({} > {wire_bound})",
        wire_combined.entries_framed
    );
    assert!(
        wire_naive.entries_framed >= 10 * wire_combined.entries_framed.max(1),
        "combining must cut framed wire events ≥10× ({} vs {})",
        wire_naive.entries_framed,
        wire_combined.entries_framed
    );
    let wire_drop = wire_naive.entries_framed as f64 / wire_combined.entries_framed.max(1) as f64;

    let mut wire_table = Table::new([
        "wire (1 sender, hot-key burst)",
        "events",
        "wall time",
        "entries framed",
        "frames",
    ]);
    for (name, o) in [("naive", &wire_naive), ("combining", &wire_combined)] {
        wire_table.row([
            name.to_string(),
            n_wire.to_string(),
            format!("{:.2?}", o.elapsed),
            o.entries_framed.to_string(),
            o.frames.to_string(),
        ]);
    }
    println!();
    wire_table.print();

    let speedup = naive.elapsed.as_secs_f64() / combiner.elapsed.as_secs_f64().max(1e-9);
    println!(
        "\nshape check: combining folds the head key's {head_events} events into \
         {} slate mutations ({head_drop:.0}× fewer) and delivers {speedup:.2}× the naive \
         events/s; the split arm spreads the head across {} subslates ({} merge-on-read \
         folds) with totals still bit-for-bit; the wire frames {} entries instead of \
         {n_wire} ({wire_drop:.0}× fewer); the uniform control moves {uniform_regression_pct:+.1}%",
        combiner.head_mutations,
        split.populated_subslates,
        split.stats.split_merge_reads,
        wire_combined.entries_framed,
    );
    // Wall-clock gates only at full scale — the committed BENCH_x23.json
    // is the record; --quick CI runs gate on the counter contrasts above.
    if full {
        assert!(
            speedup >= 1.3,
            "combiner arm must deliver ≥1.3× naive events/s at full scale (got {speedup:.2}×)"
        );
        assert!(
            uniform_regression_pct < 3.0,
            "uniform workload must regress <3% under combining (got {uniform_regression_pct:.1}%)"
        );
    }

    let doc = Json::obj([
        ("experiment", Json::str("x23")),
        ("workload", Json::str("zipf_events(500 keys, s=1.2) unit counters")),
        ("machines", Json::num(MACHINES as f64)),
        ("workers_per_machine", Json::num(WORKERS as f64)),
        ("events", Json::num(n as f64)),
        ("head_key_events", Json::num(head_events as f64)),
        ("hot_split_threshold", Json::num(SPLIT_THRESHOLD as f64)),
        (
            "arms",
            Json::arr([
                arm_json("naive", n, &naive),
                arm_json("combiner", n, &combiner),
                arm_json("combiner+split", n, &split),
                arm_json("uniform-naive", n_uniform, &uniform_naive),
                arm_json("uniform-combiner", n_uniform, &uniform_combine),
            ]),
        ),
        (
            "wire",
            Json::obj([
                ("events", Json::num(n_wire as f64)),
                ("batch_max", Json::num(batch_max as f64)),
                ("entry_bound", Json::num(wire_bound as f64)),
                ("naive_entries_framed", Json::num(wire_naive.entries_framed as f64)),
                ("combined_entries_framed", Json::num(wire_combined.entries_framed as f64)),
                ("entry_drop", Json::num((wire_drop * 10.0).round() / 10.0)),
            ]),
        ),
        ("combiner_speedup_vs_naive", Json::num((speedup * 100.0).round() / 100.0)),
        ("head_mutation_drop", Json::num((head_drop * 10.0).round() / 10.0)),
        ("uniform_regression_pct", Json::num((uniform_regression_pct * 100.0).round() / 100.0)),
    ]);
    match std::fs::write("BENCH_x23.json", doc.to_pretty() + "\n") {
        Ok(()) => println!("wrote BENCH_x23.json"),
        Err(e) => eprintln!("could not write BENCH_x23.json: {e}"),
    }
}
