//! Map and Update functions — the user-written code of a MapUpdate
//! application, transliterated from the paper's Java interfaces
//! (Appendix A, Figures 3 and 4).
//!
//! Both operator kinds subscribe to one or more streams and are fed events
//! in increasing timestamp order. Both may publish new events. Only
//! updaters receive a [`Slate`]. Implementations must be `Send + Sync`
//! because Muppet 2.0 constructs each function once and shares it across
//! every worker thread on the machine (§4.5).

use bytes::Bytes;

use crate::event::{EmitRecord, Event, Key, StreamId};
use crate::slate::Slate;

/// The event-publication context handed to operators — the analogue of the
/// paper's `PerformerUtilities` submitter.
///
/// Output timestamps are assigned by the runtime as *input ts + 1*, which
/// enforces §3's rule that "each output event has a timestamp greater than
/// the timestamp of the input event" and keeps cyclic workflows
/// well-defined. Operators only choose the destination stream, key, and
/// payload.
pub trait Emitter {
    /// Publish an event to `stream` (cf. `submitter.publish("S_2", ...)` in
    /// Figure 3). The runtime may reject unknown or external streams; such
    /// errors surface when the executor processes the emission, not here.
    fn publish(&mut self, stream: &str, key: Key, value: Vec<u8>);

    /// Publish with a shared payload, avoiding a copy on fan-out.
    fn publish_shared(&mut self, stream: &str, key: Key, value: Bytes);
}

/// A buffering [`Emitter`] that records emissions for the executor to admit
/// afterwards. This is what both the reference executor and the runtime
/// engines pass into operators.
#[derive(Debug, Default)]
pub struct VecEmitter {
    records: Vec<EmitRecord>,
}

impl VecEmitter {
    /// An empty emitter buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the buffered emissions.
    pub fn take(&mut self) -> Vec<EmitRecord> {
        std::mem::take(&mut self.records)
    }

    /// Number of buffered emissions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reuse the allocation across events (hot path in the engines).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Borrow the buffered emissions without draining.
    pub fn records(&self) -> &[EmitRecord] {
        &self.records
    }
}

impl Emitter for VecEmitter {
    fn publish(&mut self, stream: &str, key: Key, value: Vec<u8>) {
        self.records.push(EmitRecord {
            stream: StreamId::from(stream),
            key,
            value: Bytes::from(value),
        });
    }

    fn publish_shared(&mut self, stream: &str, key: Key, value: Bytes) {
        self.records.push(EmitRecord { stream: StreamId::from(stream), key, value });
    }
}

/// A map function: stateless, event in → zero or more events out (§3).
///
/// The Rust port of the paper's `Mapper` interface (Figure 3). `map` takes
/// `&self` — Muppet 2.0 shares a single instance across threads, so any
/// internal state must be synchronized (and the paper discourages operator
/// state outside slates entirely).
pub trait Mapper: Send + Sync + 'static {
    /// Unique name of this map function within the application. Names
    /// identify functions because the same implementation can be reused as
    /// different functions (Appendix A).
    fn name(&self) -> &str;

    /// Process one event; publish outputs via `ctx`.
    fn map(&self, ctx: &mut dyn Emitter, event: &Event);
}

/// An update function: stateful via its per-key [`Slate`] (§3).
///
/// The Rust port of the paper's `Updater` interface (Figure 4). When the
/// slate for ⟨self, event.key⟩ does not exist yet (first event, or TTL
/// expiry), `update` receives an empty slate and must initialize it.
pub trait Updater: Send + Sync + 'static {
    /// Unique name of this update function within the application.
    fn name(&self) -> &str;

    /// Process one event, mutating the slate for `event.key` and optionally
    /// publishing new events.
    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate);

    /// Slate time-to-live in seconds; `None` means "forever" (the default,
    /// §3). The runtime and the key-value store garbage-collect slates not
    /// written for longer than this, resetting them to empty.
    fn slate_ttl_secs(&self) -> Option<u64> {
        None
    }
}

/// Blanket adapters so closures can serve as quick mappers in tests and
/// examples: `FnMapper::new("M1", |ctx, ev| ...)`.
pub struct FnMapper<F> {
    name: String,
    f: F,
}

impl<F> FnMapper<F>
where
    F: Fn(&mut dyn Emitter, &Event) + Send + Sync + 'static,
{
    /// Wrap a closure as a named [`Mapper`].
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnMapper { name: name.into(), f }
    }
}

impl<F> Mapper for FnMapper<F>
where
    F: Fn(&mut dyn Emitter, &Event) + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, ctx: &mut dyn Emitter, event: &Event) {
        (self.f)(ctx, event)
    }
}

/// Closure adapter for updaters: `FnUpdater::new("U1", |ctx, ev, slate| ...)`.
pub struct FnUpdater<F> {
    name: String,
    ttl_secs: Option<u64>,
    f: F,
}

impl<F> FnUpdater<F>
where
    F: Fn(&mut dyn Emitter, &Event, &mut Slate) + Send + Sync + 'static,
{
    /// Wrap a closure as a named [`Updater`].
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnUpdater { name: name.into(), ttl_secs: None, f }
    }

    /// Set the slate TTL (seconds).
    pub fn with_ttl_secs(mut self, secs: u64) -> Self {
        self.ttl_secs = Some(secs);
        self
    }
}

impl<F> Updater for FnUpdater<F>
where
    F: Fn(&mut dyn Emitter, &Event, &mut Slate) + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        (self.f)(ctx, event, slate)
    }

    fn slate_ttl_secs(&self) -> Option<u64> {
        self.ttl_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_emitter_buffers_in_order() {
        let mut em = VecEmitter::new();
        assert!(em.is_empty());
        em.publish("S2", Key::from("a"), b"1".to_vec());
        em.publish_shared("S3", Key::from("b"), Bytes::from_static(b"2"));
        assert_eq!(em.len(), 2);
        let recs = em.take();
        assert_eq!(recs[0].stream.as_str(), "S2");
        assert_eq!(recs[0].key, Key::from("a"));
        assert_eq!(recs[1].stream.as_str(), "S3");
        assert_eq!(recs[1].value.as_ref(), b"2");
        assert!(em.is_empty());
    }

    #[test]
    fn fn_mapper_runs_closure() {
        let m = FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        });
        assert_eq!(m.name(), "M1");
        let mut em = VecEmitter::new();
        let ev = Event::new("S1", 5, Key::from("k"), "v");
        m.map(&mut em, &ev);
        assert_eq!(em.records().len(), 1);
        assert_eq!(em.records()[0].stream.as_str(), "S2");
    }

    #[test]
    fn fn_updater_mutates_slate_and_reports_ttl() {
        let u = FnUpdater::new("U1", |_ctx: &mut dyn Emitter, _ev: &Event, slate: &mut Slate| {
            slate.incr_counter(1);
        })
        .with_ttl_secs(3600);
        assert_eq!(u.name(), "U1");
        assert_eq!(u.slate_ttl_secs(), Some(3600));
        let mut em = VecEmitter::new();
        let mut slate = Slate::empty();
        let ev = Event::new("S2", 5, Key::from("walmart"), "checkin");
        u.update(&mut em, &ev, &mut slate);
        u.update(&mut em, &ev, &mut slate);
        assert_eq!(slate.counter(), 2);
        assert!(em.is_empty());
    }

    #[test]
    fn operators_are_object_safe() {
        // The engines hold `Arc<dyn Mapper>` / `Arc<dyn Updater>`.
        let m: std::sync::Arc<dyn Mapper> =
            std::sync::Arc::new(FnMapper::new("M", |_: &mut dyn Emitter, _: &Event| {}));
        let u: std::sync::Arc<dyn Updater> = std::sync::Arc::new(FnUpdater::new(
            "U",
            |_: &mut dyn Emitter, _: &Event, _: &mut Slate| {},
        ));
        assert_eq!(m.name(), "M");
        assert_eq!(u.name(), "U");
        assert_eq!(u.slate_ttl_secs(), None);
    }

    #[test]
    fn emitter_clear_reuses_buffer() {
        let mut em = VecEmitter::new();
        em.publish("S2", Key::from("a"), vec![1]);
        em.clear();
        assert!(em.is_empty());
        em.publish("S2", Key::from("b"), vec![2]);
        assert_eq!(em.len(), 1);
    }
}
