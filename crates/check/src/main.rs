//! `muppet-check` CLI.
//!
//! ```text
//! cargo run -p muppet-check -- lint            # lint the workspace
//! cargo run -p muppet-check -- lint --json     # machine-readable summary
//! cargo run -p muppet-check -- lint FILE...    # lint explicit files
//!                                              # (honors `// lint-fixture-as:` headers)
//! cargo run -p muppet-check -- lint --root DIR # lint another tree
//! ```
//!
//! Exit code 0 = clean, 1 = findings, 2 = usage/IO error.

use muppet_check::lint;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut args = args.into_iter().peekable();
    match args.next().as_deref() {
        Some("lint") => {}
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage: muppet-check lint [--json] [--root DIR] [FILE...]\n\nrules: {}",
                muppet_check::rules::RULES.join(", ")
            );
            return if args.len() == 0 { 2 } else { 0 };
        }
        Some(other) => {
            eprintln!("muppet-check: unknown command `{other}` (try `lint`)");
            return 2;
        }
    }
    let mut json = false;
    let mut root = lint::default_root();
    let mut files: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = dir.into(),
                None => {
                    eprintln!("muppet-check: --root needs a directory");
                    return 2;
                }
            },
            f => files.push(f.to_string()),
        }
    }
    let report =
        if files.is_empty() { lint::lint_workspace(&root) } else { lint::lint_files(&files) };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("muppet-check: {e}");
            return 2;
        }
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.findings.is_empty() {
        0
    } else {
        1
    }
}
