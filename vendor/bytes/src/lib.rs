//! Offline stand-in for the `bytes` crate: the API subset this workspace
//! uses, with the same semantics (cheap clones via shared ownership).
//!
//! The container build has no access to crates.io, so the workspace vendors
//! minimal local implementations of its few external dependencies. Only the
//! surface the muppet crates call is provided; behaviour matches the real
//! crate for that surface.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (const, allocation-free).
    pub const fn new() -> Bytes {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a `'static` slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(bytes))
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// The underlying bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Repr::Shared(Arc::from(v.into_boxed_slice())))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes(Repr::Static(s.as_bytes()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(s))
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl fmt::LowerHex for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.as_slice() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn static_and_string_sources() {
        let s = Bytes::from_static(b"hello");
        let t = Bytes::from(String::from("hello"));
        let u = Bytes::from("hello");
        assert_eq!(s, t);
        assert_eq!(t, u);
        assert_eq!(&*s, b"hello");
    }

    #[test]
    fn ordering_matches_slices() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from_static(b"abd");
        assert!(a < b);
    }
}
