//! Micro-benchmarks of the framework primitives: the structures on every
//! event's path (hashing, dispatch, queues, JSON, codecs).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use muppet_core::codec;
use muppet_core::event::Key;
use muppet_core::hash::fx64;
use muppet_core::json::Json;
use muppet_runtime::dispatch::{choose_queue, queue_pair};
use muppet_runtime::lru::LruMap;
use muppet_runtime::queue::EventQueue;
use muppet_slatestore::bloom::BloomFilter;
use muppet_slatestore::compress::{compress, decompress};
use muppet_slatestore::ring::ConsistentRing;
use muppet_workloads::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    let key = Key::from("user-123456789");
    g.bench_function("fx64_short_key", |b| b.iter(|| fx64(black_box(b"user-123456789"))));
    g.bench_function("route_hash", |b| b.iter(|| black_box(&key).route_hash("retailer-counter")));
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    let route = Key::from("hot").route_hash("U1");
    let in_flight = vec![None; 8];
    let lens = vec![3usize; 8];
    g.bench_function("queue_pair", |b| b.iter(|| queue_pair(black_box(route), 8)));
    g.bench_function("choose_queue_8_threads", |b| {
        b.iter(|| choose_queue(black_box(route), &in_flight, &lens, 8))
    });
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring");
    let ring = ConsistentRing::new(16, 64);
    g.bench_function("owner_16_nodes_64_vnodes", |b| b.iter(|| ring.owner(black_box(0xdead_beef))));
    g.bench_function("owners_rf3", |b| b.iter(|| ring.owners(black_box(0xdead_beef), 3)));
    g.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    g.throughput(Throughput::Elements(1));
    let q: EventQueue<u64> = EventQueue::new(1 << 20);
    g.bench_function("push_pop", |b| {
        b.iter(|| {
            q.push(black_box(42)).unwrap();
            q.try_pop().unwrap()
        })
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru");
    let mut lru = LruMap::new();
    for i in 0..10_000u64 {
        lru.insert(i, i);
    }
    let mut i = 0u64;
    g.bench_function("hit_10k_entries", |b| {
        b.iter(|| {
            i = (i + 7) % 10_000;
            *lru.get(&i).unwrap()
        })
    });
    g.finish();
}

fn bench_json(c: &mut Criterion) {
    let mut g = c.benchmark_group("json");
    let tweet = r#"{"id":123456,"user":"user-42","text":"synthetic tweet about tech #tech","topics":["tech"],"retweet_of":"user-7","urls":["http://example.com/page1"]}"#;
    g.throughput(Throughput::Bytes(tweet.len() as u64));
    g.bench_function("parse_tweet", |b| b.iter(|| Json::parse(black_box(tweet)).unwrap()));
    let value = Json::parse(tweet).unwrap();
    g.bench_function("serialize_tweet", |b| b.iter(|| black_box(&value).to_compact()));
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let mut buf = Vec::with_capacity(16);
    g.bench_function("varint_roundtrip", |b| {
        b.iter(|| {
            buf.clear();
            codec::put_varint(&mut buf, black_box(123_456_789));
            codec::get_varint(&buf).unwrap()
        })
    });
    let payload = vec![0xa5u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("crc32c_4k", |b| b.iter(|| codec::crc32c(black_box(&payload))));
    g.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress");
    let slate = br#"{"count": 42, "interests": ["deals","deals","deals","coupons","coupons"], "visits": {"mon":3,"tue":4,"wed":3,"thu":4,"fri":5}}"#.repeat(8);
    g.throughput(Throughput::Bytes(slate.len() as u64));
    g.bench_function("lzss_compress_json_slate", |b| b.iter(|| compress(black_box(&slate))));
    let packed = compress(&slate);
    g.bench_function("lzss_decompress_json_slate", |b| {
        b.iter(|| decompress(black_box(&packed)).unwrap())
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    let mut bf = BloomFilter::with_capacity(100_000, 0.01);
    for i in 0..100_000 {
        bf.insert(format!("row-{i}").as_bytes());
    }
    g.bench_function("may_contain_hit", |b| b.iter(|| bf.may_contain(black_box(b"row-55555"))));
    g.bench_function("may_contain_miss", |b| b.iter(|| bf.may_contain(black_box(b"absent-key"))));
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf");
    let z = Zipf::new(1_000_000, 1.1);
    let mut rng = StdRng::seed_from_u64(1);
    g.bench_function("sample_1m_universe", |b| b.iter(|| z.sample(&mut rng)));
    g.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_dispatch,
    bench_ring,
    bench_queue,
    bench_lru,
    bench_json,
    bench_codec,
    bench_compress,
    bench_bloom,
    bench_zipf
);
criterion_main!(benches);
