//! X1 — Figure 2: distributed execution. Events hash directly from worker
//! to worker; adding machines/workers scales throughput until the serial
//! source (the paper's special mapper M0 reading the input stream) becomes
//! the bottleneck.
//!
//! The updater carries a fixed per-event cost so compute, not framework
//! overhead, dominates — like the paper's real update functions.

use std::time::{Duration, Instant};

use muppet_core::event::Event;
use muppet_core::operator::{Emitter, FnMapper, FnUpdater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};

use crate::harness::keyed_events;
use crate::table::{rate, us, Table};
use crate::Scale;

fn workflow() -> Workflow {
    let mut b = Workflow::builder("figure-2");
    b.external_stream("S1");
    b.mapper_publishing("M", &["S1"], &["S2"]);
    b.updater("U", &["S2"]);
    b.build().unwrap()
}

fn ops(cost_us: u64) -> OperatorSet {
    OperatorSet::new()
        .mapper(FnMapper::new("M", |ctx: &mut dyn Emitter, ev: &Event| {
            ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
        }))
        .updater(FnUpdater::new("U", move |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
            let deadline = Instant::now() + Duration::from_micros(cost_us);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            slate.incr_counter(1);
        }))
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner("X1", "distributed execution: scaling with machines/workers", "Figure 2, §4.1");
    let n = scale.events(40_000);
    const COST_US: u64 = 50;

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host parallelism: {cores} cores — scaling saturates there\n");
    let mut table = Table::new([
        "machines × workers",
        "total workers",
        "events/s",
        "ideal events/s",
        "p99 latency",
    ]);
    let mut first_rate = None;
    for &(machines, workers) in &[(1usize, 1usize), (1, 2), (2, 1), (2, 2)] {
        let events = keyed_events("S1", n, 5_000, 0.0, 11);
        let cfg = EngineConfig {
            kind: EngineKind::Muppet2,
            machines,
            workers_per_machine: workers,
            queue_capacity: 1 << 16,
            ..EngineConfig::default()
        };
        let engine = std::sync::Arc::new(
            Engine::start(workflow(), ops(COST_US), cfg, None).expect("engine"),
        );
        let t0 = Instant::now();
        // Four source partitions (M0 can be sharded across input streams);
        // otherwise a single submit thread caps the measurement.
        let mut chunks: Vec<Vec<Event>> = vec![Vec::new(); 4];
        for (i, ev) in events.into_iter().enumerate() {
            chunks[i % 4].push(ev);
        }
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let engine = std::sync::Arc::clone(&engine);
                std::thread::spawn(move || {
                    for ev in chunk {
                        engine.submit(ev).expect("submit");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(engine.drain(Duration::from_secs(300)));
        let elapsed = t0.elapsed();
        let engine = std::sync::Arc::into_inner(engine).expect("sources joined");
        let stats = engine.shutdown();
        let total_workers = machines * workers;
        // Ideal speedup is capped by the host's real parallelism: the
        // simulated machines share this box's cores.
        let ideal = first_rate.get_or_insert(n as f64 / elapsed.as_secs_f64()).to_owned()
            * total_workers.min(cores) as f64;
        table.row([
            format!("{machines} × {workers}"),
            total_workers.to_string(),
            rate(n, elapsed),
            format!("{ideal:.0}"),
            us(stats.latency.p99_us),
        ]);
    }
    table.print();
    println!(
        "\nshape check: with a {COST_US}µs update cost, throughput scales with total workers\n\
         up to the host's {cores} cores (the simulated cluster shares them), then flattens;\n\
         the same counts land regardless of placement — events pass worker-to-worker by\n\
         hash with no master on the data path."
    );
}
