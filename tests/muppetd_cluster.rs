//! End-to-end: a 3-node loopback cluster of real `muppetd` OS processes
//! running the hot_topics app. Events ingested over HTTP on node A produce
//! slates readable over HTTP from node C; killing node B (SIGKILL)
//! triggers the §4.3 path — surviving nodes report, the master broadcasts,
//! and `/status` shows the failed machine everywhere.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Cluster {
    children: Vec<Option<Child>>,
    http_ports: Vec<u16>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn http(method: &str, port: u16, path: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(&mut reader, &mut body)?;
    Ok((code, body))
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while !cond() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    true
}

/// Spawn a 3-node cluster on probed-free ports. Ports are reserved by
/// binding port 0 immediately before each spawn attempt
/// (`loopback_ephemeral`), which is inherently racy against other
/// processes on the machine — so a node that dies or never answers
/// `/status` (its port was stolen between probe and bind) aborts the
/// attempt and the whole cluster retries on a fresh port set instead of
/// failing the test on a stale collision.
fn start_cluster() -> Cluster {
    const ATTEMPTS: usize = 3;
    for attempt in 1..=ATTEMPTS {
        match try_start_cluster() {
            Ok(cluster) => return cluster,
            Err(e) if attempt < ATTEMPTS => {
                eprintln!("cluster start attempt {attempt} failed ({e}); retrying on fresh ports");
            }
            Err(e) => panic!("cluster never became ready after {ATTEMPTS} attempts: {e}"),
        }
    }
    unreachable!()
}

fn try_start_cluster() -> Result<Cluster, String> {
    let topology = muppet::net::Topology::loopback_ephemeral(3, true)
        .map_err(|e| format!("cannot probe free ports: {e}"))?;
    let http_ports: Vec<u16> = topology.nodes.iter().map(|n| n.http_port).collect();
    let peers = topology
        .nodes
        .iter()
        .map(|n| format!("{}:{}:{}", n.host, n.port, n.http_port))
        .collect::<Vec<_>>()
        .join(",");
    let children = (0..3)
        .map(|node| {
            Some(
                Command::new(env!("CARGO_BIN_EXE_muppetd"))
                    .args(["--peers", &peers, "--node", &node.to_string(), "--app", "hot_topics"])
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("spawn muppetd"),
            )
        })
        .collect();
    // Cluster's Drop kills the children if any readiness check fails.
    let mut cluster = Cluster { children, http_ports };
    for node in 0..3 {
        let port = cluster.http_ports[node];
        let ready = wait_until(Duration::from_secs(20), || {
            // A child that exited (e.g. "cannot bind": the probed port
            // was stolen) will never answer; fail the attempt fast.
            if let Some(child) = cluster.children[node].as_mut() {
                if let Ok(Some(status)) = child.try_wait() {
                    eprintln!("muppetd node {node} exited early: {status}");
                    return true; // break the wait; the http check below fails
                }
            }
            matches!(http("GET", port, "/status", b""), Ok((200, _)))
        });
        if !ready || !matches!(http("GET", port, "/status", b""), Ok((200, _))) {
            return Err(format!("node {node} on http port {port} never became ready"));
        }
    }
    Ok(cluster)
}

#[test]
fn three_muppetd_processes_run_hot_topics_and_survive_a_kill() {
    let mut cluster = start_cluster();
    let [a, _b, c] = [cluster.http_ports[0], cluster.http_ports[1], cluster.http_ports[2]];

    // Ingest tweets on node A.
    let tweet = br#"{"topics":["sports"]}"#;
    for i in 0..60 {
        let (code, body) = http("POST", a, &format!("/submit/S1/tweet-{i}"), tweet).unwrap();
        assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    }

    // The per-⟨topic, minute⟩ slate becomes readable over HTTP from node C
    // (whichever machine owns it serves the read across the wire).
    assert!(
        wait_until(Duration::from_secs(20), || matches!(
            http("GET", c, "/slate/minute-counter/sports%200", b""),
            Ok((200, body)) if String::from_utf8_lossy(&body).contains("\"count\":60")
        )),
        "node C never served the cluster-wide slate read"
    );

    // Kill node B abruptly.
    let mut b_child = cluster.children[1].take().unwrap();
    b_child.kill().unwrap();
    b_child.wait().unwrap();

    // Keep ingesting on A until the §4.3 protocol has run: some sender
    // trips on B's corpse, reports to the master (node 0), and the
    // broadcast lands `1` in every survivor's failed set.
    let mut i = 60;
    let detected = wait_until(Duration::from_secs(30), || {
        for _ in 0..10 {
            let _ = http("POST", a, &format!("/submit/S1/tweet-{i}"), tweet);
            i += 1;
        }
        let failed_on = |port| match http("GET", port, "/status", b"") {
            Ok((200, body)) => String::from_utf8_lossy(&body).contains("\"failed_machines\":[1]"),
            _ => false,
        };
        failed_on(a) && failed_on(c)
    });
    assert!(detected, "failed_machines:[1] never appeared on both survivors");

    // The survivors still serve reads and accept events.
    let (code, _) = http("GET", c, "/keys/minute-counter", b"").unwrap();
    assert_eq!(code, 200);
    let (code, _) = http("POST", c, "/submit/S1/late-tweet", tweet).unwrap();
    assert_eq!(code, 200);
}
