//! The failure master (§4.3).
//!
//! Muppet deliberately keeps the master *off the data path*: "Muppet lets
//! the workers pass events directly to one another without going through
//! any master. (The master in Muppet is used for handling failures.)"
//!
//! Failure protocol: when worker A cannot reach worker B, A reports B's
//! machine to the master; the master broadcasts the failure so every
//! worker's hash ring drops the machine; the undeliverable event is lost
//! (and logged), not retried. Detection is driven by traffic, which the
//! paper argues beats periodic pings at streaming rates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use muppet_core::hash::FxHashSet;
use parking_lot::RwLock;

/// One failure report, for the experiment log.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Machine that was found unreachable.
    pub machine: usize,
    /// When the report arrived at the master.
    pub at: Instant,
}

/// The master: failure registry + broadcast.
#[derive(Debug, Default)]
pub struct Master {
    failed: RwLock<FxHashSet<usize>>,
    reports: RwLock<Vec<FailureReport>>,
    broadcasts: AtomicU64,
}

impl Master {
    /// A master with no known failures.
    pub fn new() -> Self {
        Master::default()
    }

    /// Report `machine` unreachable. Returns `true` if this was the first
    /// report (i.e. a broadcast happened); duplicate reports are absorbed.
    pub fn report_failure(&self, machine: usize) -> bool {
        {
            let failed = self.failed.read();
            if failed.contains(&machine) {
                return false;
            }
        }
        let mut failed = self.failed.write();
        if !failed.insert(machine) {
            return false;
        }
        self.reports.write().push(FailureReport { machine, at: Instant::now() });
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Record a failure learned from a master *broadcast* (as opposed to a
    /// locally observed one): updates the failed set without logging a
    /// report or counting a broadcast, so receiving nodes never re-fan the
    /// news out. Returns `true` if the machine was newly marked.
    pub fn mark_failed(&self, machine: usize) -> bool {
        self.failed.write().insert(machine)
    }

    /// Whether a machine is known-failed ("each worker keeps track of all
    /// failed machines" — centralized here; the shared read lock is the
    /// broadcast).
    pub fn is_failed(&self, machine: usize) -> bool {
        self.failed.read().contains(&machine)
    }

    /// Snapshot of failed machine ids.
    pub fn failed_machines(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.failed.read().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// All failure reports so far.
    pub fn reports(&self) -> Vec<FailureReport> {
        self.reports.read().clone()
    }

    /// Number of broadcasts issued (== distinct failed machines).
    pub fn broadcast_count(&self) -> u64 {
        self.broadcasts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_report_broadcasts_duplicates_absorbed() {
        let m = Master::new();
        assert!(!m.is_failed(3));
        assert!(m.report_failure(3));
        assert!(!m.report_failure(3), "duplicate report must not re-broadcast");
        assert!(m.is_failed(3));
        assert_eq!(m.broadcast_count(), 1);
        assert_eq!(m.reports().len(), 1);
        assert_eq!(m.failed_machines(), vec![3]);
    }

    #[test]
    fn multiple_failures_accumulate() {
        let m = Master::new();
        m.report_failure(1);
        m.report_failure(0);
        m.report_failure(2);
        assert_eq!(m.failed_machines(), vec![0, 1, 2]);
        assert_eq!(m.broadcast_count(), 3);
    }

    #[test]
    fn concurrent_reports_broadcast_exactly_once() {
        use std::sync::Arc;
        let m = Arc::new(Master::new());
        let winners: Vec<bool> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.report_failure(7))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        assert_eq!(winners.iter().filter(|&&w| w).count(), 1, "exactly one reporter wins");
        assert_eq!(m.broadcast_count(), 1);
    }
}
