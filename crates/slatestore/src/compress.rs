//! Slate compression.
//!
//! "Our applications often use JSON to encode slates ... so Muppet
//! compresses each slate before storing it in the key-value store" (§4.2).
//! JSON slates are repetitive (field names recur), so a small LZSS codec —
//! greedy hash-chain matching over a 32 KiB window — recovers most of that
//! redundancy without external dependencies.
//!
//! ## Format
//!
//! ```text
//! [0x4D 0x5A]  magic "MZ"
//! [mode: u8]   0 = stored raw, 1 = LZSS
//! [varint]     uncompressed length
//! payload      raw bytes (mode 0) or token stream (mode 1)
//! ```
//!
//! Token stream: groups of 8 items prefixed by a flag byte (bit i set ⟹
//! item i is a match). Literal = 1 byte. Match = 2-byte little-endian
//! `offset-1` (1..=32768) + 1 byte `length-MIN_MATCH` (match lengths
//! 4..=259). Incompressible inputs fall back to mode 0, costing only the
//! header.

use muppet_core::codec::{get_varint, put_varint};

use crate::types::{StoreError, StoreResult};

const MAGIC: [u8; 2] = [0x4d, 0x5a];
const MODE_RAW: u8 = 0;
const MODE_LZSS: u8 = 1;
const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const HASH_BITS: u32 = 15;
/// Bounded match-chain probes per position: caps worst-case compress time.
const MAX_CHAIN: usize = 32;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    ((v.wrapping_mul(0x9e37_79b1)) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`. Never fails; falls back to stored mode when LZSS does
/// not help.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&MAGIC);
    out.push(MODE_LZSS);
    put_varint(&mut out, input.len() as u64);
    let header_len = out.len();

    if input.len() >= MIN_MATCH {
        let mut head = vec![u32::MAX; 1 << HASH_BITS];
        let mut prev = vec![u32::MAX; input.len()];
        let mut pos = 0usize;
        let mut flag_at = usize::MAX;
        let mut flag_bit = 8u8;

        macro_rules! begin_item {
            () => {
                if flag_bit == 8 {
                    flag_at = out.len();
                    out.push(0);
                    flag_bit = 0;
                }
            };
        }

        while pos < input.len() {
            let mut best_len = 0usize;
            let mut best_off = 0usize;
            if pos + MIN_MATCH <= input.len() {
                let h = hash4(&input[pos..]);
                let mut candidate = head[h];
                let mut probes = 0;
                while candidate != u32::MAX && probes < MAX_CHAIN {
                    let c = candidate as usize;
                    if pos - c > WINDOW {
                        break;
                    }
                    let limit = (input.len() - pos).min(MAX_MATCH);
                    let mut len = 0usize;
                    while len < limit && input[c + len] == input[pos + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_off = pos - c;
                        if len == limit {
                            break;
                        }
                    }
                    candidate = prev[c];
                    probes += 1;
                }
                head[h] = pos as u32;
                prev[pos] = if candidate == u32::MAX && probes == 0 { u32::MAX } else { prev[pos] };
            }

            if best_len >= MIN_MATCH {
                begin_item!();
                out[flag_at] |= 1 << flag_bit;
                flag_bit += 1;
                let off = (best_off - 1) as u16;
                out.extend_from_slice(&off.to_le_bytes());
                out.push((best_len - MIN_MATCH) as u8);
                // Insert hash entries for covered positions so later
                // matches can reference inside this match.
                let end = pos + best_len;
                let mut p = pos + 1;
                while p < end && p + MIN_MATCH <= input.len() {
                    let h = hash4(&input[p..]);
                    prev[p] = head[h] as u32;
                    head[h] = p as u32;
                    p += 1;
                }
                pos = end;
            } else {
                begin_item!();
                flag_bit += 1;
                out.push(input[pos]);
                if pos + MIN_MATCH <= input.len() {
                    let h = hash4(&input[pos..]);
                    prev[pos] = head[h];
                    head[h] = pos as u32;
                }
                pos += 1;
            }
        }
    } else {
        // Inputs shorter than MIN_MATCH cannot contain matches: emit
        // literals under all-zero flag bytes.
        let mut flag_bit = 8u8;
        for &b in input {
            if flag_bit == 8 {
                out.push(0);
                flag_bit = 0;
            }
            flag_bit += 1;
            out.push(b);
        }
    }

    if out.len() >= input.len() + header_len {
        // Incompressible: store raw.
        out.truncate(2);
        out.push(MODE_RAW);
        put_varint(&mut out, input.len() as u64);
        out.extend_from_slice(input);
    }
    out
}

/// Decompress a buffer produced by [`compress`]. Fully bounds-checked.
pub fn decompress(data: &[u8]) -> StoreResult<Vec<u8>> {
    if data.len() < 3 || data[0..2] != MAGIC {
        return Err(StoreError::Compression("bad magic".into()));
    }
    let mode = data[2];
    let (expect_len, n) =
        get_varint(&data[3..]).ok_or_else(|| StoreError::Compression("bad length".into()))?;
    let expect_len = usize::try_from(expect_len)
        .map_err(|_| StoreError::Compression("length overflow".into()))?;
    let mut rest = &data[3 + n..];

    match mode {
        MODE_RAW => {
            if rest.len() != expect_len {
                return Err(StoreError::Compression("raw length mismatch".into()));
            }
            Ok(rest.to_vec())
        }
        MODE_LZSS => {
            let mut out = Vec::with_capacity(expect_len);
            while out.len() < expect_len {
                let Some((&flags, after)) = rest.split_first() else {
                    return Err(StoreError::Compression("truncated flags".into()));
                };
                rest = after;
                for bit in 0..8 {
                    if out.len() >= expect_len {
                        break;
                    }
                    if flags & (1 << bit) != 0 {
                        if rest.len() < 3 {
                            return Err(StoreError::Compression("truncated match".into()));
                        }
                        let off = u16::from_le_bytes([rest[0], rest[1]]) as usize + 1;
                        let len = rest[2] as usize + MIN_MATCH;
                        rest = &rest[3..];
                        if off > out.len() {
                            return Err(StoreError::Compression(
                                "match offset out of range".into(),
                            ));
                        }
                        let start = out.len() - off;
                        for i in 0..len {
                            let b = out[start + i];
                            out.push(b);
                        }
                    } else {
                        let Some((&b, after)) = rest.split_first() else {
                            return Err(StoreError::Compression("truncated literal".into()));
                        };
                        rest = after;
                        out.push(b);
                    }
                }
            }
            if out.len() != expect_len {
                return Err(StoreError::Compression("length mismatch after decode".into()));
            }
            Ok(out)
        }
        _ => Err(StoreError::Compression(format!("unknown mode {mode}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) -> Vec<u8> {
        let packed = compress(input);
        decompress(&packed).unwrap()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"a"), b"a");
        assert_eq!(roundtrip(b"abc"), b"abc");
        assert_eq!(roundtrip(b"abcd"), b"abcd");
    }

    #[test]
    fn repetitive_json_shrinks() {
        let slate = br#"{"count": 42, "last_seen": 123456, "interests": ["deals", "deals", "deals", "deals"], "count_by_day": {"mon": 1, "tue": 1, "wed": 1, "thu": 1}}"#;
        let packed = compress(slate);
        assert_eq!(decompress(&packed).unwrap(), slate);
        assert!(packed.len() < slate.len(), "{} !< {}", packed.len(), slate.len());
    }

    #[test]
    fn long_runs_compress_hard() {
        let input = vec![b'x'; 100_000];
        let packed = compress(&input);
        assert!(packed.len() < input.len() / 50, "run-length-ish input: {}", packed.len());
        assert_eq!(decompress(&packed).unwrap(), input);
    }

    #[test]
    fn incompressible_data_stores_raw_with_small_overhead() {
        // Pseudo-random bytes via a simple LCG (deterministic).
        let mut state = 0x12345678u64;
        let input: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let packed = compress(&input);
        assert!(packed.len() <= input.len() + 16, "raw fallback bounds expansion");
        assert_eq!(decompress(&packed).unwrap(), input);
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "aaaa..." forces matches that overlap their own output.
        let input = b"abababababababababababababab".to_vec();
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(b"").is_err());
        assert!(decompress(b"XY\x01\x05hello").is_err());
        assert!(decompress(&[0x4d, 0x5a, 9, 0]).is_err());
        // Valid header, truncated body.
        let mut packed = compress(b"hello world hello world hello world");
        packed.truncate(packed.len() - 3);
        assert!(decompress(&packed).is_err());
    }

    #[test]
    fn decompress_rejects_bad_match_offset() {
        // Hand-craft: MAGIC, LZSS, len=4, flags=0b1 (match), offset 999, len 0.
        let mut buf = vec![0x4d, 0x5a, MODE_LZSS];
        put_varint(&mut buf, 4);
        buf.push(0b1);
        buf.extend_from_slice(&998u16.to_le_bytes());
        buf.push(0);
        assert!(decompress(&buf).is_err());
    }

    #[test]
    fn large_window_reference() {
        // Two copies of a 20 KiB block: second copy should reference the first.
        let mut block = Vec::new();
        for i in 0..2500u32 {
            block.extend_from_slice(format!("retailer-{i:04},").as_bytes());
        }
        let mut input = block.clone();
        input.extend_from_slice(&block);
        let packed = compress(&input);
        assert!(packed.len() < input.len() * 2 / 3);
        assert_eq!(decompress(&packed).unwrap(), input);
    }
}
