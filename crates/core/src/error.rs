//! Error type shared by the MapUpdate model crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by workflow construction, configuration parsing, and
/// executors.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A workflow definition is inconsistent (duplicate names, unknown
    /// streams, no external input, ...).
    Workflow(String),
    /// An application configuration file could not be interpreted.
    Config(String),
    /// JSON text could not be parsed. Carries offset and message.
    Json { offset: usize, message: String },
    /// An MBF binary payload could not be encoded or decoded. Carries
    /// offset and message.
    Mbf { offset: usize, message: String },
    /// An event referenced a stream that the workflow does not declare.
    UnknownStream(String),
    /// An operator name was not registered with the executor.
    UnknownOperator(String),
    /// An event was pushed into a non-external stream from outside, or an
    /// operator published to an external stream (the paper assumes "no
    /// mappers nor updaters can emit events into such streams", §5).
    ExternalStreamViolation(String),
    /// A cyclic workflow exceeded the executor's step budget. The paper's
    /// model permits cycles; the reference executor bounds them so tests
    /// terminate.
    LoopBudgetExceeded { steps: u64 },
    /// An operator implementation was registered under a name that does not
    /// match the workflow declaration.
    OperatorMismatch { expected: String, got: String },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Workflow(msg) => write!(f, "workflow error: {msg}"),
            Error::Config(msg) => write!(f, "config error: {msg}"),
            Error::Json { offset, message } => {
                write!(f, "json error at byte {offset}: {message}")
            }
            Error::Mbf { offset, message } => {
                write!(f, "mbf error at byte {offset}: {message}")
            }
            Error::UnknownStream(name) => write!(f, "unknown stream: {name}"),
            Error::UnknownOperator(name) => write!(f, "unknown operator: {name}"),
            Error::ExternalStreamViolation(name) => {
                write!(f, "illegal publish/push on stream: {name}")
            }
            Error::LoopBudgetExceeded { steps } => {
                write!(f, "cyclic workflow exceeded the step budget of {steps}")
            }
            Error::OperatorMismatch { expected, got } => {
                write!(
                    f,
                    "operator name mismatch: workflow declares {expected:?}, impl says {got:?}"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::Workflow("x".into()), "workflow error: x"),
            (Error::Config("y".into()), "config error: y"),
            (Error::Json { offset: 3, message: "bad".into() }, "json error at byte 3: bad"),
            (Error::UnknownStream("S9".into()), "unknown stream: S9"),
            (Error::UnknownOperator("U9".into()), "unknown operator: U9"),
            (Error::ExternalStreamViolation("S1".into()), "illegal publish/push on stream: S1"),
            (
                Error::LoopBudgetExceeded { steps: 7 },
                "cyclic workflow exceeded the step budget of 7",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_std_error<E: std::error::Error>(_e: E) {}
        assert_std_error(Error::Workflow("w".into()));
    }
}
