//! The `lock-audit` runtime: lock-order graph, held-lock stacks, and
//! IO-under-lock detection. Compiled only under the `lock-audit` feature;
//! the sibling no-op module in `sync/mod.rs` serves default builds.
//!
//! Every lock constructed through [`super::Mutex`]/[`super::RwLock`] is
//! classed by its construction site (`file:line:col`, captured via
//! `#[track_caller]`). Each acquisition:
//!
//! 1. fires the schedule-perturbation hook, if installed;
//! 2. records a ⟨held-class → acquired-class⟩ edge for every lock the
//!    thread currently holds, with the acquiring backtrace sampled the
//!    first time each edge appears;
//! 3. runs cycle detection over the global order graph — a cycle means
//!    two threads can acquire the same classes in opposite orders, i.e. a
//!    potential deadlock — and records any cycle as a violation carrying
//!    the sampled backtraces of every edge on the path;
//! 4. pushes the class onto the thread's held stack (popped on guard
//!    drop, released/re-pushed around condvar waits).
//!
//! Known limitations, by design: acquisitions of two locks from the same
//! construction site (e.g. two shards of one sharded cache) are exempt
//! from cycle detection — same-class nesting needs a rank annotation
//! lockdep-style, which no current code path requires; and read/write
//! lock modes are not distinguished in the graph (a read-read "cycle"
//! is reported even though it could not deadlock alone — treat it as an
//! ordering smell, not a false positive to suppress).

use core::panic::Location;
use std::backtrace::Backtrace;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex as StdMutex;

/// How a lock was acquired. Recorded for diagnostics; the order graph
/// does not currently distinguish modes (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// `Mutex::lock` / `Mutex::try_lock`.
    Mutex,
    /// `RwLock::read`.
    RwRead,
    /// `RwLock::write`.
    RwWrite,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Mutex => "mutex",
            Kind::RwRead => "rwlock.read",
            Kind::RwWrite => "rwlock.write",
        }
    }
}

/// A lock class: the construction site of the lock.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Class {
    file: &'static str,
    line: u32,
    col: u32,
}

impl Class {
    fn of(site: &'static Location<'static>) -> Class {
        Class { file: site.file(), line: site.line(), col: site.column() }
    }

    fn name(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

struct HeldEntry {
    class: Class,
    kind: Kind,
    /// Distinguishes this acquisition from other live guards of the same
    /// class on this thread, so out-of-order guard drops pop the right
    /// entry.
    token_id: u64,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
    static IO_ALLOWED_DEPTH: Cell<u32> = const { Cell::new(0) };
}

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// First-seen sample of one order-graph edge.
struct EdgeSample {
    thread: String,
    backtrace: String,
}

#[derive(Default)]
struct Graph {
    /// holder class → (acquired class → first-seen sample).
    edges: HashMap<Class, HashMap<Class, EdgeSample>>,
}

impl Graph {
    /// Is `to` reachable from `from` over recorded edges?
    fn reaches(&self, from: Class, to: Class) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if let Some(next) = self.edges.get(&node) {
                for &n in next.keys() {
                    if !seen.contains(&n) {
                        seen.push(n);
                        stack.push(n);
                    }
                }
            }
        }
        false
    }

    /// One shortest edge path from `from` to `to` (for cycle reports).
    fn path(&self, from: Class, to: Class) -> Vec<(Class, Class)> {
        let mut queue = std::collections::VecDeque::from([from]);
        let mut prev: HashMap<Class, Class> = HashMap::new();
        while let Some(node) = queue.pop_front() {
            if node == to {
                break;
            }
            if let Some(next) = self.edges.get(&node) {
                for &n in next.keys() {
                    if n != from && !prev.contains_key(&n) {
                        prev.insert(n, node);
                        queue.push_back(n);
                    }
                }
            }
        }
        let mut hops = Vec::new();
        let mut at = to;
        while let Some(&p) = prev.get(&at) {
            hops.push((p, at));
            at = p;
        }
        hops.reverse();
        hops
    }
}

static GRAPH: StdMutex<Option<Graph>> = StdMutex::new(None);
static ORDER_CYCLES: StdMutex<Vec<String>> = StdMutex::new(Vec::new());
static IO_EVENTS: StdMutex<Vec<String>> = StdMutex::new(Vec::new());
static SCHED_HOOK: AtomicUsize = AtomicUsize::new(0);

fn lock_graph() -> std::sync::MutexGuard<'static, Option<Graph>> {
    // The audit's own lock is a raw std mutex on purpose: routing it
    // through the shim would recurse into the audit.
    GRAPH.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether the audit layer is compiled in.
pub const fn enabled() -> bool {
    true
}

/// Install (or clear, with `None`) the schedule-perturbation hook fired
/// before every shim acquisition. Used by the `muppet-check` interleaving
/// harness to jitter schedules through real lock sites.
pub fn set_sched_hook(hook: Option<fn()>) {
    SCHED_HOOK.store(hook.map_or(0, |f| f as usize), Ordering::SeqCst);
}

/// RAII token for one live acquisition; dropping pops the held-stack
/// entry it pushed.
pub(super) struct HeldToken {
    id: u64,
}

impl HeldToken {
    /// Pop the held entry for the duration of a condvar wait (the mutex
    /// is released while waiting). The returned value re-pushes on
    /// [`WaitReacquire::reacquired`].
    pub(super) fn release_for_wait(&mut self) -> WaitReacquire {
        let entry = remove_entry(self.id);
        WaitReacquire { class_kind: entry.map(|e| (e.class, e.kind)) }
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        remove_entry(self.id);
    }
}

/// Proof that a condvar wait released the mutex; converts back into a
/// [`HeldToken`] when the wait returns and the mutex is re-held.
pub(super) struct WaitReacquire {
    class_kind: Option<(Class, Kind)>,
}

impl WaitReacquire {
    pub(super) fn reacquired(self) -> HeldToken {
        match self.class_kind {
            // Re-entering the mutex after a wait is a real acquisition:
            // run the full order check again.
            Some((class, kind)) => acquire_class(class, kind),
            None => HeldToken { id: 0 },
        }
    }
}

fn remove_entry(id: u64) -> Option<HeldEntry> {
    if id == 0 {
        return None;
    }
    HELD.try_with(|held| {
        let mut held = held.borrow_mut();
        let at = held.iter().rposition(|e| e.token_id == id)?;
        Some(held.remove(at))
    })
    .ok()
    .flatten()
}

/// The acquisition probe called by every shim lock method.
pub(super) fn on_acquire(site: &'static Location<'static>, kind: Kind) -> HeldToken {
    let hook = SCHED_HOOK.load(Ordering::Relaxed);
    if hook != 0 {
        // SAFETY: only `set_sched_hook` stores here, and it stores either
        // 0 or a valid `fn()` pointer.
        let hook: fn() = unsafe { std::mem::transmute(hook) };
        hook();
    }
    acquire_class(Class::of(site), kind)
}

fn acquire_class(class: Class, kind: Kind) -> HeldToken {
    let holders: Vec<Class> =
        HELD.try_with(|held| held.borrow().iter().map(|e| e.class).collect()).unwrap_or_default();
    for holder in holders {
        if holder != class {
            record_edge(holder, class, kind);
        }
    }
    let id = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    let pushed = HELD
        .try_with(|held| {
            held.borrow_mut().push(HeldEntry { class, kind, token_id: id });
        })
        .is_ok();
    HeldToken { id: if pushed { id } else { 0 } }
}

fn record_edge(holder: Class, acquired: Class, kind: Kind) {
    let mut graph = lock_graph();
    let graph = graph.get_or_insert_with(Graph::default);
    let out = graph.edges.entry(holder).or_default();
    if out.contains_key(&acquired) {
        return; // steady state: edge already known, nothing to do
    }
    out.insert(
        acquired,
        EdgeSample {
            thread: std::thread::current().name().unwrap_or("<unnamed>").to_string(),
            backtrace: format!("{}", Backtrace::force_capture()),
        },
    );
    // The new edge holder→acquired closes a cycle iff holder was already
    // reachable from acquired.
    if graph.reaches(acquired, holder) {
        let mut report = format!(
            "lock-order cycle: {} ({}) acquired while holding {} — reverse path exists:\n",
            acquired.name(),
            kind.label(),
            holder.name(),
        );
        let mut hops = graph.path(acquired, holder);
        hops.push((holder, acquired));
        for (from, to) in hops {
            let sample = graph.edges.get(&from).and_then(|m| m.get(&to));
            let _ = writeln!(report, "  {} -> {}", from.name(), to.name());
            if let Some(s) = sample {
                let _ = writeln!(
                    report,
                    "    first seen on thread `{}`; acquisition backtrace:\n{}",
                    s.thread,
                    indent(&s.backtrace, 6)
                );
            }
        }
        drop(graph);
        ORDER_CYCLES.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(report.clone());
        eprintln!("[lock-audit] {report}");
    }
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines().map(|l| format!("{pad}{l}\n")).collect()
}

/// Record a blocking-IO call (fsync and friends). If the calling thread
/// holds any shim lock and the site is not wrapped in [`io_allowed`], an
/// IO-under-lock violation is recorded with the held classes and the
/// calling backtrace.
pub fn blocking_io(what: &'static str) {
    if IO_ALLOWED_DEPTH.with(|d| d.get()) > 0 {
        return;
    }
    let held: Vec<String> = HELD
        .try_with(|held| held.borrow().iter().map(|e| e.class.name()).collect())
        .unwrap_or_default();
    if held.is_empty() {
        return;
    }
    let report = format!(
        "{what} while holding [{}] on thread `{}`; backtrace:\n{}",
        held.join(", "),
        std::thread::current().name().unwrap_or("<unnamed>"),
        indent(&format!("{}", Backtrace::force_capture()), 4)
    );
    IO_EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(report.clone());
    eprintln!("[lock-audit] io-under-lock: {report}");
}

/// Run `f` with IO-under-lock reporting suppressed — for sites where
/// holding a lock across IO is the design (e.g. group commit, where the
/// WAL writer lock IS the commit serialization point).
pub fn io_allowed<R>(f: impl FnOnce() -> R) -> R {
    IO_ALLOWED_DEPTH.with(|d| d.set(d.get() + 1));
    let result = f();
    IO_ALLOWED_DEPTH.with(|d| d.set(d.get() - 1));
    result
}

/// Every lock-order cycle observed since start (or [`reset`]).
pub fn order_cycles() -> Vec<String> {
    ORDER_CYCLES.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Every IO-under-lock event observed since start (or [`reset`]).
pub fn io_under_lock_events() -> Vec<String> {
    IO_EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Number of distinct ⟨holder → acquired⟩ edges recorded so far.
pub fn edge_count() -> usize {
    lock_graph().as_ref().map_or(0, |g| g.edges.values().map(|m| m.len()).sum())
}

/// Clear the order graph and all recorded violations. Test hygiene only:
/// audit state is global, so tests that manufacture violations on purpose
/// should run in their own process (integration-test binary) or reset
/// before asserting.
pub fn reset() {
    *lock_graph() = None;
    ORDER_CYCLES.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    IO_EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
}

#[cfg(test)]
mod tests {
    use super::super::{Condvar, Mutex};
    use super::*;
    use std::sync::Arc;

    // These tests mutate global audit state; they run in the same binary
    // as the rest of muppet-core's unit tests, so they only ever ADD
    // manufactured state after asserting on deltas they themselves cause.

    #[test]
    fn inversion_is_reported_as_cycle() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let before = order_cycles().len();
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a -> b
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a: closes the cycle
        }
        let cycles = order_cycles();
        assert!(cycles.len() > before, "inversion must be reported");
        assert!(cycles.last().unwrap().contains("lock-order cycle"));
    }

    #[test]
    fn consistent_order_is_clean_and_io_probe_fires_only_under_lock() {
        let a = Mutex::new(0u32);
        let before_cycles = order_cycles().len();
        let before_io = io_under_lock_events().len();

        blocking_io("fsync"); // no lock held: not an event
        assert_eq!(io_under_lock_events().len(), before_io);

        {
            let _g = a.lock();
            io_allowed(|| blocking_io("fsync")); // annotated: not an event
            assert_eq!(io_under_lock_events().len(), before_io);
            blocking_io("fsync"); // held and unannotated: an event
        }
        let events = io_under_lock_events();
        assert_eq!(events.len(), before_io + 1);
        assert!(events.last().unwrap().contains("fsync while holding"));
        assert_eq!(order_cycles().len(), before_cycles, "no inversion here");
    }

    #[test]
    fn condvar_wait_releases_and_restores_held_entry() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let mut g = pair2.0.lock();
            while !*g {
                pair2.1.wait(&mut g);
            }
            // After the wait returns the guard is live again: an IO call
            // must register as under-lock.
            let before = io_under_lock_events().len();
            blocking_io("write_all");
            assert_eq!(io_under_lock_events().len(), before + 1);
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let mut g = pair.0.lock();
            *g = true;
            pair.1.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn same_class_nesting_is_exempt() {
        // Two locks from one construction site (a sharded structure).
        let shards: Vec<Mutex<u32>> = (0..2).map(Mutex::new).collect();
        let before = order_cycles().len();
        {
            let _a = shards[0].lock();
            let _b = shards[1].lock();
        }
        {
            let _b = shards[1].lock();
            let _a = shards[0].lock();
        }
        assert_eq!(order_cycles().len(), before, "same-class nesting is not a cycle");
    }
}
