//! Filesystem test/bench utilities (no external tempdir crate).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A uniquely-named directory under the system temp dir, removed on drop.
///
/// Used by tests and benches across the workspace; deliberately public.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

impl TempDir {
    /// Create `muppet-<prefix>-<pid>-<n>` under the system temp directory.
    pub fn new(prefix: &str) -> std::io::Result<TempDir> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("muppet-{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let kept_path;
        {
            let dir = TempDir::new("util-test").unwrap();
            kept_path = dir.path().to_path_buf();
            assert!(kept_path.is_dir());
            std::fs::write(dir.file("x.txt"), b"hello").unwrap();
            assert!(dir.file("x.txt").is_file());
        }
        assert!(!kept_path.exists(), "dropped TempDir removes the tree");
    }

    #[test]
    fn unique_names() {
        let a = TempDir::new("uniq").unwrap();
        let b = TempDir::new("uniq").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
