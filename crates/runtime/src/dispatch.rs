//! Two-choice queue dispatch — the core Muppet 2.0 scheduling idea (§4.5).
//!
//! > "When an event arrives at the machine, it is hashed by event key and
//! > destination updater function into a primary event queue and a
//! > secondary event queue. If the thread for either queue is already
//! > processing this event key for this update function, then the event is
//! > placed in the corresponding queue. Otherwise, the event is placed in
//! > the primary queue unless the secondary queue is significantly shorter,
//! > in which case the event is placed in the secondary queue instead."
//!
//! Consequences the paper calls out, which tests below assert:
//! * an event considers at most **two** queues (bounded lock contention);
//! * events of one ⟨key, updater⟩ never scatter beyond two threads, so
//!   slate contention is **limited to at most two workers per slate**;
//! * a hot primary queue sheds load to the secondary.
//!
//! The decision function is pure: engines feed it hashes, racy length
//! hints, and the per-thread in-flight route markers.

/// Identifies a route: the hash of ⟨event key, destination function⟩.
/// Threads advertise the route they are currently processing.
pub type RouteHash = u64;

/// The primary and secondary queue indices for a route on a machine with
/// `threads` workers. Distinct whenever `threads > 1`.
#[inline]
pub fn queue_pair(route: RouteHash, threads: usize) -> (usize, usize) {
    debug_assert!(threads > 0);
    let primary = (route % threads as u64) as usize;
    if threads == 1 {
        return (0, 0);
    }
    // Derive the secondary from independent bits; shift to the next slot if
    // it collides with the primary.
    let mut secondary = ((route >> 32) % threads as u64) as usize;
    if secondary == primary {
        secondary = (secondary + 1) % threads;
    }
    (primary, secondary)
}

/// How much shorter the secondary must be to count as "significantly
/// shorter" (paper leaves the constant unspecified): strictly less than
/// half the primary's length, with a small absolute slack so tiny queues
/// stay on the primary.
const SIGNIFICANT_FACTOR: usize = 2;
const SIGNIFICANT_SLACK: usize = 4;

/// Decide the destination queue for an event.
///
/// * `route` — hash of ⟨key, destination function⟩;
/// * `in_flight` — per-thread marker of the route currently being processed
///   (engines keep these up to date);
/// * `queue_lens` — racy length hints, indexed by thread.
#[inline]
pub fn choose_queue(
    route: RouteHash,
    in_flight: &[Option<RouteHash>],
    queue_lens: &[usize],
    threads: usize,
) -> usize {
    let (primary, secondary) = queue_pair(route, threads);
    choose_between(
        route,
        primary,
        secondary,
        in_flight[primary],
        in_flight[secondary],
        queue_lens[primary],
        queue_lens[secondary],
    )
}

/// The core decision, taking only the two candidate queues' state. The
/// engine's hot path calls this directly (no slices, no allocation): only
/// the primary and secondary ever matter.
#[inline]
pub fn choose_between(
    route: RouteHash,
    primary: usize,
    secondary: usize,
    in_flight_primary: Option<RouteHash>,
    in_flight_secondary: Option<RouteHash>,
    len_primary: usize,
    len_secondary: usize,
) -> usize {
    // Rule 1: stick with a thread already processing this route — keeps
    // per-route ordering tighter and avoids a third slate contender.
    if in_flight_primary == Some(route) {
        return primary;
    }
    if secondary != primary && in_flight_secondary == Some(route) {
        return secondary;
    }
    // Rule 2: primary unless the secondary is significantly shorter.
    if secondary != primary && len_primary > SIGNIFICANT_FACTOR * len_secondary + SIGNIFICANT_SLACK
    {
        secondary
    } else {
        primary
    }
}

/// How many subslates a split hot key fans out across. Subkeys route
/// through the ordinary rings, so eight ways saturates small clusters
/// without flooding large ones with near-empty subslates.
pub const SPLIT_WAYS: usize = 8;

/// Byte separating a split subkey's base from its shard suffix: ASCII
/// unit separator, chosen because no app-level key format in this repo
/// uses control bytes (and a base key that *did* contain it still
/// round-trips — only keys carrying the exact 3-byte suffix pattern
/// parse as subkeys).
pub const SPLIT_SEP: u8 = 0x1f;

/// The subkey a split hot key's updates fan out to for `shard` (in
/// `0..SPLIT_WAYS`): base bytes + `\x1f` + `s` + shard digit. Subkeys
/// hash independently, so the ring spreads them across machines and the
/// two-choice dispatcher across worker queues.
pub fn split_subkey(base: &muppet_core::event::Key, shard: usize) -> muppet_core::event::Key {
    debug_assert!(shard < SPLIT_WAYS && SPLIT_WAYS <= 10);
    let bytes = base.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() + 3);
    out.extend_from_slice(bytes);
    out.push(SPLIT_SEP);
    out.push(b's');
    out.push(b'0' + shard as u8);
    muppet_core::event::Key::from(out)
}

/// The base key of a split subkey, `None` when `key` is not a subkey.
pub fn split_base_of(key: &muppet_core::event::Key) -> Option<muppet_core::event::Key> {
    let bytes = key.as_bytes();
    let n = bytes.len();
    if n < 3 || bytes[n - 3] != SPLIT_SEP || bytes[n - 2] != b's' {
        return None;
    }
    let digit = bytes[n - 1];
    if !(b'0'..b'0' + SPLIT_WAYS as u8).contains(&digit) {
        return None;
    }
    Some(muppet_core::event::Key::from(bytes[..n - 3].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::event::Key;

    fn route(key: &str, updater: &str) -> RouteHash {
        Key::from(key).route_hash(updater)
    }

    #[test]
    fn pair_is_deterministic_and_distinct() {
        for threads in [2usize, 3, 8, 16] {
            for i in 0..200u64 {
                let r = route(&format!("k{i}"), "U1");
                let (p, s) = queue_pair(r, threads);
                assert_eq!((p, s), queue_pair(r, threads));
                assert!(p < threads && s < threads);
                assert_ne!(p, s, "threads={threads} route={r}");
            }
        }
    }

    #[test]
    fn single_thread_machine_degenerates() {
        let r = route("k", "U");
        assert_eq!(queue_pair(r, 1), (0, 0));
        assert_eq!(choose_queue(r, &[None], &[99], 1), 0);
    }

    #[test]
    fn idle_balanced_queues_choose_primary() {
        let r = route("walmart", "U1");
        let (p, _) = queue_pair(r, 4);
        let lens = [3usize, 3, 3, 3];
        assert_eq!(choose_queue(r, &[None; 4], &lens, 4), p);
    }

    #[test]
    fn hot_primary_sheds_to_secondary() {
        let r = route("bestbuy", "U1");
        let (p, s) = queue_pair(r, 4);
        let mut lens = [0usize; 4];
        lens[p] = 100; // hot
        lens[s] = 2;
        assert_eq!(choose_queue(r, &[None; 4], &lens, 4), s, "hotspot relief (§4.5)");
    }

    #[test]
    fn mildly_longer_primary_is_not_significant() {
        let r = route("k", "U1");
        let (p, s) = queue_pair(r, 4);
        let mut lens = [0usize; 4];
        lens[p] = 6;
        lens[s] = 2; // 6 <= 2*2+4 → not "significantly shorter"
        assert_eq!(choose_queue(r, &[None; 4], &lens, 4), p);
    }

    #[test]
    fn in_flight_route_pins_the_queue() {
        let r = route("hot-key", "U1");
        let (p, s) = queue_pair(r, 4);
        // Secondary is processing this exact route: go there even though
        // the primary is empty.
        let mut in_flight = [None; 4];
        in_flight[s] = Some(r);
        let lens = [0usize; 4];
        assert_eq!(choose_queue(r, &in_flight, &lens, 4), s);
        // Primary processing it wins over secondary.
        in_flight[p] = Some(r);
        assert_eq!(choose_queue(r, &in_flight, &lens, 4), p);
    }

    #[test]
    fn other_routes_in_flight_are_ignored() {
        let r = route("k1", "U1");
        let other = route("k2", "U1");
        let (p, _) = queue_pair(r, 4);
        let mut in_flight = [None; 4];
        for slot in in_flight.iter_mut() {
            *slot = Some(other);
        }
        let lens = [1usize; 4];
        assert_eq!(choose_queue(r, &in_flight, &lens, 4), p);
    }

    #[test]
    fn at_most_two_queues_ever_receive_a_route() {
        // Simulate many dispatch decisions under adversarial queue lengths
        // and in-flight states; the chosen queue must always be p or s.
        let r = route("contended", "U9");
        let threads = 8;
        let (p, s) = queue_pair(r, threads);
        let mut seen = std::collections::HashSet::new();
        for trial in 0..1000u64 {
            let lens: Vec<usize> =
                (0..threads).map(|i| ((trial * 31 + i as u64 * 7) % 50) as usize).collect();
            let mut in_flight = vec![None; threads];
            if trial % 3 == 0 {
                in_flight[(trial as usize) % threads] = Some(route("decoy", "U9"));
            }
            if trial % 5 == 0 {
                in_flight[s] = Some(r);
            }
            seen.insert(choose_queue(r, &in_flight, &lens, threads));
        }
        assert!(
            seen.is_subset(&[p, s].into_iter().collect()),
            "saw {seen:?}, expected ⊆ {{{p},{s}}}"
        );
        // The paper's guarantee: ≤ 2 workers contend for one slate.
        assert!(seen.len() <= 2);
    }

    #[test]
    fn different_updaters_route_independently() {
        // §3: slates are per ⟨updater, key⟩; routing must separate them.
        let r1 = route("k", "U1");
        let r2 = route("k", "U2");
        assert_ne!(r1, r2);
    }

    #[test]
    fn split_subkeys_roundtrip_and_stay_distinct() {
        let base = Key::from("walmart");
        let mut routes = std::collections::HashSet::new();
        for shard in 0..SPLIT_WAYS {
            let sub = split_subkey(&base, shard);
            assert_eq!(split_base_of(&sub), Some(base.clone()), "subkey must recover its base");
            routes.insert(route(std::str::from_utf8(sub.as_bytes()).unwrap_or(""), "U1"));
        }
        assert_eq!(routes.len(), SPLIT_WAYS, "subkeys must hash to distinct routes");
        assert_eq!(split_base_of(&base), None, "a plain key is not a subkey");
        assert_eq!(split_base_of(&Key::from("")), None);
        // A key that merely ends in 's<digit>' without the separator is
        // not a subkey.
        assert_eq!(split_base_of(&Key::from("logs0")), None);
    }
}
