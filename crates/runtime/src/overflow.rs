//! Queue-overflow policies (§4.3, §5).
//!
//! When worker A cannot place an event on worker B's full queue, "A has to
//! invoke a queue overflow mechanism", which can:
//!
//! 1. **drop** the incoming events (logged for later processing/debugging);
//! 2. redirect them to an **overflow stream** "whose recipients can process
//!    such events ... for example by substituting expensive operations ...
//!    with approximate operations that are cheaper to execute";
//! 3. **slow down the pace of passing events** — implemented as *source
//!    throttling* only (§5): internal throttling "can quickly introduce
//!    deadlocks" in cyclic workflows, so only external stream intake
//!    blocks; internal events force through.

/// What to do when a destination queue is full.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Drop the event and log it (the paper's default posture: "low latency
    /// is far more important ... failing to process some tweets is
    /// acceptable").
    #[default]
    DropAndLog,
    /// Publish the event into the named (degraded-service) stream instead.
    /// If the overflow stream's queues are also full, the event drops.
    OverflowStream(String),
    /// Block external `submit` calls while queues are full; force internal
    /// events through regardless (deadlock-free by §5's argument).
    SourceThrottle,
}

/// The action an engine should take for one overflowing event. Produced by
/// [`OverflowPolicy::decide`]; kept as data so engines and tests share the
/// exact decision logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverflowAction {
    /// Count and drop.
    Drop,
    /// Re-route to this stream.
    Redirect(String),
    /// Enqueue beyond capacity (internal event under throttling).
    ForceThrough,
    /// Block the producer until space frees (external event under
    /// throttling).
    BlockProducer,
}

impl OverflowPolicy {
    /// Decide the action for an event that found its queue full.
    /// `external` marks events entering from outside (vs. operator
    /// emissions); `already_redirected` guards against redirect loops when
    /// the overflow stream itself overflows.
    pub fn decide(&self, external: bool, already_redirected: bool) -> OverflowAction {
        match self {
            OverflowPolicy::DropAndLog => OverflowAction::Drop,
            OverflowPolicy::OverflowStream(stream) => {
                if already_redirected {
                    OverflowAction::Drop
                } else {
                    OverflowAction::Redirect(stream.clone())
                }
            }
            OverflowPolicy::SourceThrottle => {
                if external {
                    OverflowAction::BlockProducer
                } else {
                    OverflowAction::ForceThrough
                }
            }
        }
    }
}

/// A bounded log of dropped events for "later processing and debugging"
/// (§4.3). Keeps the most recent `capacity` descriptions.
#[derive(Debug)]
pub struct DropLog {
    entries: muppet_core::sync::Mutex<std::collections::VecDeque<String>>,
    capacity: usize,
    total: std::sync::atomic::AtomicU64,
}

impl DropLog {
    /// A log retaining up to `capacity` recent drops.
    pub fn new(capacity: usize) -> Self {
        DropLog {
            entries: muppet_core::sync::Mutex::new(std::collections::VecDeque::new()),
            capacity,
            total: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Record a dropped event.
    pub fn log(&self, description: String) {
        self.total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut entries = self.entries.lock();
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(description);
    }

    /// Total drops ever recorded.
    pub fn total(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Snapshot of the retained (most recent) drop descriptions.
    pub fn recent(&self) -> Vec<String> {
        self.entries.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_policy_always_drops() {
        let p = OverflowPolicy::DropAndLog;
        assert_eq!(p.decide(true, false), OverflowAction::Drop);
        assert_eq!(p.decide(false, true), OverflowAction::Drop);
    }

    #[test]
    fn overflow_stream_redirects_once() {
        let p = OverflowPolicy::OverflowStream("S_degraded".into());
        assert_eq!(p.decide(false, false), OverflowAction::Redirect("S_degraded".into()));
        // The overflow stream itself overflowed: no infinite loop.
        assert_eq!(p.decide(false, true), OverflowAction::Drop);
    }

    #[test]
    fn throttle_blocks_only_external_sources() {
        let p = OverflowPolicy::SourceThrottle;
        assert_eq!(p.decide(true, false), OverflowAction::BlockProducer);
        // Internal events force through — §5's deadlock argument: an
        // updater emitting 10k events into its own input must not block on
        // itself.
        assert_eq!(p.decide(false, false), OverflowAction::ForceThrough);
    }

    #[test]
    fn drop_log_retains_recent_and_counts_all() {
        let log = DropLog::new(3);
        for i in 0..10 {
            log.log(format!("event-{i}"));
        }
        assert_eq!(log.total(), 10);
        assert_eq!(log.recent(), vec!["event-7", "event-8", "event-9"]);
    }

    #[test]
    fn default_policy_is_drop() {
        assert_eq!(OverflowPolicy::default(), OverflowPolicy::DropAndLog);
    }
}
