//! A synthetic web-server request log.
//!
//! §2 lists "maintaining live counters of the number of HTTP requests made
//! to various parts of a Web site" among the motivating applications; this
//! generator feeds that app. Key = site section; value = request JSON.

use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arrivals::ArrivalProcess;
use crate::zipf::Zipf;

/// Site sections with example paths.
pub const SECTIONS: &[(&str, &[&str])] = &[
    ("home", &["/", "/index.html"]),
    ("products", &["/products/123", "/products/456", "/products/search?q=tv"]),
    ("cart", &["/cart", "/cart/add"]),
    ("checkout", &["/checkout", "/checkout/pay"]),
    ("account", &["/account", "/account/orders"]),
    ("help", &["/help", "/help/contact"]),
];

/// Synthetic HTTP request stream generator.
#[derive(Debug)]
pub struct WebRequestGenerator {
    rng: StdRng,
    section_dist: Zipf,
    arrivals: ArrivalProcess,
    now_us: u64,
}

impl WebRequestGenerator {
    /// A generator at `rate` requests/sec.
    pub fn new(seed: u64, rate_per_sec: f64) -> Self {
        WebRequestGenerator {
            rng: StdRng::seed_from_u64(seed),
            section_dist: Zipf::new(SECTIONS.len(), 1.0),
            arrivals: ArrivalProcess::Poisson { events_per_sec: rate_per_sec },
            now_us: 0,
        }
    }

    /// Generate the next request event. Key = section name.
    pub fn next_event(&mut self, stream: &str) -> Event {
        let (section, paths) = SECTIONS[self.section_dist.sample(&mut self.rng)];
        let path = paths[self.rng.gen_range(0..paths.len())];
        let status =
            *[200u32, 200, 200, 200, 304, 404, 500].get(self.rng.gen_range(0..7usize)).unwrap();
        let value = Json::obj([
            ("path", Json::str(path)),
            ("section", Json::str(section)),
            ("status", Json::num(status as f64)),
            ("bytes", Json::num(self.rng.gen_range(200..20_000) as f64)),
        ])
        .to_compact()
        .into_bytes();
        let ts = self.now_us;
        self.now_us += self.arrivals.next_gap_us(self.now_us, &mut self.rng).max(1);
        Event::new(stream, ts, Key::from(section), value)
    }

    /// Generate `n` events.
    pub fn take(&mut self, stream: &str, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.next_event(stream)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_have_section_keys_and_json_bodies() {
        let mut gen = WebRequestGenerator::new(1, 100.0);
        for ev in gen.take("S1", 100) {
            let section = ev.key.as_str().unwrap();
            assert!(SECTIONS.iter().any(|(s, _)| *s == section));
            let v = Json::from_payload(&ev.value).unwrap();
            assert_eq!(v.get("section").unwrap().as_str(), Some(section));
            assert!(v.get("status").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = WebRequestGenerator::new(2, 500.0).take("S1", 25);
        let b = WebRequestGenerator::new(2, 500.0).take("S1", 25);
        assert_eq!(a, b);
    }

    #[test]
    fn home_is_the_hottest_section() {
        let mut gen = WebRequestGenerator::new(3, 100.0);
        let mut counts = std::collections::HashMap::new();
        for ev in gen.take("S1", 10_000) {
            *counts.entry(ev.key.as_str().unwrap().to_string()).or_insert(0u32) += 1;
        }
        let home = counts["home"];
        for (section, count) in &counts {
            assert!(home >= *count, "home should lead: {section}={count} home={home}");
        }
    }
}
