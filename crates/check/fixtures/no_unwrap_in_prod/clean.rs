// lint-fixture-as: crates/runtime/src/fixture.rs
//! Fixture: fallible handling plus test-only unwraps — no findings.

pub fn prod(v: Option<u64>) -> Result<u64, String> {
    // unwrap_or / unwrap_or_else / unwrap_or_default are not unwraps.
    let a = v.unwrap_or(0);
    let b = v.unwrap_or_else(|| 1).max(v.unwrap_or_default());
    Ok(a + b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u64, ()> = Ok(2);
        assert_eq!(r.expect("test"), 2);
    }
}
