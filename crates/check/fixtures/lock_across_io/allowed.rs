// lint-fixture-as: crates/slatestore/src/fixture.rs
//! Fixture: IO under a lock that IS the design (group commit), excused
//! by a reasoned annotation.

pub fn group_commit(file: &mut std::fs::File, log: &muppet_core::sync::Mutex<Vec<u8>>) {
    use std::io::Write;
    let buf = log.lock();
    // lint: allow(lock-across-io) — group commit: the writer lock IS the batching mechanism
    file.write_all(&buf).ok();
    // lint: allow(lock-across-io) — group commit: followers wait on the durable watermark, not this lock
    file.sync_data().ok();
}
