//! Offline stand-in for the `rand` crate: the `Rng`/`SeedableRng` surface
//! this workspace uses, backed by xoshiro256++ seeded via splitmix64.
//! Deterministic for a given seed, statistically solid for workload
//! synthesis (the repo's Zipf/arrival generators assert distribution
//! shapes against it).

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire): negligible bias
                // at these span sizes, no modulo.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::sample_standard(self) < p
    }

    /// Uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (not the real crate's ChaCha,
    /// but deterministic-per-seed and more than adequate for synthetic
    /// workloads).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A cheap ad-hoc generator seeded from the system clock — for the odd
/// call-site that wants `rand::thread_rng()`-style convenience.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
    <rngs::StdRng as SeedableRng>::seed_from_u64(u64::from(nanos) ^ 0x5bf0_3635_dee9_1d27)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as i64 - 30_000).abs() < 2_000, "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn next_u64() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
