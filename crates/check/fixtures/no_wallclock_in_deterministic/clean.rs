// lint-fixture-as: crates/core/src/fixture.rs
//! Fixture: logical time only; wall-clock confined to tests — no findings.

pub struct LogicalClock(u64);

impl LogicalClock {
    pub fn tick(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn wallclock_is_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
