//! Latency histograms and summaries.
//!
//! §5's headline operational claim is "a latency of under 2 seconds" at
//! production event rates; the X4 experiment needs tail percentiles, so
//! the histogram keeps power-of-two buckets from 1 µs to ~68 s and
//! answers percentile queries without storing samples. Lock-free
//! recording (atomics) so every worker thread can record on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket i counts values in
/// `[2^i, 2^(i+1))` µs; the last bucket absorbs overflow.
pub const BUCKETS: usize = 36;

/// A concurrent power-of-two latency histogram (microsecond domain).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Record one sample in microseconds.
    pub fn record(&self, us: u64) {
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// Maximum recorded value.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Per-bucket sample counts (index i covers `[2^i, 2^(i+1))` µs; the
    /// last bucket absorbs overflow). The exposition path turns these
    /// into cumulative `le` buckets.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Upper bound (exclusive) of bucket `i`, µs.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        1u64 << (i + 1).min(63)
    }

    /// Approximate percentile (`0.0 < p <= 1.0`): upper bound of the bucket
    /// containing the p-th sample. Returns 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((n as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1); // bucket upper bound
            }
        }
        self.max_us()
    }

    /// Snapshot (count, mean, p50, p95, p99, max) for reporting.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_us: self.mean_us(),
            p50_us: self.percentile_us(0.50),
            p95_us: self.percentile_us(0.95),
            p99_us: self.percentile_us(0.99),
            max_us: self.max_us(),
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
        self.max_us.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time latency digest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean, µs.
    pub mean_us: u64,
    /// Median bucket upper bound, µs.
    pub p50_us: u64,
    /// 95th percentile bucket upper bound, µs.
    pub p95_us: u64,
    /// 99th percentile bucket upper bound, µs.
    pub p99_us: u64,
    /// Largest sample, µs.
    pub max_us: u64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={}µs p50={}µs p95={}µs p99={}µs max={}µs",
            self.count, self.mean_us, self.p50_us, self.p95_us, self.p99_us, self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.percentile_us(0.99), 0);
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn single_sample() {
        let h = Histogram::new();
        h.record(100);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_us(), 100);
        assert_eq!(h.max_us(), 100);
        // 100 lives in bucket [64, 128): upper bound 128.
        assert_eq!(h.percentile_us(0.5), 128);
    }

    #[test]
    fn percentiles_order_correctly() {
        let h = Histogram::new();
        for _ in 0..990 {
            h.record(10); // bucket [8,16)
        }
        for _ in 0..10 {
            h.record(1_000_000); // ~1s outliers
        }
        assert!(h.percentile_us(0.50) <= 16);
        assert!(h.percentile_us(0.99) <= 16, "99th of 1000 samples is still fast");
        assert!(h.percentile_us(0.999) >= 1_000_000 / 2, "tail catches the outliers");
        assert!(h.max_us() >= 1_000_000);
    }

    #[test]
    fn zero_valued_samples_count() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert!(h.percentile_us(1.0) >= 1);
    }

    #[test]
    fn huge_samples_clamp_to_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_us(), u64::MAX);
        assert!(h.percentile_us(0.5) > 0);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        let h = Histogram::new();
        // A value of exactly 2^i lands in bucket i (range [2^i, 2^(i+1))),
        // and 2^i - 1 lands in bucket i-1: the boundary is inclusive
        // below, exclusive above.
        for i in 1..20usize {
            let v = 1u64 << i;
            let h2 = Histogram::new();
            h2.record(v);
            h2.record(v - 1);
            let counts = h2.bucket_counts();
            assert_eq!(counts[i], 1, "2^{i} must land in bucket {i}");
            assert_eq!(counts[i - 1], 1, "2^{i}-1 must land in bucket {}", i - 1);
        }
        // 0 and 1 both land in bucket 0 ([1, 2) with the max(1) clamp).
        h.record(0);
        h.record(1);
        assert_eq!(h.bucket_counts()[0], 2);
        // Upper bounds line up with percentile answers.
        assert_eq!(Histogram::bucket_upper_bound(0), 2);
        assert_eq!(Histogram::bucket_upper_bound(6), 128);
        let h3 = Histogram::new();
        h3.record(100);
        assert_eq!(h3.percentile_us(1.0), Histogram::bucket_upper_bound(6));
    }

    #[test]
    fn bucket_counts_sum_to_count() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 70, 5000, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let total: u64 = h.bucket_counts().iter().sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i % 1000);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
    }

    #[test]
    fn summary_display_is_readable() {
        let h = Histogram::new();
        h.record(1500);
        let s = h.summary().to_string();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("max=1500µs"), "{s}");
    }
}
