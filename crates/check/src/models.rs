//! Executable models of the repo's three hairiest lock protocols, shaped
//! for the [`crate::sched`] harness.
//!
//! Each model is a faithful miniature of the real code path — same locks,
//! same acquisition order, same memory-ordering discipline, with the IO
//! replaced by in-memory appends so a run takes microseconds:
//!
//! * [`run_group_commit`] — `runtime::ingestlog` leader/follower group
//!   commit (leader wins `try_lock` on the writer, drains the staged
//!   buffer, publishes a durable watermark, notifies under the cv mutex);
//! * [`run_single_flight`] — `runtime::cache` single-flight miss reads
//!   (one loader per key, waiters coalesce onto the flight);
//! * [`run_flush_cas`] — `runtime::cache` snapshot flushes (snapshot
//!   under the slot lock, write outside it, CAS `flushed_version` up to
//!   the *snapshot* version only, so a concurrent mutation keeps its
//!   dirty bit).
//!
//! Every model also has a deliberately-broken variant — the negative
//! control proving the harness can actually catch the bug class it
//! guards against (a lost wakeup, a waiter observing an absent value, a
//! lost dirty bit). `violations > 0` for a broken run is the harness
//! working, not the harness failing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use muppet_core::sync::{Condvar, Mutex};

use crate::sched;

/// What a model run observed. `violations` must be zero for correct
/// variants over every seed; broken variants exist to drive it nonzero.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Invariant violations (the assertion payload).
    pub violations: u64,
    /// Human-readable descriptions of the first few violations.
    pub notes: Vec<String>,
    /// Batches a leader committed (group commit) / loads issued
    /// (single-flight) / flushes performed (flush CAS) — shape counters
    /// for sanity assertions, not invariants.
    pub work: u64,
}

impl Outcome {
    fn violate(&mut self, note: String) {
        self.violations += 1;
        if self.notes.len() < 4 {
            self.notes.push(note);
        }
    }
}

// ---------------------------------------------------------------------
// Model 1: ingest-WAL group commit.
// ---------------------------------------------------------------------

struct GcBuf {
    entries: Vec<u64>,
    next_seq: u64,
}

struct GroupCommit {
    buf: Mutex<GcBuf>,
    /// The "WAL": committed records in commit order. Appending is the
    /// stand-in for `append_many` + fsync.
    log: Mutex<Vec<u64>>,
    durable: AtomicU64,
    cv_mutex: Mutex<()>,
    cv: Condvar,
    /// Leader re-entrancy probe: must never exceed 1.
    leaders_now: AtomicU64,
    leader_overlaps: AtomicU64,
    watermark_regressions: AtomicU64,
    /// Timeout rescues: a parked follower whose covering commit happened
    /// but whose wakeup never arrived — the lost-wakeup signature.
    lost_wakeups: AtomicU64,
    batches: AtomicU64,
    /// Negative control: notify without taking the cv mutex first.
    broken_notify: bool,
}

impl GroupCommit {
    fn append(&self, record: u64) {
        let my_seq = {
            sched::point();
            let mut buf = self.buf.lock();
            buf.entries.push(record);
            buf.next_seq += 1;
            buf.next_seq - 1
        };
        loop {
            if self.durable.load(Ordering::Acquire) >= my_seq {
                return;
            }
            sched::point();
            if let Some(mut log) = self.log.try_lock() {
                // Leader. Exactly one thread can be here (it holds the
                // writer); `leaders_now` proves it.
                if self.leaders_now.fetch_add(1, Ordering::SeqCst) != 0 {
                    self.leader_overlaps.fetch_add(1, Ordering::SeqCst);
                }
                for _round in 0..64 {
                    let (entries, high) = {
                        let mut buf = self.buf.lock();
                        let high = buf.next_seq.saturating_sub(1);
                        (std::mem::take(&mut buf.entries), high)
                    };
                    if entries.is_empty() {
                        break;
                    }
                    sched::point(); // the "fsync" window
                    log.extend_from_slice(&entries);
                    self.batches.fetch_add(1, Ordering::Relaxed);
                    // Watermark must only move forward.
                    let prev = self.durable.swap(high, Ordering::AcqRel);
                    if prev > high {
                        self.watermark_regressions.fetch_add(1, Ordering::SeqCst);
                    }
                    if self.broken_notify {
                        // BROKEN: notify without the cv mutex. A follower
                        // that checked `durable` (stale) but has not yet
                        // parked misses this forever.
                        self.cv.notify_all();
                    } else {
                        let _guard = self.cv_mutex.lock();
                        self.cv.notify_all();
                    }
                }
                self.leaders_now.fetch_sub(1, Ordering::SeqCst);
                drop(log);
            } else {
                let mut guard = self.cv_mutex.lock();
                if self.durable.load(Ordering::Acquire) >= my_seq {
                    return;
                }
                // The race window the broken variant opens: the leader
                // commits and notifies RIGHT HERE, before we park.
                sched::point();
                let r = self.cv.wait_for(&mut guard, Duration::from_millis(100));
                if r.timed_out() && self.durable.load(Ordering::Acquire) >= my_seq {
                    // Covered but never woken: only the timeout saved us.
                    self.lost_wakeups.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }
}

/// Drive `threads × per_thread` appends through the group-commit protocol
/// under seed `seed`. Invariants: no lost wakeup, at most one leader, a
/// monotone watermark, and every record committed exactly once.
pub fn run_group_commit(seed: u64, threads: u64, per_thread: u64, broken: bool) -> Outcome {
    sched::install(seed);
    let gc = Arc::new(GroupCommit {
        buf: Mutex::new(GcBuf { entries: Vec::new(), next_seq: 1 }),
        log: Mutex::new(Vec::new()),
        durable: AtomicU64::new(0),
        cv_mutex: Mutex::new(()),
        cv: Condvar::new(),
        leaders_now: AtomicU64::new(0),
        leader_overlaps: AtomicU64::new(0),
        watermark_regressions: AtomicU64::new(0),
        lost_wakeups: AtomicU64::new(0),
        batches: AtomicU64::new(0),
        broken_notify: broken,
    });
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let gc = Arc::clone(&gc);
            std::thread::spawn(move || {
                sched::register(t + 1);
                for i in 0..per_thread {
                    gc.append(t * per_thread + i);
                }
                sched::deregister();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("model thread never panics");
    }

    let mut out = Outcome { work: gc.batches.load(Ordering::Relaxed), ..Outcome::default() };
    let log = gc.log.lock();
    let expected = threads * per_thread;
    if log.len() as u64 != expected {
        out.violate(format!("committed {} records, expected {expected}", log.len()));
    }
    let mut seen: Vec<u64> = log.clone();
    seen.sort_unstable();
    seen.dedup();
    if seen.len() != log.len() {
        out.violate("a record committed twice".into());
    }
    for probe in [
        (gc.lost_wakeups.load(Ordering::SeqCst), "lost wakeup (timeout rescue)"),
        (gc.leader_overlaps.load(Ordering::SeqCst), "two leaders at once"),
        (gc.watermark_regressions.load(Ordering::SeqCst), "watermark went backwards"),
    ] {
        if probe.0 > 0 {
            out.violate(format!("{} × {}", probe.0, probe.1));
        }
    }
    if gc.durable.load(Ordering::SeqCst) != expected {
        out.violate("final watermark does not cover every append".into());
    }
    out
}

// ---------------------------------------------------------------------
// Model 2: single-flight miss reads.
// ---------------------------------------------------------------------

#[derive(Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) -> bool {
        let mut done = self.done.lock();
        let mut waited_too_long = false;
        while !*done {
            sched::point();
            if self.cv.wait_for(&mut done, Duration::from_millis(100)).timed_out() && !*done {
                waited_too_long = true;
                break;
            }
        }
        waited_too_long
    }

    fn finish(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.cv.notify_all();
    }
}

struct SingleFlight {
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
    cache: Mutex<HashMap<u64, u64>>,
    loads: AtomicU64,
    /// Negative control: resolve the flight BEFORE installing the value.
    broken_resolve_first: bool,
}

impl SingleFlight {
    /// The cache miss path, mirroring `cache::get_or_load`: the cache map
    /// and the flights table are consulted under the SAME map lock (the
    /// real shard's map → flights nesting), the leader loads with no lock
    /// held and installs the value BEFORE resolving the flight, and woken
    /// waiters re-enter the loop rather than trusting the wakeup.
    fn get_or_load(&self, key: u64) -> (Option<u64>, Option<String>) {
        loop {
            sched::point();
            let flight = {
                let cache = self.cache.lock();
                if let Some(v) = cache.get(&key) {
                    return (Some(*v), None);
                }
                let mut flights = self.flights.lock();
                match flights.get(&key) {
                    Some(f) => Arc::clone(f),
                    None => {
                        // Leader: publish the flight, drop both locks,
                        // and do the "backend load" outside them.
                        let f = Arc::new(Flight::default());
                        flights.insert(key, Arc::clone(&f));
                        drop(flights);
                        drop(cache);
                        sched::point();
                        let value = key * 1000 + self.loads.fetch_add(1, Ordering::SeqCst);
                        if self.broken_resolve_first {
                            // BROKEN: waiters released before the value
                            // exists — a retrying waiter sees neither the
                            // value nor a flight and elects itself a
                            // second leader (the stampede).
                            self.flights.lock().remove(&key);
                            f.finish();
                            sched::point();
                            self.cache.lock().insert(key, value);
                        } else {
                            self.cache.lock().insert(key, value);
                            self.flights.lock().remove(&key);
                            f.finish();
                        }
                        return (Some(value), None);
                    }
                }
            };
            if flight.wait() {
                return (None, Some("waiter starved: flight never resolved".into()));
            }
            // Retry: the leader's value is (usually) a cache hit now.
        }
    }
}

/// Drive `threads` concurrent misses on one key. Invariants: exactly one
/// backend load, every waiter observes the loaded value.
pub fn run_single_flight(seed: u64, threads: u64, broken: bool) -> Outcome {
    sched::install(seed);
    let sf = Arc::new(SingleFlight {
        flights: Mutex::new(HashMap::new()),
        cache: Mutex::new(HashMap::new()),
        loads: AtomicU64::new(0),
        broken_resolve_first: broken,
    });
    const KEY: u64 = 42;
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let sf = Arc::clone(&sf);
            std::thread::spawn(move || {
                sched::register(t + 1);
                let got = sf.get_or_load(KEY);
                sched::deregister();
                got
            })
        })
        .collect();
    let results: Vec<_> = workers.into_iter().map(|w| w.join().expect("no panic")).collect();

    let mut out = Outcome { work: sf.loads.load(Ordering::SeqCst), ..Outcome::default() };
    if out.work != 1 {
        out.violate(format!("{} backend loads for one key (want exactly 1)", out.work));
    }
    let expect = sf.cache.lock().get(&KEY).copied();
    for (value, note) in results {
        if let Some(n) = note {
            out.violate(n);
        } else if value != expect {
            out.violate(format!("thread observed {value:?}, cache holds {expect:?}"));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Model 3: flush CAS vs concurrent mutation.
// ---------------------------------------------------------------------

struct SlotState {
    /// The slate: `value` is whatever the latest mutation wrote; the
    /// version bumps on every mutation.
    version: u64,
    value: u64,
    /// Version already persisted; `version > flushed_version` ⟺ dirty.
    flushed_version: u64,
}

struct FlushCas {
    slot: Mutex<SlotState>,
    /// The "store": last flushed ⟨version, value⟩, written outside the
    /// slot lock.
    store: Mutex<Option<(u64, u64)>>,
    flushes: AtomicU64,
    /// Negative control: after the write, mark the CURRENT version
    /// flushed instead of the snapshot version.
    broken_blind_mark: bool,
}

impl FlushCas {
    fn mutate(&self, value: u64) {
        sched::point();
        let mut slot = self.slot.lock();
        slot.version += 1;
        slot.value = value;
    }

    fn flush(&self) {
        // Snapshot under the slot lock…
        let (snap_version, snap_value) = {
            let slot = self.slot.lock();
            if slot.version == slot.flushed_version {
                return;
            }
            (slot.version, slot.value)
        };
        sched::point();
        // …write OUTSIDE it (the mutator must never block on our IO)…
        *self.store.lock() = Some((snap_version, snap_value));
        self.flushes.fetch_add(1, Ordering::Relaxed);
        sched::point();
        // …then mark flushed, but only up to what was actually written.
        let mut slot = self.slot.lock();
        if self.broken_blind_mark {
            // BROKEN: claims the current version is durable. A mutation
            // that landed during the write silently loses its dirty bit.
            slot.flushed_version = slot.version;
        } else if slot.flushed_version < snap_version {
            slot.flushed_version = snap_version;
        }
    }

    /// The invariant, checkable whenever both threads are quiesced: a
    /// slot claiming to be clean must be bit-identical with the store —
    /// a newer version never loses its dirty bit.
    fn check_clean_means_stored(&self) -> Option<String> {
        let slot = self.slot.lock();
        if slot.version > slot.flushed_version {
            return None; // dirty: a future flush still owes the write
        }
        match *self.store.lock() {
            Some((_, value)) if value == slot.value => None,
            Some((v, value)) => Some(format!(
                "store holds v{v}={value} but slot is at v{}={} and claims clean — \
                 a newer version lost its dirty bit",
                slot.version, slot.value
            )),
            None if slot.version > 0 => Some("slot claims clean but nothing ever flushed".into()),
            None => None,
        }
    }
}

/// Race one mutation against one flush per round, `rounds` times. The
/// opening barrier launches both from the same instant (maximum overlap
/// of the mutate with the flusher's snapshot→write→mark window); the
/// closing barrier quiesces the pair so the invariant check between
/// rounds is race-free. Invariant (every round + once more after a final
/// sweep): a slot claiming to be clean matches the store.
pub fn run_flush_cas(seed: u64, rounds: u64, broken: bool) -> Outcome {
    sched::install(seed);
    let fc = Arc::new(FlushCas {
        slot: Mutex::new(SlotState { version: 0, value: 0, flushed_version: 0 }),
        store: Mutex::new(None),
        flushes: AtomicU64::new(0),
        broken_blind_mark: broken,
    });
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let mutator = {
        let fc = Arc::clone(&fc);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            sched::register(1);
            for i in 1..=rounds {
                barrier.wait();
                fc.mutate(i * 10);
                barrier.wait();
            }
            sched::deregister();
        })
    };
    let flusher = {
        let fc = Arc::clone(&fc);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            sched::register(2);
            let mut notes = Vec::new();
            for _ in 0..rounds {
                barrier.wait();
                fc.flush();
                barrier.wait();
                // The mutator is parked at the next opening barrier, so
                // this cross-structure read is quiescent.
                if let Some(note) = fc.check_clean_means_stored() {
                    notes.push(note);
                }
            }
            sched::deregister();
            notes
        })
    };
    mutator.join().expect("no panic");
    let round_notes = flusher.join().expect("no panic");

    let mut out = Outcome { work: fc.flushes.load(Ordering::Relaxed), ..Outcome::default() };
    for note in round_notes {
        out.violate(note);
    }
    // One final sweep, exactly like the engine's shutdown flush: after
    // it the slot MUST be clean AND match the store. If a dirty bit was
    // lost mid-run, this flush sees "clean", skips the write, and the
    // store stays stale.
    fc.flush();
    {
        let slot = fc.slot.lock();
        if slot.version > slot.flushed_version {
            out.violate("slot still dirty after final flush".into());
        }
    }
    if let Some(note) = fc.check_clean_means_stored() {
        out.violate(note);
    }
    out
}
