//! A minimal Rust source scanner — just enough lexing for the lint rules.
//!
//! Not a parser: it classifies every byte as code / comment / string
//! content, tracks brace depth, and marks `#[cfg(test)]` item bodies. The
//! rules then pattern-match on the *code-only* projection of each line, so
//! a lock name inside a doc comment or a string literal never trips a
//! lint, while the raw line text stays available for `// lint: allow(...)`
//! annotations (which live in comments on purpose).

/// One source line, classified.
pub struct LineInfo {
    /// The line exactly as written (no trailing newline).
    pub raw: String,
    /// The line with comment and string/char-literal *contents* blanked to
    /// spaces (delimiters kept), so rules match code tokens only.
    pub code: String,
    /// Brace depth at the start of the line.
    pub depth_start: usize,
    /// Brace depth after the line's own braces.
    pub depth_end: usize,
    /// True if the line is inside a `#[cfg(test)]` item body (or is the
    /// attribute/header itself).
    pub in_test: bool,
}

enum State {
    Normal,
    LineComment,
    BlockComment(usize),
    Str,
    RawStr(usize),
    CharLit,
}

/// Scan a whole file into classified lines.
pub fn scan(source: &str) -> Vec<LineInfo> {
    let bytes = source.as_bytes();
    let mut lines: Vec<LineInfo> = Vec::new();
    let mut raw = String::new();
    let mut code = String::new();
    let mut depth: usize = 0;
    let mut depth_start: usize = 0;
    let mut state = State::Normal;
    let mut i = 0;

    // Byte ranges of the code text that belong to `#[cfg(test)]` bodies
    // are resolved in a second pass; here we just build the projection.
    let mut flush = |raw: &mut String, code: &mut String, depth_start: &mut usize, depth: usize| {
        lines.push(LineInfo {
            raw: std::mem::take(raw),
            code: std::mem::take(code),
            depth_start: *depth_start,
            depth_end: depth,
            in_test: false,
        });
        *depth_start = depth;
    };

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            // A newline ends line comments; strings/block comments span.
            if matches!(state, State::LineComment) {
                state = State::Normal;
            }
            flush(&mut raw, &mut code, &mut depth_start, depth);
            i += 1;
            continue;
        }
        raw.push(b as char);
        match state {
            State::Normal => {
                match b {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        state = State::LineComment;
                        code.push(' ');
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                    }
                    b'"' => {
                        state = State::Str;
                        code.push('"');
                    }
                    b'r' | b'b' if !prev_is_ident(bytes, i) => {
                        // Possible raw/byte string prefix: r", r#", b", br#"…
                        let mut j = i + 1;
                        if b == b'b' && bytes.get(j) == Some(&b'r') {
                            j += 1;
                        }
                        let mut hashes = 0;
                        while bytes.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = b == b'r' || (b == b'b' && bytes.get(i + 1) == Some(&b'r'));
                        match bytes.get(j) {
                            Some(&b'"') if is_raw => {
                                for (k, &byte) in bytes.iter().enumerate().take(j + 1).skip(i) {
                                    if k > i {
                                        raw.push(byte as char);
                                    }
                                    code.push(byte as char);
                                }
                                i = j;
                                state = State::RawStr(hashes);
                            }
                            Some(&b'"') if b == b'b' && hashes == 0 => {
                                raw.push('"');
                                code.push('b');
                                code.push('"');
                                i += 1;
                                state = State::Str;
                            }
                            _ => code.push(b as char),
                        }
                    }
                    b'\'' => {
                        // Char literal vs lifetime: 'x' / '\n' are literals,
                        // 'a (no closing quote right after) is a lifetime.
                        if bytes.get(i + 1) == Some(&b'\\')
                            || (bytes.get(i + 2) == Some(&b'\'')
                                && bytes.get(i + 1).is_some_and(|c| *c != b'\''))
                        {
                            state = State::CharLit;
                        }
                        code.push('\'');
                    }
                    b'{' => {
                        depth += 1;
                        code.push('{');
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        code.push('}');
                    }
                    _ => code.push(b as char),
                }
            }
            State::LineComment => code.push(' '),
            State::BlockComment(n) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    raw.push('/');
                    code.push(' ');
                    code.push(' ');
                    i += 1;
                    state = if n == 1 { State::Normal } else { State::BlockComment(n - 1) };
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    raw.push('*');
                    code.push(' ');
                    code.push(' ');
                    i += 1;
                    state = State::BlockComment(n + 1);
                } else {
                    code.push(' ');
                }
            }
            State::Str => match b {
                b'\\' => {
                    if let Some(&next) = bytes.get(i + 1) {
                        if next != b'\n' {
                            raw.push(next as char);
                            code.push(' ');
                            i += 1;
                        }
                    }
                    code.push(' ');
                }
                b'"' => {
                    state = State::Normal;
                    code.push('"');
                }
                _ => code.push(' '),
            },
            State::RawStr(hashes) => {
                if b == b'"' {
                    let closes = (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'));
                    if closes {
                        code.push('"');
                        for k in 1..=hashes {
                            raw.push(bytes[i + k] as char);
                            code.push('#');
                        }
                        i += hashes;
                        state = State::Normal;
                    } else {
                        code.push(' ');
                    }
                } else {
                    code.push(' ');
                }
            }
            State::CharLit => match b {
                b'\\' => {
                    if let Some(&next) = bytes.get(i + 1) {
                        raw.push(next as char);
                        code.push(' ');
                        code.push(' ');
                        i += 1;
                    }
                }
                b'\'' => {
                    state = State::Normal;
                    code.push('\'');
                }
                _ => code.push(' '),
            },
        }
        i += 1;
    }
    if !raw.is_empty() || !code.is_empty() {
        flush(&mut raw, &mut code, &mut depth_start, depth);
    }
    mark_test_regions(&mut lines);
    lines
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Mark lines belonging to `#[cfg(test)]` item bodies. Works on the
/// code-only projection: find the attribute, then the `{` that opens the
/// attributed item (cancelled by an intervening `;` at attribute depth),
/// then everything until the matching `}`.
fn mark_test_regions(lines: &mut [LineInfo]) {
    let mut pending_attr: Option<usize> = None; // line of the cfg(test) attr
    let mut open_regions: Vec<usize> = Vec::new(); // depth of each region's body
    for (idx, line) in lines.iter_mut().enumerate() {
        let code = line.code.clone();
        let mut depth = line.depth_start;
        if !open_regions.is_empty() {
            line.in_test = true;
        }
        if pending_attr.is_some() {
            line.in_test = true;
        }
        if cfg_test_attr(&code) {
            pending_attr = Some(idx);
            line.in_test = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_attr.is_some() {
                        // This brace opens the attributed item's body.
                        open_regions.push(depth);
                        pending_attr = None;
                    }
                }
                '}' => {
                    if open_regions.last() == Some(&depth) {
                        open_regions.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' if pending_attr.is_some() && depth == line.depth_start => {
                    // `#[cfg(test)] use …;` — attribute without a body.
                    pending_attr = None;
                }
                _ => {}
            }
        }
    }
}

/// Does this code line carry a `#[cfg(test)]`-style attribute (including
/// `cfg(all(test, …))`, excluding `cfg(not(test))`)?
fn cfg_test_attr(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = rest.find("#[cfg(") {
        let inner_start = at + "#[cfg(".len();
        let Some(end) = rest[inner_start..].find(")]") else {
            return false;
        };
        let inner = rest[inner_start..inner_start + end].replace("not(test)", "");
        if has_word(&inner, "test") {
            return true;
        }
        rest = &rest[inner_start + end..];
    }
    false
}

/// Whole-word containment: `needle` bounded by non-identifier chars.
pub fn has_word(haystack: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(at) = haystack[from..].find(needle) {
        let start = from + at;
        let end = start + needle.len();
        let before_ok =
            start == 0 || !haystack[..start].ends_with(|c: char| c.is_alphanumeric() || c == '_');
        let after_ok = end == haystack.len()
            || !haystack[end..].starts_with(|c: char| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = r##"let a = "parking_lot::Mutex"; // parking_lot here too
let b = 1; /* parking_lot */ let c = 2;
let d = r#"parking_lot"#;
"##;
        let lines = scan(src);
        assert!(!lines[0].code.contains("parking_lot"));
        assert!(lines[0].raw.contains("parking_lot"));
        assert!(!lines[1].code.contains("parking_lot"));
        assert!(lines[1].code.contains("let c = 2;"));
        assert!(!lines[2].code.contains("parking_lot"));
    }

    #[test]
    fn brace_depth_tracks_blocks() {
        let lines = scan("fn f() {\n    if x {\n    }\n}\n");
        assert_eq!(lines[0].depth_start, 0);
        assert_eq!(lines[0].depth_end, 1);
        assert_eq!(lines[1].depth_end, 2);
        assert_eq!(lines[3].depth_end, 0);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn prod() {\n    x.unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let lines = scan(src);
        assert!(!lines[1].in_test);
        assert!(lines[3].in_test, "attribute line");
        assert!(lines[5].in_test, "body line");
        assert!(!lines[7].in_test, "after the region");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lines = scan("#[cfg(not(test))]\nfn prod() {\n    x.unwrap();\n}\n");
        assert!(!lines[2].in_test);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = scan("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n");
        assert!(lines[0].code.contains("&'a str"));
        assert!(!lines[1].code.contains('x'), "{}", lines[1].code);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_open_a_region() {
        let lines = scan("#[cfg(test)]\nuse foo::bar;\nfn prod() { x.unwrap(); }\n");
        assert!(!lines[2].in_test);
    }
}
