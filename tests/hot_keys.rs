//! Hot keys end to end: map-side combiners and dynamic key splitting
//! (DESIGN.md §14) against the reference semantics.
//!
//! The invariant under test is the combiner contract: with
//! `EngineConfig::combine` on — and with hot keys fanned out across
//! subslates and merged back on read — per-key totals must stay
//! bit-for-bit what per-event delivery produces.

use std::collections::BTreeMap;
use std::time::Duration;

use muppet::apps::split_counter::CombiningCounter;
use muppet::prelude::*;
use muppet::runtime::dispatch::{split_subkey, SPLIT_WAYS};
use muppet::workloads::{zipf_events, ZIPF_STREAM};

const COUNTER: &str = "zipf-counter";

fn workflow() -> Workflow {
    let mut b = Workflow::builder("hot-keys");
    b.external_stream(ZIPF_STREAM);
    b.updater(COUNTER, &[ZIPF_STREAM]);
    b.build().unwrap()
}

/// Ground truth: every event carries the unit value `"1"`, so a key's
/// total is its occurrence count.
fn expected_counts(events: &[Event]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for ev in events {
        *out.entry(ev.key.as_str().unwrap().to_string()).or_insert(0u64) += 1;
    }
    out
}

fn config(combine: bool, hot_split_threshold: u64) -> EngineConfig {
    EngineConfig {
        kind: EngineKind::Muppet2,
        machines: 2,
        workers_per_machine: 2,
        workers_per_op: 2,
        overflow: OverflowPolicy::SourceThrottle,
        queue_capacity: 2048,
        combine,
        hot_split_threshold,
        ..EngineConfig::default()
    }
}

fn read_counts(engine: &Engine, events: &[Event]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for key in expected_counts(events).keys() {
        if let Some(bytes) = engine.read_slate(COUNTER, &Key::from(key.as_str())) {
            out.insert(key.clone(), String::from_utf8(bytes).unwrap().parse().unwrap());
        }
    }
    out
}

#[test]
fn combine_on_matches_per_event_totals_exactly() {
    let events = zipf_events(200, 1.2, 8000, 11);
    let expected = expected_counts(&events);
    let engine = Engine::start(
        workflow(),
        OperatorSet::new().updater(CombiningCounter::named(COUNTER)),
        config(true, 0),
        None,
    )
    .unwrap();
    engine.submit_many(events.clone()).unwrap();
    assert!(engine.drain(Duration::from_secs(60)), "engine must drain");
    let got = read_counts(&engine, &events);
    let stats = engine.shutdown();
    assert_eq!(got, expected, "folded delivery must be exact");
    assert_eq!(stats.dropped_overflow, 0);
    assert_eq!(stats.lost_machine_failure + stats.lost_in_queues, 0);
    assert!(
        stats.combined_events > 0,
        "a skewed burst through full queues must fold at least once"
    );
    assert_eq!(stats.split_keys_active, 0, "threshold 0 never splits");
}

#[test]
fn split_cycle_fans_out_merges_on_read_and_collapses() {
    let events = zipf_events(50, 1.4, 12_000, 23);
    let expected = expected_counts(&events);
    let engine = Engine::start(
        workflow(),
        OperatorSet::new().updater(CombiningCounter::named(COUNTER)),
        config(true, 200),
        None,
    )
    .unwrap();
    engine.submit_many(events.clone()).unwrap();
    assert!(engine.drain(Duration::from_secs(60)), "engine must drain");

    // The burst must have split the head key and fanned it across
    // subslates; reads merge them back exactly.
    let got = read_counts(&engine, &events);
    assert_eq!(got, expected, "merged reads must reproduce per-event totals");
    let head = Key::from("k0");
    let populated = (0..SPLIT_WAYS)
        .filter(|&w| engine.read_slate(COUNTER, &split_subkey(&head, w)).is_some())
        .count();
    assert!(populated >= 4, "head key must fan out across subslates, got {populated}");
    let mid = engine.stats();
    assert!(mid.split_keys_active >= 1, "the Zipf head must be split after the burst");
    assert!(mid.split_merge_reads > 0, "reads of the split key must merge subslates");
    assert!(mid.combined_events > 0);

    // Cooling: with the burst over, a trickle of head-key traffic rolls
    // the probe window twice (the first roll retires the burst's hit
    // count) and the head key's split collapses. Other burst-split keys
    // see no traffic, so their probes never fire — they stay installed
    // (and cost nothing) until their next event. Totals stay exact
    // because the subslate residue keeps merging on read.
    let mut trickle = Vec::new();
    for i in 0..3 {
        std::thread::sleep(Duration::from_millis(300));
        let ev = Event::new(ZIPF_STREAM, 20_000 + i, head.clone(), &b"1"[..]);
        trickle.push(ev.clone());
        engine.submit(ev).unwrap();
        assert!(engine.drain(Duration::from_secs(30)));
    }
    let after = engine.stats();
    assert!(
        after.split_keys_active < mid.split_keys_active,
        "the cooled head key must collapse ({} -> {})",
        mid.split_keys_active,
        after.split_keys_active
    );
    let total: u64 =
        String::from_utf8(engine.read_slate(COUNTER, &head).unwrap()).unwrap().parse().unwrap();
    assert_eq!(total, expected["k0"] + trickle.len() as u64, "exact across the collapse");
    engine.shutdown();
}

#[test]
fn combine_and_split_survive_a_midstream_join() {
    let events = zipf_events(80, 1.3, 10_000, 31);
    let expected = expected_counts(&events);
    let engine = Engine::start(
        workflow(),
        OperatorSet::new().updater(CombiningCounter::named(COUNTER)),
        config(true, 200),
        None,
    )
    .unwrap();
    let (first, second) = events.split_at(events.len() / 2);
    engine.submit_many(first.to_vec()).unwrap();
    // Mid-stream join while queues are hot: subslates are ordinary
    // slates, so the handoff moves them like any other key.
    let joined = engine.join_machine().unwrap();
    assert!(engine.ring_contains(joined));
    engine.submit_many(second.to_vec()).unwrap();
    assert!(engine.drain(Duration::from_secs(60)), "engine must drain");
    let got = read_counts(&engine, &events);
    let stats = engine.shutdown();
    assert_eq!(got, expected, "join + split + combine must stay exact");
    assert_eq!(stats.dropped_overflow, 0);
    assert_eq!(stats.lost_machine_failure + stats.lost_in_queues, 0);
}

#[test]
fn combine_off_is_unchanged_and_exact() {
    let events = zipf_events(100, 1.0, 4000, 41);
    let expected = expected_counts(&events);
    let engine = Engine::start(
        workflow(),
        OperatorSet::new().updater(CombiningCounter::named(COUNTER)),
        config(false, 0),
        None,
    )
    .unwrap();
    engine.submit_many(events.clone()).unwrap();
    assert!(engine.drain(Duration::from_secs(60)));
    let got = read_counts(&engine, &events);
    let stats = engine.shutdown();
    assert_eq!(got, expected);
    assert_eq!(stats.combined_events, 0, "no folding unless configured");
    assert_eq!(stats.split_keys_active, 0);
    assert_eq!(stats.split_merge_reads, 0);
}
