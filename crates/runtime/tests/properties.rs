//! Property-based tests for the runtime's data structures.

use muppet_runtime::dispatch::{choose_queue, queue_pair};
use muppet_runtime::lru::LruMap;
use muppet_runtime::metrics::Histogram;
use muppet_runtime::overflow::{OverflowAction, OverflowPolicy};
use proptest::prelude::*;

proptest! {
    // ---------- two-choice dispatch ----------

    #[test]
    fn queue_pair_always_valid_and_distinct(route in any::<u64>(), threads in 1usize..64) {
        let (p, s) = queue_pair(route, threads);
        prop_assert!(p < threads);
        prop_assert!(s < threads);
        if threads > 1 {
            prop_assert_ne!(p, s, "distinct whenever possible");
        }
    }

    #[test]
    fn chosen_queue_is_always_primary_or_secondary(
        route in any::<u64>(),
        threads in 1usize..16,
        lens in proptest::collection::vec(0usize..1000, 16),
        marks in proptest::collection::vec(proptest::option::of(any::<u64>()), 16),
    ) {
        let (p, s) = queue_pair(route, threads);
        let choice = choose_queue(route, &marks[..threads], &lens[..threads], threads);
        prop_assert!(choice == p || choice == s,
            "the §4.5 guarantee: at most two queues per route");
    }

    #[test]
    fn in_flight_route_always_wins(route in any::<u64>(), threads in 2usize..16,
                                   lens in proptest::collection::vec(0usize..1000, 16)) {
        let (p, s) = queue_pair(route, threads);
        // Pin via primary.
        let mut marks = vec![None; threads];
        marks[p] = Some(route);
        prop_assert_eq!(choose_queue(route, &marks, &lens[..threads], threads), p);
        // Pin via secondary (primary idle).
        let mut marks = vec![None; threads];
        marks[s] = Some(route);
        prop_assert_eq!(choose_queue(route, &marks, &lens[..threads], threads), s);
    }

    // ---------- LRU vs model ----------

    #[test]
    fn lru_matches_model_under_random_ops(ops in proptest::collection::vec(
        (0u8..4, 0u16..64, any::<u32>()), 0..300)) {
        let mut lru: LruMap<u16, u32> = LruMap::new();
        let mut model: std::collections::HashMap<u16, u32> = Default::default();
        // Recency model: vector of keys, most recent last.
        let mut recency: Vec<u16> = Vec::new();
        let touch = |recency: &mut Vec<u16>, k: u16| {
            recency.retain(|&x| x != k);
            recency.push(k);
        };
        for (op, key, value) in ops {
            match op {
                0 => {
                    prop_assert_eq!(lru.insert(key, value), model.insert(key, value));
                    touch(&mut recency, key);
                }
                1 => {
                    prop_assert_eq!(lru.get(&key).copied(), model.get(&key).copied());
                    if model.contains_key(&key) {
                        touch(&mut recency, key);
                    }
                }
                2 => {
                    prop_assert_eq!(lru.remove(&key), model.remove(&key));
                    recency.retain(|&x| x != key);
                }
                _ => {
                    let expected = recency.first().copied();
                    let got = lru.pop_lru();
                    prop_assert_eq!(got.as_ref().map(|(k, _)| *k), expected);
                    if let Some(k) = expected {
                        model.remove(&k);
                        recency.remove(0);
                    }
                }
            }
            prop_assert_eq!(lru.len(), model.len());
        }
        // Final drain order equals the recency model (LRU first).
        let mut drained = Vec::new();
        while let Some((k, _)) = lru.pop_lru() {
            drained.push(k);
        }
        prop_assert_eq!(drained, recency);
    }

    // ---------- histogram ----------

    #[test]
    fn histogram_percentiles_are_monotone_and_bound_samples(
        samples in proptest::collection::vec(0u64..10_000_000, 1..300)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let p50 = h.percentile_us(0.5);
        let p95 = h.percentile_us(0.95);
        let p99 = h.percentile_us(0.99);
        prop_assert!(p50 <= p95 && p95 <= p99, "percentiles monotone: {p50} {p95} {p99}");
        let max = *samples.iter().max().unwrap();
        // Bucketed upper bound: within 2× of the true max.
        prop_assert!(h.percentile_us(1.0) <= max.max(1) * 2);
        let mean = h.mean_us();
        let true_mean = samples.iter().sum::<u64>() / samples.len() as u64;
        prop_assert_eq!(mean, true_mean);
    }

    // ---------- sharded slate cache vs single shard ----------

    #[test]
    fn sharded_cache_reads_match_single_shard(
        shards in 1usize..16,
        writes in proptest::collection::vec(("[a-h]", "[0-9a-f]{1,6}"), 1..60),
    ) {
        use muppet_runtime::cache::{FlushPolicy, NullBackend, SlateCache};
        use muppet_core::event::Key;
        use std::sync::Arc;
        // Ample capacity (no evictions): splitting the lock must be
        // invisible — every read returns exactly what a single-shard
        // cache returns, and entry accounting agrees.
        let single = SlateCache::new(1024, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let sharded =
            SlateCache::with_shards(1024, FlushPolicy::OnEvict, Arc::new(NullBackend), shards);
        let name: Arc<str> = Arc::from("U1");
        for (i, (key, value)) in writes.iter().enumerate() {
            let key = Key::from(key.as_str());
            for cache in [&single, &sharded] {
                let slot = cache.get_or_load(0, &name, &key, None, i as u64);
                let mut state = slot.state.lock();
                state.slate.replace(value.clone().into_bytes());
                cache.note_write(&slot, &mut state, i as u64);
            }
        }
        for (key, _) in &writes {
            let key = Key::from(key.as_str());
            prop_assert_eq!(single.read(0, &key), sharded.read(0, &key));
        }
        let (a, b) = (single.stats(), sharded.stats());
        prop_assert_eq!(a.entries, b.entries);
        prop_assert_eq!(a.hits + a.misses, b.hits + b.misses);
        prop_assert_eq!(a.dirty, b.dirty);
        let mut keys_a = single.keys_of(0);
        let mut keys_b = sharded.keys_of(0);
        keys_a.sort();
        keys_b.sort();
        prop_assert_eq!(keys_a, keys_b);
    }

    // ---------- overflow decisions ----------

    #[test]
    fn overflow_decisions_are_total_and_loop_free(external in any::<bool>(),
                                                  redirected in any::<bool>(),
                                                  stream in "[a-z]{1,8}") {
        for policy in [
            OverflowPolicy::DropAndLog,
            OverflowPolicy::OverflowStream(stream.clone()),
            OverflowPolicy::SourceThrottle,
        ] {
            let action = policy.decide(external, redirected);
            // A redirected event must never be redirected again (loop bound).
            if redirected {
                prop_assert!(!matches!(action, OverflowAction::Redirect(_)));
            }
            // Only external events may block the producer.
            if !external {
                prop_assert!(!matches!(action, OverflowAction::BlockProducer));
            }
        }
    }
}

// ---------- combiner fold-equivalence (DESIGN.md §14) ----------
//
// The combiner contract, engine-checked: with `EngineConfig::combine`
// on (and, in half the cases, dynamic hot-key splitting armed), an
// arbitrary interleaving of count events — optionally with a machine
// joining mid-stream, which exercises the subslate handoff path — must
// leave every slate bit-for-bit identical to per-event delivery.
mod fold_equivalence {
    use std::collections::BTreeMap;
    use std::time::Duration;

    use muppet_core::event::{Event, Key};
    use muppet_core::operator::{combine_decimal_sum, Emitter, FnUpdater, Updater};
    use muppet_core::slate::Slate;
    use muppet_core::workflow::Workflow;
    use muppet_runtime::engine::{Engine, EngineConfig, EngineKind, OperatorSet};
    use muppet_runtime::overflow::OverflowPolicy;
    use proptest::prelude::*;

    fn count_workflow() -> Workflow {
        let mut b = Workflow::builder("fold-eq");
        b.external_stream("S1");
        b.updater("counter", &["S1"]);
        b.build().unwrap()
    }

    fn counting_updater() -> impl Updater {
        FnUpdater::new("counter", |_: &mut dyn Emitter, ev: &Event, slate: &mut Slate| {
            let n: u64 = std::str::from_utf8(ev.value.as_ref())
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0);
            slate.incr_counter(n);
        })
        .with_combiner(combine_decimal_sum)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn folded_delivery_is_bit_for_bit_per_event(
            ranks in proptest::collection::vec((0usize..10, 1u64..5), 1..200),
            split_threshold in prop_oneof![Just(0u64), Just(8u64)],
            join_midstream in any::<bool>(),
        ) {
            let events: Vec<Event> = ranks
                .iter()
                .enumerate()
                .map(|(i, (rank, v))| {
                    Event::new("S1", (i + 1) as u64, Key::from(format!("k{rank}")),
                               v.to_string().into_bytes())
                })
                .collect();
            // Per-event ground truth: the decimal sum per key, rendered
            // exactly as the updater renders it.
            let mut truth: BTreeMap<String, u64> = BTreeMap::new();
            for (rank, v) in &ranks {
                *truth.entry(format!("k{rank}")).or_insert(0) += v;
            }
            let cfg = EngineConfig {
                kind: EngineKind::Muppet2,
                machines: 2,
                workers_per_machine: 2,
                workers_per_op: 2,
                overflow: OverflowPolicy::SourceThrottle,
                queue_capacity: 512,
                combine: true,
                hot_split_threshold: split_threshold,
                ..EngineConfig::default()
            };
            let engine = Engine::start(
                count_workflow(),
                OperatorSet::new().updater(counting_updater()),
                cfg,
                None,
            )
            .unwrap();
            if join_midstream {
                let (first, second) = events.split_at(events.len() / 2);
                engine.submit_many(first.to_vec()).unwrap();
                engine.join_machine().unwrap();
                engine.submit_many(second.to_vec()).unwrap();
            } else {
                engine.submit_many(events).unwrap();
            }
            prop_assert!(engine.drain(Duration::from_secs(60)), "engine must drain");
            for (key, total) in &truth {
                let bytes = engine.read_slate("counter", &Key::from(key.as_str()));
                prop_assert_eq!(
                    bytes.as_deref(),
                    Some(total.to_string().as_bytes()),
                    "key {} must read back bit-for-bit", key
                );
            }
            let stats = engine.shutdown();
            prop_assert_eq!(stats.dropped_overflow, 0);
            prop_assert_eq!(stats.lost_machine_failure + stats.lost_in_queues, 0);
        }
    }
}
