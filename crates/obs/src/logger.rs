//! Leveled structured logging: JSON-lines or human text, one `write`
//! per record so concurrent threads never interleave mid-line.
//!
//! Replaces the scattered `eprintln!` paths: every record carries the
//! machine id, and call sites attach epoch/op/key fields. The engine
//! logs operational *incidents* here (peer deaths, flush failures) —
//! exactly once each — while the bounded [`DropLog`]-style rings keep
//! their per-event forensic entries.
//!
//! [`DropLog`]: ../muppet_runtime/overflow/struct.DropLog.html

use std::io::Write;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Record severity. `Off` disables everything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Hot-path tracing (never on by default).
    Debug,
    /// Lifecycle events (startup, join, shutdown).
    Info,
    /// Incidents the cluster survives (peer death, flush failure).
    #[default]
    Warn,
    /// Incidents that lose data or abort operations.
    Error,
    /// Log nothing.
    Off,
}

impl Level {
    /// Parse a level name (`debug`/`info`/`warn`/`error`/`off`).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            "off" | "none" => Some(Level::Off),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
            Level::Off => "off",
        }
    }
}

/// A typed field value, so JSON output keeps numbers as numbers.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// Unsigned number.
    U64(u64),
    /// Signed number.
    I64(i64),
    /// Float.
    F64(f64),
    /// Text.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

type Sink = Box<dyn Fn(&str) + Send + Sync>;

/// A leveled logger. Cheap to share (`Arc<Logger>`); a disabled logger
/// costs one branch per call site.
pub struct Logger {
    min: Level,
    json: bool,
    machine: Option<u64>,
    /// `None` writes to stderr; tests capture lines through a sink.
    sink: Option<Sink>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("min", &self.min)
            .field("json", &self.json)
            .field("machine", &self.machine)
            .finish()
    }
}

impl Logger {
    /// A logger that drops everything.
    pub fn disabled() -> Arc<Logger> {
        Arc::new(Logger { min: Level::Off, json: false, machine: None, sink: None })
    }

    /// A stderr logger at `min` severity; `json` selects JSON-lines over
    /// human text; `machine` stamps every record.
    pub fn stderr(min: Level, json: bool, machine: Option<u64>) -> Arc<Logger> {
        Arc::new(Logger { min, json, machine, sink: None })
    }

    /// A logger delivering rendered lines to `sink` (tests).
    pub fn with_sink(
        min: Level,
        json: bool,
        machine: Option<u64>,
        sink: impl Fn(&str) + Send + Sync + 'static,
    ) -> Arc<Logger> {
        Arc::new(Logger { min, json, machine, sink: Some(Box::new(sink)) })
    }

    /// Whether records at `level` would be written.
    pub fn enabled(&self, level: Level) -> bool {
        self.min != Level::Off && level >= self.min
    }

    /// Write one record.
    pub fn log(&self, level: Level, msg: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled(level) {
            return;
        }
        let ts_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        let line = if self.json {
            let mut s = String::with_capacity(128);
            s.push_str(&format!(
                "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"msg\":\"{}\"",
                level.as_str(),
                escape_json(msg)
            ));
            if let Some(m) = self.machine {
                s.push_str(&format!(",\"machine\":{m}"));
            }
            for (k, v) in fields {
                s.push_str(&format!(",\"{}\":", escape_json(k)));
                match v {
                    FieldValue::U64(n) => s.push_str(&n.to_string()),
                    FieldValue::I64(n) => s.push_str(&n.to_string()),
                    FieldValue::F64(n) if n.is_finite() => s.push_str(&n.to_string()),
                    FieldValue::F64(n) => s.push_str(&format!("\"{n}\"")),
                    FieldValue::Str(t) => s.push_str(&format!("\"{}\"", escape_json(t))),
                }
            }
            s.push('}');
            s
        } else {
            let mut s = String::with_capacity(96);
            s.push_str(&format!("[{:>5}]", level.as_str()));
            if let Some(m) = self.machine {
                s.push_str(&format!(" m{m}"));
            }
            s.push(' ');
            s.push_str(msg);
            for (k, v) in fields {
                match v {
                    FieldValue::U64(n) => s.push_str(&format!(" {k}={n}")),
                    FieldValue::I64(n) => s.push_str(&format!(" {k}={n}")),
                    FieldValue::F64(n) => s.push_str(&format!(" {k}={n}")),
                    FieldValue::Str(t) => s.push_str(&format!(" {k}={t:?}")),
                }
            }
            s
        };
        match &self.sink {
            Some(sink) => sink(&line),
            None => {
                // One write per record: concurrent threads cannot
                // interleave mid-line.
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{line}");
            }
        }
    }

    /// Log at [`Level::Debug`].
    pub fn debug(&self, msg: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Debug, msg, fields);
    }

    /// Log at [`Level::Info`].
    pub fn info(&self, msg: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Info, msg, fields);
    }

    /// Log at [`Level::Warn`].
    pub fn warn(&self, msg: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Warn, msg, fields);
    }

    /// Log at [`Level::Error`].
    pub fn error(&self, msg: &str, fields: &[(&str, FieldValue)]) {
        self.log(Level::Error, msg, fields);
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::sync::Mutex;

    fn capture(
        min: Level,
        json: bool,
        machine: Option<u64>,
    ) -> (Arc<Logger>, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let logger =
            Logger::with_sink(min, json, machine, move |l| sink_lines.lock().push(l.to_string()));
        (logger, lines)
    }

    #[test]
    fn levels_filter() {
        let (logger, lines) = capture(Level::Warn, false, None);
        logger.info("quiet", &[]);
        logger.warn("loud", &[]);
        logger.error("louder", &[]);
        let lines = lines.lock();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("loud"));
    }

    #[test]
    fn off_disables_everything() {
        let (logger, lines) = capture(Level::Off, false, None);
        logger.error("nope", &[]);
        assert!(lines.lock().is_empty());
        assert!(!logger.enabled(Level::Error));
    }

    #[test]
    fn json_lines_are_valid_json_objects() {
        let (logger, lines) = capture(Level::Info, true, Some(3));
        logger.warn(
            "peer \"dead\"",
            &[("epoch", 7u64.into()), ("op", "count_tags".into()), ("lost", 12u64.into())],
        );
        let lines = lines.lock();
        let line = &lines[0];
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"level\":\"warn\""), "{line}");
        assert!(line.contains("\"machine\":3"), "{line}");
        assert!(line.contains("\"epoch\":7"), "{line}");
        assert!(line.contains("\"op\":\"count_tags\""), "{line}");
        assert!(line.contains("\"msg\":\"peer \\\"dead\\\"\""), "{line}");
    }

    #[test]
    fn text_lines_carry_fields() {
        let (logger, lines) = capture(Level::Debug, false, Some(0));
        logger.debug("event", &[("key", "k1".into()), ("n", 5u64.into())]);
        let lines = lines.lock();
        assert!(lines[0].contains("m0"), "{}", lines[0]);
        assert!(lines[0].contains("key=\"k1\""), "{}", lines[0]);
        assert!(lines[0].contains("n=5"), "{}", lines[0]);
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Warn < Level::Error);
    }
}
