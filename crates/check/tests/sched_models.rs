//! Schedule-perturbed runs of the three protocol models (DESIGN.md §12).
//!
//! Each correct protocol is driven through 1000+ seeded interleavings
//! and must hold its invariants on every one. Each deliberately-broken
//! variant must be *caught* within a bounded seed sweep — the negative
//! control proving the harness has teeth: if the broken build passes,
//! the harness (not the protocol) is what regressed.
//!
//! Under `--features lock-audit` the shim additionally fires
//! [`muppet_check::sched::hook`] at every lock acquisition, multiplying
//! the perturbation points beyond the models' explicit `point()` calls.

use muppet_check::models;

const SEEDS: u64 = 1000;

/// With `lock-audit` on, perturb at every shim lock acquisition too.
fn arm_hook() {
    #[cfg(feature = "lock-audit")]
    muppet_core::sync::audit::set_sched_hook(Some(muppet_check::sched::hook));
}

fn assert_clean(name: &str, seed: u64, out: &models::Outcome) {
    assert_eq!(
        out.violations, 0,
        "{name} violated its invariants under seed {seed}: {:?}",
        out.notes
    );
}

#[test]
fn group_commit_holds_over_1000_interleavings() {
    arm_hook();
    let mut batches = 0u64;
    for seed in 0..SEEDS {
        let out = models::run_group_commit(seed, 3, 4, false);
        assert_clean("group commit", seed, &out);
        batches += out.work;
    }
    // Shape sanity: commits actually batched (fewer batches than records)
    // while still committing everything — otherwise the model degenerated
    // into one-append-per-fsync and explored nothing.
    assert!(batches > 0 && batches < SEEDS * 3 * 4, "batches = {batches}");
}

#[test]
fn group_commit_negative_control_lost_wakeup_is_caught() {
    arm_hook();
    // The broken variant notifies without holding the cv mutex: a
    // follower that saw a stale watermark but has not yet parked misses
    // the wakeup forever and only the timeout rescues it. Some seed in
    // the sweep must land the race; stop at the first catch.
    let caught = (0..SEEDS).any(|seed| {
        let out = models::run_group_commit(seed, 3, 4, true);
        out.notes.iter().any(|n| n.contains("lost wakeup"))
    });
    assert!(caught, "harness failed to catch the naked-notify lost wakeup in {SEEDS} seeds");
}

#[test]
fn single_flight_holds_over_1000_interleavings() {
    arm_hook();
    for seed in 0..SEEDS {
        let out = models::run_single_flight(seed, 4, false);
        assert_clean("single flight", seed, &out);
        assert_eq!(out.work, 1, "exactly one backend load (seed {seed})");
    }
}

#[test]
fn single_flight_negative_control_early_resolve_is_caught() {
    arm_hook();
    // The broken variant resolves the flight before installing the
    // value: a woken waiter retries, finds neither value nor flight, and
    // elects itself a second leader — the stampede shows up as duplicate
    // backend loads.
    let caught = (0..SEEDS).any(|seed| {
        let out = models::run_single_flight(seed, 4, true);
        out.notes.iter().any(|n| n.contains("backend loads"))
    });
    assert!(caught, "harness failed to catch resolve-before-install in {SEEDS} seeds");
}

#[test]
fn flush_cas_holds_over_1000_interleavings() {
    arm_hook();
    for seed in 0..SEEDS {
        let out = models::run_flush_cas(seed, 64, false);
        assert_clean("flush CAS", seed, &out);
    }
}

#[test]
fn flush_cas_negative_control_blind_mark_is_caught() {
    arm_hook();
    // The broken variant marks the CURRENT version flushed after writing
    // an older snapshot: a mutation landing during the write loses its
    // dirty bit and the final state diverges from the store.
    let caught = (0..SEEDS).any(|seed| {
        let out = models::run_flush_cas(seed, 64, true);
        out.notes.iter().any(|n| n.contains("dirty bit"))
    });
    assert!(caught, "harness failed to catch the blind flushed-version mark in {SEEDS} seeds");
}
