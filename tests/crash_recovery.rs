//! Crash recovery end-to-end (DESIGN.md §11): the ingest WAL makes every
//! accepted event durable before the submit is acked, so a `kill -9` loses
//! nothing — the restarted node replays the uncheckpointed WAL suffix and
//! converges to the exact counts the single-threaded reference model
//! produces. SIGTERM is the clean path: checkpoint, exit 0, zero replay.
//! Poison events (a panicking updater) never kill a worker — they park in
//! the dead-letter queue and can be retried once the operator is fixed.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use muppet::apps::retailer;
use muppet::prelude::*;
use muppet::runtime::engine::OperatorSet;
use muppet::runtime::http::percent_encode;
use muppet::slatestore::util::TempDir;

fn http(method: &str, port: u16, path: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(&mut reader, &mut body)?;
    Ok((code, body))
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while !cond() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    true
}

/// The checkin bodies the test ingests: five recognized retailers plus one
/// venue the mapper drops.
const VENUES: [&str; 6] =
    ["Wal-Mart Supercenter", "Sam's Club", "Best Buy", "Target", "JCPenney", "Joe's Coffee"];

fn checkin(i: usize) -> String {
    format!(r#"{{"user":"u{i}","venue":{{"name":"{}"}}}}"#, VENUES[i % VENUES.len()])
}

/// Expected per-retailer counts for `checkin(0..n)`, from the golden
/// single-threaded model — the restart must be bit-exact against these.
fn reference_counts(n: usize) -> Vec<(String, u64)> {
    let wf = retailer::workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.register_mapper(retailer::RetailerMapper::new());
    exec.register_updater(retailer::Counter::new());
    for i in 0..n {
        exec.push_external(
            retailer::CHECKIN_STREAM,
            Event::new(retailer::CHECKIN_STREAM, i as u64, Key::from(format!("u{i}")), checkin(i)),
        );
    }
    exec.run_to_completion().unwrap();
    exec.slates_of(retailer::COUNTER)
        .into_iter()
        .map(|(key, slate)| (String::from_utf8(key.as_bytes().to_vec()).unwrap(), slate.counter()))
        .collect()
}

struct Node {
    child: Option<Child>,
}

impl Drop for Node {
    fn drop(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Node {
    /// SIGKILL — the crash under test.
    fn kill9(&mut self) {
        let mut child = self.child.take().unwrap();
        child.kill().unwrap();
        child.wait().unwrap();
    }

    /// SIGTERM — the clean-shutdown path. Returns the exit status.
    fn sigterm(&mut self) -> std::process::ExitStatus {
        let mut child = self.child.take().unwrap();
        let pid = child.id().to_string();
        let ok = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        assert!(ok, "could not deliver SIGTERM to pid {pid}");
        child.wait().unwrap()
    }
}

/// Spawn a single-machine `muppetd` with a durable ingest WAL and wait for
/// its HTTP endpoint. `peers` pins the ports so a restart reuses them.
fn spawn_node(peers: &str, http_port: u16, data_dir: &str, wal: &str) -> Node {
    let child = Command::new(env!("CARGO_BIN_EXE_muppetd"))
        .args([
            "--peers",
            peers,
            "--node",
            "0",
            "--app",
            "retailer",
            "--store-host",
            "0",
            "--data-dir",
            data_dir,
            "--ingest-wal",
            wal,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn muppetd");
    let mut node = Node { child: Some(child) };
    let ready = wait_until(Duration::from_secs(20), || {
        if let Some(child) = node.child.as_mut() {
            if let Ok(Some(status)) = child.try_wait() {
                panic!("muppetd exited before becoming ready: {status}");
            }
        }
        matches!(http("GET", http_port, "/status", b""), Ok((200, _)))
    });
    assert!(ready, "muppetd never became ready on http port {http_port}");
    node
}

fn slate_count(port: u16, retailer_name: &str) -> Option<String> {
    let path = format!("/slate/{}/{}", retailer::COUNTER, percent_encode(retailer_name.as_bytes()));
    match http("GET", port, &path, b"") {
        Ok((200, body)) => Some(String::from_utf8(body).unwrap()),
        _ => None,
    }
}

fn counts_match(port: u16, expected: &[(String, u64)]) -> bool {
    expected.iter().all(|(r, n)| slate_count(port, r).as_deref() == Some(n.to_string().as_str()))
}

#[test]
fn kill_minus_9_mid_ingest_then_restart_replays_to_bit_exact_counts() {
    const N: usize = 120;
    let dir = TempDir::new("crash-recovery").unwrap();
    let data_dir = dir.path().join("store");
    let wal = dir.path().join("ingest.log");
    let topology = muppet::net::Topology::loopback_ephemeral(1, true).unwrap();
    let spec = &topology.nodes[0];
    let peers = format!("{}:{}:{}", spec.host, spec.port, spec.http_port);
    let port = spec.http_port;

    let mut node = spawn_node(&peers, port, data_dir.to_str().unwrap(), wal.to_str().unwrap());

    // Every POST below is acked only after the event is durable in the
    // ingest WAL — so nothing acked here may be missing after the crash.
    for i in 0..N {
        let (code, body) =
            http("POST", port, &format!("/submit/S1/u{i}"), checkin(i).as_bytes()).unwrap();
        assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    }

    // Crash hard, mid-ingest: no drain, no flush, no checkpoint.
    node.kill9();

    // Restart on the same ports, same store, same WAL.
    let node2 = spawn_node(&peers, port, data_dir.to_str().unwrap(), wal.to_str().unwrap());

    // The node replayed the un-checkpointed suffix (everything: the crash
    // preceded any checkpoint) ...
    let (code, status) = http("GET", port, "/status", b"").unwrap();
    assert_eq!(code, 200);
    let status = String::from_utf8(status).unwrap();
    assert!(
        status.contains(&format!("\"recovered_replayed\":{N}")),
        "expected a full replay of {N} events in {status}"
    );
    // ... and converges to the reference model's exact counts.
    let expected = reference_counts(N);
    assert!(!expected.is_empty());
    assert!(
        wait_until(Duration::from_secs(20), || counts_match(port, &expected)),
        "replayed counts never matched the reference: expected {expected:?}"
    );
    drop(node2);
}

#[test]
fn sigterm_checkpoints_exits_zero_and_restart_replays_nothing() {
    const N: usize = 90;
    let dir = TempDir::new("sigterm-checkpoint").unwrap();
    let data_dir = dir.path().join("store");
    let wal = dir.path().join("ingest.log");
    let topology = muppet::net::Topology::loopback_ephemeral(1, true).unwrap();
    let spec = &topology.nodes[0];
    let peers = format!("{}:{}:{}", spec.host, spec.port, spec.http_port);
    let port = spec.http_port;

    let mut node = spawn_node(&peers, port, data_dir.to_str().unwrap(), wal.to_str().unwrap());
    for i in 0..N {
        let (code, _) =
            http("POST", port, &format!("/submit/S1/u{i}"), checkin(i).as_bytes()).unwrap();
        assert_eq!(code, 200);
    }
    let expected = reference_counts(N);
    assert!(
        wait_until(Duration::from_secs(20), || counts_match(port, &expected)),
        "counts never converged before the SIGTERM"
    );

    // Clean shutdown: drain + flush + cursor + fsync, then exit 0.
    let status = node.sigterm();
    assert_eq!(status.code(), Some(0), "SIGTERM must exit 0 after a clean checkpoint");

    // The restart finds the cursor at the WAL's end: zero replay.
    let node2 = spawn_node(&peers, port, data_dir.to_str().unwrap(), wal.to_str().unwrap());
    let (_, status) = http("GET", port, "/status", b"").unwrap();
    let status = String::from_utf8(status).unwrap();
    assert!(
        status.contains("\"recovered_replayed\":0"),
        "a checkpointed restart must replay nothing: {status}"
    );

    // Exactly-once across the restart: one more Walmart checkin continues
    // the persisted count — no duplicate replay inflated it.
    let walmart_before = expected.iter().find(|(r, _)| r == "Walmart").map(|(_, n)| *n).unwrap();
    let (code, _) = http("POST", port, "/submit/S1/after", checkin(0).as_bytes()).unwrap();
    assert_eq!(code, 200);
    assert!(
        wait_until(Duration::from_secs(20), || slate_count(port, "Walmart").as_deref()
            == Some((walmart_before + 1).to_string().as_str())),
        "post-restart count must continue exactly from the checkpointed value"
    );
    drop(node2);
}

// ---------------------------------------------------------------------------
// Engine-level recovery: in-process machines, full control of the WAL file.
// ---------------------------------------------------------------------------

/// A per-key decimal counter with full control over inputs.
struct CountUpdater;

impl Updater for CountUpdater {
    fn name(&self) -> &str {
        "counter"
    }
    fn update(&self, _ctx: &mut dyn Emitter, _event: &Event, slate: &mut Slate) {
        let n = slate.as_str().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
        slate.replace((n + 1).to_string().into_bytes());
    }
}

fn count_workflow() -> Workflow {
    let mut b = Workflow::builder("crash-count");
    b.external_stream("S1");
    b.updater("counter", &["S1"]);
    b.build().unwrap()
}

fn count_engine(wal: &std::path::Path) -> Engine {
    let cfg = EngineConfig {
        machines: 2,
        workers_per_machine: 2,
        ingest_wal: Some(wal.to_path_buf()),
        ..EngineConfig::default()
    };
    Engine::start(count_workflow(), OperatorSet::new().updater(CountUpdater), cfg, None).unwrap()
}

#[test]
fn wal_replay_reproduces_reference_counts_and_truncates_a_torn_tail() {
    const KEYS: usize = 10;
    const PER_KEY: usize = 12;
    let dir = TempDir::new("engine-replay").unwrap();
    let wal = dir.file("ingest.log");

    // The reference slates for the same event sequence.
    let wf = count_workflow();
    let mut exec = ReferenceExecutor::new(&wf);
    exec.register_updater(CountUpdater);
    let events: Vec<Event> = (0..KEYS * PER_KEY)
        .map(|i| Event::new("S1", i as u64, Key::from(format!("k-{}", i % KEYS)), "e"))
        .collect();
    for ev in &events {
        exec.push_external("S1", ev.clone());
    }
    exec.run_to_completion().unwrap();

    // First life: ingest everything (each submit is WAL-durable), then
    // shut down. Without a store there is nowhere to persist the replay
    // cursor, so the next start replays the whole log — the §4.3 "machine
    // reborn from its log" posture.
    let e1 = count_engine(&wal);
    for ev in &events {
        e1.submit(ev.clone()).unwrap();
    }
    assert!(e1.drain(Duration::from_secs(20)));
    e1.shutdown();

    // Torn tail: a crash mid-append leaves a partial frame. Recovery must
    // truncate it, replay the intact prefix, and keep appending cleanly.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
    }

    let e2 = count_engine(&wal);
    assert_eq!(e2.recovered_replayed(), (KEYS * PER_KEY) as u64, "full replay expected");
    let all_match = wait_until(Duration::from_secs(20), || {
        (0..KEYS).all(|k| {
            let key = Key::from(format!("k-{k}"));
            let reference = exec.slate("counter", &key).unwrap();
            e2.read_slate("counter", &key).as_deref() == Some(reference.bytes())
        })
    });
    assert!(all_match, "replayed slates must be bit-exact against the reference model");

    // The truncated log accepts new appends: one more event, one more
    // record, and the count advances.
    e2.submit(Event::new("S1", 10_000, Key::from("k-0"), "e")).unwrap();
    assert!(e2.drain(Duration::from_secs(10)));
    let (records, _) = e2.ingest_wal_stats().unwrap();
    assert_eq!(records, (KEYS * PER_KEY + 1) as u64);
    assert_eq!(
        e2.read_slate("counter", &Key::from("k-0")).as_deref(),
        Some((PER_KEY + 1).to_string().as_bytes())
    );
    e2.shutdown();
}

/// An updater that panics on `"boom"` payloads until the shared flag says
/// the bug is fixed — the poison-event stand-in.
struct PoisonUpdater {
    fixed: Arc<AtomicBool>,
}

impl Updater for PoisonUpdater {
    fn name(&self) -> &str {
        "poison"
    }
    fn update(&self, _ctx: &mut dyn Emitter, event: &Event, slate: &mut Slate) {
        if !self.fixed.load(Ordering::Acquire) && event.value.as_ref() == b"boom" {
            panic!("poison payload");
        }
        let n = slate.as_str().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
        slate.replace((n + 1).to_string().into_bytes());
    }
}

#[test]
fn panicking_updater_is_contained_dead_lettered_and_retryable() {
    let fixed = Arc::new(AtomicBool::new(false));
    let mut b = Workflow::builder("poison-wf");
    b.external_stream("S1");
    b.updater("poison", &["S1"]);
    let wf = b.build().unwrap();
    let cfg = EngineConfig { machines: 2, workers_per_machine: 2, ..EngineConfig::default() };
    let engine = Engine::start(
        wf,
        OperatorSet::new().updater(PoisonUpdater { fixed: Arc::clone(&fixed) }),
        cfg,
        None,
    )
    .unwrap();

    // Good traffic around one poison event. The panic must not kill the
    // worker: everything else processes and the drain converges.
    for i in 0..40u64 {
        engine.submit(Event::new("S1", i, Key::from("good"), "e")).unwrap();
    }
    engine.submit(Event::new("S1", 40, Key::from("bad"), "boom")).unwrap();
    for i in 41..81u64 {
        engine.submit(Event::new("S1", i, Key::from("good"), "e")).unwrap();
    }
    assert!(engine.drain(Duration::from_secs(20)), "drain must converge past the poison event");
    assert_eq!(engine.read_slate("poison", &Key::from("good")).as_deref(), Some(b"80".as_ref()));
    assert_eq!(engine.stats().processed, 80, "the dead-lettered event is not 'processed'");
    assert_eq!(engine.dlq().depth(), 1);
    let json = engine.dlq_json();
    assert!(json.contains("poison") && json.contains("boom"), "{json}");

    // Retry while still broken: the event poisons again and comes back.
    assert_eq!(engine.dlq_retry(), 1);
    assert!(
        wait_until(Duration::from_secs(10), || engine.dlq().depth() == 1),
        "an unfixed poison event must return to the DLQ"
    );
    assert_eq!(engine.dlq().retried(), 1);
    assert_eq!(engine.read_slate("poison", &Key::from("bad")), None, "no partial state leaked");

    // Fix the operator; the retry drains the queue and applies the event.
    fixed.store(true, Ordering::Release);
    assert_eq!(engine.dlq_retry(), 1);
    assert!(
        wait_until(Duration::from_secs(10), || engine.dlq().depth() == 0
            && engine.read_slate("poison", &Key::from("bad")).as_deref() == Some(b"1".as_ref())),
        "a fixed poison event must finally apply"
    );
    engine.shutdown();
}
