//! The commit log (write-ahead log) of a storage node.
//!
//! Cassandra acknowledges a write once it is in the commit log and the
//! memtable; the memtable reaches disk later as an SSTable. Our node does
//! the same so that "persistent slates help resuming, restarting, or
//! recovering the application from crashes" (§4.2): on restart, the WAL
//! segments written since the last flush replay into a fresh memtable.
//!
//! ## Record framing
//!
//! ```text
//! [u32 crc32c over payload][u32 payload_len][payload]
//! payload := [len-prefixed row][len-prefixed column][u8 flags]
//!            [varint write_ts][varint ttl_secs+1 (0 = none)]
//!            [len-prefixed value]
//! ```
//!
//! Replay stops cleanly at the first torn/corrupt record — the tail of a
//! crashed write must not poison recovery.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use muppet_core::codec::{crc32c, get_u32, put_u32};

use crate::record::{decode_cell, encode_cell};
use crate::types::{Cell, CellKey, StoreError, StoreResult};

/// Append-only writer for one WAL segment file.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    out: BufWriter<File>,
    records: u64,
    bytes: u64,
    /// fsync after every append — or, via [`WalWriter::append_many`], once
    /// per *batch* (group commit) — versus relying on OS flush.
    sync_each: bool,
    /// fsyncs issued (the group-commit observable: N appends under
    /// `sync_each` cost N syncs; one `append_many` of N records costs 1).
    syncs: u64,
}

impl WalWriter {
    /// Create (truncate) a segment at `path`. Callers that may be
    /// re-opening a segment they still need to recover from must use
    /// [`WalWriter::open_or_create`] instead — `create` destroys exactly
    /// the records a restart would replay.
    pub fn create(path: impl AsRef<Path>, sync_each: bool) -> StoreResult<WalWriter> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        Ok(WalWriter { path, out: BufWriter::new(file), records: 0, bytes: 0, sync_each, syncs: 0 })
    }

    /// Open an existing segment for appending — replaying its intact
    /// prefix first — or create it fresh if absent. A torn tail (the
    /// half-written frame of a crashed append) is cut off at the last
    /// intact record boundary, so new appends land on a clean frame
    /// boundary instead of behind garbage that would poison every later
    /// replay. Returns the positioned writer plus the replayed records;
    /// `record_count`/`byte_count` continue from the recovered prefix.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        sync_each: bool,
    ) -> StoreResult<(WalWriter, WalReplay)> {
        use std::io::Seek;
        let path = path.as_ref().to_path_buf();
        let replayed = replay(&path)?;
        let mut file = OpenOptions::new().create(true).truncate(false).write(true).open(&path)?;
        if replayed.truncated {
            file.set_len(replayed.valid_bytes)?;
        }
        file.seek(std::io::SeekFrom::Start(replayed.valid_bytes))?;
        let writer = WalWriter {
            path,
            out: BufWriter::new(file),
            records: replayed.records.len() as u64,
            bytes: replayed.valid_bytes,
            sync_each,
            syncs: 0,
        };
        Ok((writer, replayed))
    }

    /// Write one framed record into the buffer (no sync decision).
    fn write_record(&mut self, key: &CellKey, cell: &Cell) -> StoreResult<()> {
        let payload = encode_record(key, cell);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, crc32c(&payload));
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        self.out.write_all(&frame)?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Make everything written so far durable (flush + fsync). Callers
    /// that batch appends without `sync_each` (checkpointing an ingest
    /// log, graceful shutdown) use this to draw an explicit durability
    /// line.
    pub fn sync(&mut self) -> StoreResult<()> {
        self.out.flush()?;
        muppet_core::sync::audit::blocking_io("wal fsync");
        self.out.get_ref().sync_data()?;
        self.syncs += 1;
        Ok(())
    }

    /// Append one cell write.
    pub fn append(&mut self, key: &CellKey, cell: &Cell) -> StoreResult<()> {
        self.write_record(key, cell)?;
        if self.sync_each {
            self.sync()?;
        }
        Ok(())
    }

    /// Append a run of cell writes as one group commit: all records enter
    /// the buffer, then — under `sync_each` — ONE fsync makes the whole
    /// batch durable, instead of one per record. The §4.2 write-behind
    /// pipeline's durability amortization: a flush tick of N dirty slates
    /// pays one disk sync, not N.
    pub fn append_many(&mut self, entries: &[(CellKey, Cell)]) -> StoreResult<()> {
        for (key, cell) in entries {
            self.write_record(key, cell)?;
        }
        if self.sync_each && !entries.is_empty() {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush buffered frames to the OS.
    pub fn flush(&mut self) -> StoreResult<()> {
        self.out.flush()?;
        Ok(())
    }

    /// fsyncs issued so far (group-commit accounting).
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Records appended so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Bytes appended so far (framed).
    pub fn byte_count(&self) -> u64 {
        self.bytes
    }

    /// Path of this segment.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn encode_record(key: &CellKey, cell: &Cell) -> Vec<u8> {
    let mut payload = Vec::with_capacity(key.row.len() + key.column.len() + cell.value.len() + 24);
    encode_cell(&mut payload, key, cell);
    payload
}

fn decode_record(payload: &[u8]) -> StoreResult<(CellKey, Cell)> {
    let (rec, n) = decode_cell(payload)?;
    if n != payload.len() {
        return Err(StoreError::Corrupt("wal record: trailing bytes".into()));
    }
    Ok(rec)
}

/// Outcome of replaying one WAL segment.
#[derive(Debug)]
pub struct WalReplay {
    /// Recovered writes, in append order.
    pub records: Vec<(CellKey, Cell)>,
    /// True if replay stopped early at a torn/corrupt record.
    pub truncated: bool,
    /// Bytes of intact framed records (the boundary a torn tail is cut
    /// back to by [`WalWriter::open_or_create`]).
    pub valid_bytes: u64,
}

/// Replay a segment file. Missing file ⟹ empty replay (fresh node).
pub fn replay(path: impl AsRef<Path>) -> StoreResult<WalReplay> {
    let path = path.as_ref();
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReplay { records: Vec::new(), truncated: false, valid_bytes: 0 });
        }
        Err(e) => return Err(e.into()),
    }
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut truncated = false;
    while offset < data.len() {
        let Some(crc) = get_u32(&data, offset) else {
            truncated = true;
            break;
        };
        let Some(len) = get_u32(&data, offset + 4) else {
            truncated = true;
            break;
        };
        let start = offset + 8;
        let end = start + len as usize;
        if end > data.len() {
            truncated = true;
            break;
        }
        let payload = &data[start..end];
        if crc32c(payload) != crc {
            truncated = true;
            break;
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                truncated = true;
                break;
            }
        }
        offset = end;
    }
    Ok(WalReplay { records, truncated, valid_bytes: offset as u64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::TempDir;

    fn sample(i: u64) -> (CellKey, Cell) {
        (
            CellKey::new(format!("row-{i}"), "U1"),
            Cell::live(format!("value-{i}"), i, if i.is_multiple_of(2) { Some(60) } else { None }),
        )
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("wal-0.log");
        let mut w = WalWriter::create(&path, false).unwrap();
        let expected: Vec<_> = (0..100).map(sample).collect();
        for (k, c) in &expected {
            w.append(k, c).unwrap();
        }
        w.flush().unwrap();
        assert_eq!(w.record_count(), 100);
        assert!(w.byte_count() > 0);

        let replayed = replay(&path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(replayed.records, expected);
    }

    #[test]
    fn tombstones_and_ttls_survive_replay() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("w.log");
        let mut w = WalWriter::create(&path, true).unwrap();
        let key = CellKey::new("k", "U");
        w.append(&key, &Cell::live("v", 7, Some(0))).unwrap();
        w.append(&key, &Cell::tombstone(8)).unwrap();
        drop(w);
        let rec = replay(&path).unwrap().records;
        assert_eq!(rec[0].1.ttl_secs, Some(0), "ttl=0 is distinct from no ttl");
        assert!(rec[1].1.tombstone);
        assert_eq!(rec[1].1.write_ts, 8);
    }

    #[test]
    fn append_many_group_commits_with_one_sync() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("group.log");
        let mut w = WalWriter::create(&path, true).unwrap();
        let expected: Vec<_> = (0..64).map(sample).collect();
        w.append_many(&expected).unwrap();
        assert_eq!(w.record_count(), 64);
        assert_eq!(w.sync_count(), 1, "one fsync for the whole batch (group commit)");
        w.append_many(&[]).unwrap();
        assert_eq!(w.sync_count(), 1, "an empty batch syncs nothing");
        drop(w);
        let replayed = replay(&path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(replayed.records, expected, "group commit is byte-identical to appends");
    }

    #[test]
    fn per_record_appends_sync_each_time() {
        let dir = TempDir::new("wal").unwrap();
        let mut w = WalWriter::create(dir.file("each.log"), true).unwrap();
        for i in 0..5 {
            let (k, c) = sample(i);
            w.append(&k, &c).unwrap();
        }
        assert_eq!(w.sync_count(), 5, "sync_each without batching = one fsync per record");
        // Without sync_each, neither path fsyncs.
        let mut w2 = WalWriter::create(dir.file("lazy.log"), false).unwrap();
        let entries: Vec<_> = (0..5).map(sample).collect();
        w2.append_many(&entries).unwrap();
        assert_eq!(w2.sync_count(), 0);
    }

    #[test]
    fn missing_file_is_empty_replay() {
        let dir = TempDir::new("wal").unwrap();
        let r = replay(dir.file("nonexistent.log")).unwrap();
        assert!(r.records.is_empty());
        assert!(!r.truncated);
    }

    #[test]
    fn torn_tail_stops_replay_cleanly() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("torn.log");
        let mut w = WalWriter::create(&path, false).unwrap();
        for i in 0..10 {
            let (k, c) = sample(i);
            w.append(&k, &c).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        // Tear the file mid-record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.truncated);
        assert_eq!(r.records.len(), 9, "only the torn record is lost");
    }

    #[test]
    fn bitflip_detected_by_crc() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("flip.log");
        let mut w = WalWriter::create(&path, false).unwrap();
        for i in 0..3 {
            let (k, c) = sample(i);
            w.append(&k, &c).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.truncated);
        assert!(r.records.len() < 3);
    }

    #[test]
    fn create_truncates_existing_segment() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("re.log");
        {
            let mut w = WalWriter::create(&path, false).unwrap();
            let (k, c) = sample(1);
            w.append(&k, &c).unwrap();
            w.flush().unwrap();
        }
        let w2 = WalWriter::create(&path, false).unwrap();
        drop(w2);
        let r = replay(&path).unwrap();
        assert!(r.records.is_empty(), "create() starts a fresh segment");
    }

    #[test]
    fn open_or_create_double_restart_loses_nothing() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("restart.log");
        let first: Vec<_> = (0..8).map(sample).collect();
        {
            let mut w = WalWriter::create(&path, false).unwrap();
            w.append_many(&first).unwrap();
            w.flush().unwrap();
        }
        // First restart: the segment must survive reopening and keep counting
        // from the recovered prefix.
        let second: Vec<_> = (8..12).map(sample).collect();
        {
            let (mut w, replayed) = WalWriter::open_or_create(&path, false).unwrap();
            assert!(!replayed.truncated);
            assert_eq!(replayed.records, first);
            assert_eq!(w.record_count(), 8);
            w.append_many(&second).unwrap();
            w.flush().unwrap();
            assert_eq!(w.record_count(), 12);
        }
        // Second restart: both generations are present, in order.
        let (w, replayed) = WalWriter::open_or_create(&path, false).unwrap();
        assert!(!replayed.truncated);
        let mut expected = first;
        expected.extend(second);
        assert_eq!(replayed.records, expected);
        assert_eq!(w.record_count(), 12);
    }

    #[test]
    fn open_or_create_truncates_torn_tail_then_appends_cleanly() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("torn-reopen.log");
        {
            let mut w = WalWriter::create(&path, false).unwrap();
            for i in 0..10 {
                let (k, c) = sample(i);
                w.append(&k, &c).unwrap();
            }
            w.flush().unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();

        let (mut w, replayed) = WalWriter::open_or_create(&path, false).unwrap();
        assert!(replayed.truncated);
        assert_eq!(replayed.records.len(), 9, "torn record cut back to the valid prefix");
        assert_eq!(w.record_count(), 9);
        let (k, c) = sample(100);
        w.append(&k, &c).unwrap();
        w.flush().unwrap();
        drop(w);

        let r = replay(&path).unwrap();
        assert!(!r.truncated, "appending after a torn-tail reopen leaves a clean log");
        assert_eq!(r.records.len(), 10);
        assert_eq!(r.records[9], (k, c));
    }

    #[test]
    fn open_or_create_missing_file_starts_fresh() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("fresh.log");
        let (mut w, replayed) = WalWriter::open_or_create(&path, true).unwrap();
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.valid_bytes, 0);
        let (k, c) = sample(0);
        w.append(&k, &c).unwrap();
        drop(w);
        assert_eq!(replay(&path).unwrap().records.len(), 1);
    }

    #[test]
    fn empty_value_and_binary_keys() {
        let dir = TempDir::new("wal").unwrap();
        let path = dir.file("bin.log");
        let mut w = WalWriter::create(&path, false).unwrap();
        let key = CellKey::new(vec![0u8, 255, 1], vec![128u8]);
        w.append(&key, &Cell::live(Vec::<u8>::new(), 0, None)).unwrap();
        w.flush().unwrap();
        drop(w);
        let r = replay(&path).unwrap();
        assert_eq!(r.records[0].0, key);
        assert!(r.records[0].1.value.is_empty());
    }
}
