//! Slates — the "memories" of update functions.
//!
//! A slate is the in-memory data structure that "summarizes all events with
//! key k that an update function U has seen so far" (§3). Each pair
//! ⟨updater, key⟩ uniquely determines a slate. Slates are:
//!
//! * updated in place by the updater on every event with the key;
//! * cached in the memory of the machine running the updater;
//! * persisted (compressed) to the key-value store at row `k`, column `U`;
//! * readable live over HTTP (§4.4);
//! * subject to a per-updater time-to-live after which they reset to empty.
//!
//! Following the paper's Java API (Figure 4), the canonical representation
//! is an opaque byte blob that the updater replaces wholesale
//! (`replaceSlate`). Convenience accessors cover the common encodings the
//! paper mentions: UTF-8 text counters and JSON objects.
//!
//! ## The resident representation
//!
//! "Our applications often use JSON to encode slates" (§4.2) — and the
//! per-event hot path used to pay for that by re-parsing the payload from
//! bytes and re-serializing it back on *every* event. A slate now holds one
//! of two representations:
//!
//! * **Bytes** — the canonical blob (what the store and the wire see);
//! * **Json** — a parsed document *resident* in the slate, with the byte
//!   form materialized lazily (and cached) only at real byte boundaries:
//!   store flush, slate handoff, HTTP `/slate` reads, wire transfer.
//!
//! [`Slate::ensure_json`] converts bytes → resident once (keeping the
//! original bytes cached, so an untouched slate still flushes the exact
//! bytes it was loaded with); [`Slate::json_mut`] / [`Slate::json_mut_or`]
//! mutate the resident document in place, bumping `version` without
//! serializing. [`Slate::bytes`] serializes at most once per mutation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use bytes::Bytes;

use crate::json::Json;

/// Global count of byte-payload → JSON-document parses (all slates).
static PARSES: AtomicU64 = AtomicU64::new(0);
/// Global count of JSON-document → byte-payload serializations.
static SERIALIZATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide (parses, serializations) counters for slate payloads — an
/// allocations-ish proxy the hot-path benchmarks record: the seed path
/// pays one parse *and* one serialization per update, the resident path
/// parses once per cache fault and serializes once per flush.
pub fn repr_counters() -> (u64, u64) {
    (PARSES.load(Ordering::Relaxed), SERIALIZATIONS.load(Ordering::Relaxed))
}

/// The payload: canonical bytes, or a resident parsed document with its
/// byte form cached lazily.
#[derive(Clone, Debug)]
enum Repr {
    Bytes(Bytes),
    Json {
        doc: Json,
        /// The serialized form; filled on first byte access after a
        /// mutation (or carried over from the parse when untouched).
        bytes: OnceLock<Bytes>,
    },
}

/// A slate: the per-⟨updater, key⟩ summary blob, plus bookkeeping the
/// runtime uses for cache/flush management.
#[derive(Clone, Debug)]
pub struct Slate {
    repr: Repr,
    /// Bumped on every mutation; lets caches detect dirtiness cheaply.
    version: u64,
}

impl Default for Slate {
    fn default() -> Self {
        Slate { repr: Repr::Bytes(Bytes::new()), version: 0 }
    }
}

impl PartialEq for Slate {
    fn eq(&self, other: &Self) -> bool {
        self.version == other.version && self.bytes() == other.bytes()
    }
}

impl Eq for Slate {}

impl Slate {
    /// A fresh, empty slate — what an updater receives "when [it] accesses a
    /// slate associated with a key k for the first time" (§3). The updater
    /// is responsible for initializing its variables.
    pub fn empty() -> Self {
        Slate::default()
    }

    /// Build a slate from raw bytes (e.g. loaded from the key-value store).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Slate { repr: Repr::Bytes(Bytes::from(data)), version: 0 }
    }

    /// True if no updater has written anything yet (or the slate expired).
    /// A resident document is never empty (its serialization is at least
    /// `null`).
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Bytes(b) => b.is_empty(),
            Repr::Json { .. } => false,
        }
    }

    /// The raw slate payload. For a resident document this materializes
    /// (and caches) the serialized form — the byte boundary of the store
    /// flush, slate handoff, HTTP read, and wire paths.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Bytes(b) => b,
            Repr::Json { doc, bytes } => bytes.get_or_init(|| serialize(doc)),
        }
    }

    /// Byte length of the payload (materializes a resident document).
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Payload as UTF-8 text, if valid. (Figure 4 stores a decimal counter
    /// as text.)
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(self.bytes()).ok()
    }

    /// Decode the payload as JSON — "our applications often use JSON to
    /// encode slates for language independence and flexibility" (§4.2).
    /// Returns an owned document; hot paths with `&mut` access should use
    /// [`Slate::ensure_json`] / [`Slate::json_mut`] instead, which parse at
    /// most once per slate.
    pub fn as_json(&self) -> Option<Json> {
        match &self.repr {
            Repr::Bytes(b) => {
                if b.is_empty() {
                    return None;
                }
                PARSES.fetch_add(1, Ordering::Relaxed);
                Json::parse(std::str::from_utf8(b).ok()?).ok()
            }
            Repr::Json { doc, .. } => Some(doc.clone()),
        }
    }

    /// Make the parsed document resident (parsing at most once) and return
    /// a shared reference to it. Does **not** count as a mutation: the
    /// original bytes are kept cached, so an untouched slate still flushes
    /// byte-identically. `None` when the payload is empty or not JSON (the
    /// representation is left as bytes).
    pub fn ensure_json(&mut self) -> Option<&Json> {
        if let Repr::Bytes(b) = &self.repr {
            if b.is_empty() {
                return None;
            }
            PARSES.fetch_add(1, Ordering::Relaxed);
            let doc = Json::parse(std::str::from_utf8(b).ok()?).ok()?;
            let bytes = OnceLock::new();
            let _ = bytes.set(b.clone());
            self.repr = Repr::Json { doc, bytes };
        }
        match &self.repr {
            Repr::Json { doc, .. } => Some(doc),
            Repr::Bytes(_) => None,
        }
    }

    /// Mutable access to the resident document. Counts as a mutation:
    /// `version` is bumped and the cached byte form is invalidated —
    /// serialization happens only at the next byte boundary. `None` when
    /// the payload is empty or not JSON (nothing is changed then).
    pub fn json_mut(&mut self) -> Option<&mut Json> {
        self.ensure_json()?;
        self.version += 1;
        match &mut self.repr {
            Repr::Json { doc, bytes } => {
                bytes.take(); // invalidate: the doc is about to change
                Some(doc)
            }
            Repr::Bytes(_) => unreachable!("ensure_json left a resident doc"),
        }
    }

    /// Mutable access to the resident document, installing `init()` when
    /// the slate is empty or unparseable (the Figure 4 "parse failure ⟹
    /// start fresh" posture). Always counts as a mutation.
    pub fn json_mut_or(&mut self, init: impl FnOnce() -> Json) -> &mut Json {
        if self.ensure_json().is_none() {
            self.repr = Repr::Json { doc: init(), bytes: OnceLock::new() };
        }
        self.version += 1;
        match &mut self.repr {
            Repr::Json { doc, bytes } => {
                bytes.take();
                doc
            }
            Repr::Bytes(_) => unreachable!("a resident doc was just installed"),
        }
    }

    /// Like [`Slate::json_mut_or`], but also falls back to `init()` when
    /// the payload parses to something other than an object — the common
    /// app shape is an object slate mutated with [`Json::set`], which
    /// panics on non-objects, and a foreign or corrupt payload must
    /// rebuild (the old parse-and-replace behaviour) rather than panic a
    /// worker. `init` must return an object.
    pub fn obj_mut_or(&mut self, init: impl FnOnce() -> Json) -> &mut Json {
        if !matches!(self.ensure_json(), Some(Json::Obj(_))) {
            self.repr = Repr::Json { doc: init(), bytes: OnceLock::new() };
        }
        self.version += 1;
        match &mut self.repr {
            Repr::Json { doc, bytes } => {
                bytes.take();
                doc
            }
            Repr::Bytes(_) => unreachable!("a resident doc was just installed"),
        }
    }

    /// Replace the entire payload — the `replaceSlate` call of Figure 4.
    pub fn replace(&mut self, data: Vec<u8>) {
        self.repr = Repr::Bytes(Bytes::from(data));
        self.version += 1;
    }

    /// Replace the payload with a JSON document, taking ownership: the
    /// document becomes resident and is serialized only at the next byte
    /// boundary.
    pub fn set_json(&mut self, value: Json) {
        self.repr = Repr::Json { doc: value, bytes: OnceLock::new() };
        self.version += 1;
    }

    /// Replace the payload with serialized JSON (clones `value`; prefer
    /// [`Slate::set_json`] when the document can be moved in).
    pub fn replace_json(&mut self, value: &Json) {
        self.set_json(value.clone());
    }

    /// Reset to empty (TTL expiry / explicit deletion).
    pub fn clear(&mut self) {
        if !self.is_empty() {
            self.repr = Repr::Bytes(Bytes::new());
            self.version += 1;
        }
    }

    /// Monotone mutation counter; equal versions ⟹ byte-identical payloads
    /// for slates that share a lineage.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The payload as a cheaply-shareable [`Bytes`] (used when handing the
    /// slate to the store writer thread). No copy: bytes payloads share
    /// their buffer, resident documents share the materialized cache.
    pub fn to_shared(&self) -> Bytes {
        match &self.repr {
            Repr::Bytes(b) => b.clone(),
            Repr::Json { doc, bytes } => bytes.get_or_init(|| serialize(doc)).clone(),
        }
    }

    // --- typed counter helpers (the dominant slate shape in the paper's
    // examples: checkin counts, topic counts per minute) ---

    /// Read the payload as a decimal `u64` counter; 0 when empty/invalid
    /// (mirrors Figure 4's `NumberFormatException` fallback).
    pub fn counter(&self) -> u64 {
        self.as_str().and_then(|s| s.trim().parse().ok()).unwrap_or(0)
    }

    /// Increment the decimal counter payload by `delta` and return the new
    /// value.
    pub fn incr_counter(&mut self, delta: u64) -> u64 {
        let next = self.counter().saturating_add(delta);
        self.replace(next.to_string().into_bytes());
        next
    }
}

fn serialize(doc: &Json) -> Bytes {
    SERIALIZATIONS.fetch_add(1, Ordering::Relaxed);
    let mut out = Vec::new();
    doc.write_into(&mut out);
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_slate_is_empty() {
        let s = Slate::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.version(), 0);
        assert_eq!(s.counter(), 0);
        assert_eq!(s.as_json(), None);
    }

    #[test]
    fn replace_bumps_version() {
        let mut s = Slate::empty();
        s.replace(b"17".to_vec());
        assert_eq!(s.version(), 1);
        assert_eq!(s.as_str(), Some("17"));
        s.replace(b"18".to_vec());
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn counter_semantics_match_figure_4() {
        // Figure 4: parse failure ⟹ count = 0, then ++count.
        let mut s = Slate::from_bytes(b"not-a-number".to_vec());
        assert_eq!(s.counter(), 0);
        assert_eq!(s.incr_counter(1), 1);
        assert_eq!(s.incr_counter(1), 2);
        assert_eq!(s.as_str(), Some("2"));
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut s = Slate::from_bytes(u64::MAX.to_string().into_bytes());
        assert_eq!(s.incr_counter(5), u64::MAX);
    }

    #[test]
    fn json_roundtrip_through_slate() {
        let mut s = Slate::empty();
        let v = Json::parse(r#"{"count": 3, "days": 2}"#).unwrap();
        s.replace_json(&v);
        let back = s.as_json().unwrap();
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(back.get("days").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn clear_only_bumps_version_when_nonempty() {
        let mut s = Slate::empty();
        s.clear();
        assert_eq!(s.version(), 0);
        s.replace(b"x".to_vec());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn from_bytes_preserves_payload() {
        let s = Slate::from_bytes(vec![1, 2, 3]);
        assert_eq!(s.bytes(), &[1, 2, 3]);
        // Invalid UTF-8 payloads read as None:
        let t = Slate::from_bytes(vec![0xff, 0xfe]);
        assert_eq!(t.as_str(), None);
        assert_eq!(s.to_shared().as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn ensure_json_preserves_bytes_and_version() {
        // A resident conversion is not a mutation: the slate flushes the
        // exact bytes it was loaded with, even if parse→serialize would
        // not roundtrip them identically (e.g. whitespace).
        let original = b"{ \"count\" : 3 }".to_vec();
        let mut s = Slate::from_bytes(original.clone());
        assert_eq!(s.ensure_json().unwrap().get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(s.version(), 0);
        assert_eq!(s.bytes(), original.as_slice(), "untouched resident slate keeps its bytes");
        // A second ensure_json returns the same resident doc (the repr
        // stays Json; re-parsing would lose the cached original bytes).
        s.ensure_json().unwrap();
        assert_eq!(s.bytes(), original.as_slice());
    }

    #[test]
    fn json_mut_bumps_version_and_reserializes() {
        let mut s = Slate::from_bytes(br#"{"count":3}"#.to_vec());
        {
            let doc = s.json_mut().unwrap();
            doc.set("count", Json::num(4));
        }
        assert_eq!(s.version(), 1);
        assert_eq!(s.bytes(), br#"{"count":4}"#);
        assert_eq!(s.len(), 11);
    }

    #[test]
    fn json_mut_on_non_json_is_none_and_untouched() {
        let mut s = Slate::from_bytes(b"not json".to_vec());
        assert!(s.json_mut().is_none());
        assert_eq!(s.version(), 0);
        assert_eq!(s.bytes(), b"not json");
        let mut empty = Slate::empty();
        assert!(empty.json_mut().is_none());
    }

    #[test]
    fn json_mut_or_installs_default() {
        let mut s = Slate::empty();
        {
            let doc = s.json_mut_or(|| Json::obj([("n", Json::num(0))]));
            doc.set("n", Json::num(1));
        }
        assert_eq!(s.version(), 1);
        assert_eq!(s.bytes(), br#"{"n":1}"#);
        // Unparseable payloads fall back to the default too.
        let mut bad = Slate::from_bytes(b"garbage".to_vec());
        bad.json_mut_or(|| Json::obj([("n", Json::num(7))]));
        assert_eq!(bad.bytes(), br#"{"n":7}"#);
    }

    #[test]
    fn obj_mut_or_rebuilds_non_object_payloads() {
        // A corrupt (or foreign) payload that parses to a non-object must
        // rebuild from the default, not panic the worker on `set`.
        for payload in [&b"5"[..], b"[1,2]", b"\"str\"", b"garbage", b""] {
            let mut s = Slate::from_bytes(payload.to_vec());
            let doc = s.obj_mut_or(|| Json::obj([("n", Json::num(0))]));
            doc.set("n", Json::num(1));
            assert_eq!(s.bytes(), br#"{"n":1}"#, "payload {payload:?}");
        }
        // Object payloads are mutated in place.
        let mut s = Slate::from_bytes(br#"{"n":41,"extra":true}"#.to_vec());
        s.obj_mut_or(|| Json::obj([("n", Json::num(0))])).set("n", Json::num(42));
        assert_eq!(s.bytes(), br#"{"n":42,"extra":true}"#);
    }

    #[test]
    fn set_json_matches_replace_json_bytes() {
        let v = Json::obj([("a", Json::num(1)), ("b", Json::str("x"))]);
        let mut a = Slate::empty();
        let mut b = Slate::empty();
        a.replace_json(&v);
        b.set_json(v);
        assert_eq!(a.bytes(), b.bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn resident_clear_resets_to_empty_bytes() {
        let mut s = Slate::empty();
        s.set_json(Json::obj([("x", Json::num(1))]));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.bytes(), b"");
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn resident_and_bytes_slates_compare_by_payload() {
        let mut resident = Slate::empty();
        resident.set_json(Json::obj([("n", Json::num(3))]));
        let mut bytes = Slate::empty();
        bytes.replace(br#"{"n":3}"#.to_vec());
        assert_eq!(resident, bytes, "same version, same payload");
    }
}
