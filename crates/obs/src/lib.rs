//! Observability substrate (§4.5, §6): the unified metrics registry the
//! engines, caches, transports and stores hang their counters on.
//!
//! The paper's operational story at Kosmix — spotting hot keys, queue
//! buildup, and slow machines in production — needs three things the
//! processing path must provide without slowing down:
//!
//! * **[`Registry`]** — named [`Counter`]/[`Gauge`]/[`Histogram`] handles
//!   (plain atomics, zero allocation to record) plus pull-style
//!   *collectors* for state that already lives elsewhere (cache shard
//!   counters, wire stats, WAL sync counts). One [`Registry::render`]
//!   call produces the Prometheus text exposition.
//! * **[`SpaceSaving`]** — the fixed-size heavy-hitters sketch behind
//!   per-⟨op, key⟩ rate telemetry (the hot-key signal ROADMAP item 5's
//!   auto-splitting will act on).
//! * **[`Logger`]** — leveled, optionally JSON-lines structured logging
//!   with machine/epoch/op fields, replacing scattered `eprintln!`s.
//!
//! Everything here is engine-agnostic: no dependency on the runtime
//! crates, so every layer of the workspace can use it.

mod histogram;
mod logger;
mod registry;
mod sketch;

pub use histogram::{Histogram, LatencySummary, BUCKETS};
pub use logger::{FieldValue, Level, Logger};
pub use registry::{
    parse_exposition, Counter, Gauge, HistogramSnapshot, ParsedSample, Registry, Sample, Sampler,
    Value,
};
pub use sketch::{HeavyHitter, SpaceSaving};
