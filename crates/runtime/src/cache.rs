//! Slate caches (§4.2).
//!
//! "These slates are cached in the memory of the machine running U" and
//! persisted to the key-value store with a configurable flush policy
//! "ranging from 'immediate write-through' to 'only when evicted from
//! cache'". Muppet 2.0 keeps "all slates ... in a single 'central' slate
//! cache" per machine; Muppet 1.0 fragments the same budget across
//! per-worker caches (§4.5) — both are instances of this type, differing
//! only in how many instances a machine owns and their capacity.
//!
//! Concurrency model: the cache hands out `Arc<SlateSlot>`s; workers lock a
//! slot's state while running the update function. Two-choice dispatch
//! bounds contention on any slot to two workers (§4.5).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use muppet_core::event::Key;
use muppet_core::hash::fx64_pair;
use muppet_core::slate::Slate;
use muppet_core::sync::{Condvar, Mutex};
use muppet_core::workflow::OpId;
use muppet_core::Codec;
use muppet_obs::{HeavyHitter, HistogramSnapshot, Logger, Sampler, SpaceSaving};
use muppet_slatestore::cluster::StoreCluster;
use muppet_slatestore::types::CellKey;

use crate::lru::LruMap;
use crate::metrics::Histogram;

/// Default cap on one batched flush call (dirty slates per
/// `store_many`; see [`crate::engine::EngineConfig::flush_batch_max`]).
pub const DEFAULT_FLUSH_BATCH_MAX: usize = 256;

/// Soft byte cap on one flush batch's payload: a batch closes early
/// rather than approach the wire's 64 MB hard frame limit (an oversized
/// `StorePutBatch` would be refused wholesale and rebuilt identically
/// on every sweep — a flush livelock). A single slate over the cap
/// still flushes alone.
pub const FLUSH_BATCH_SOFT_BYTES: usize = 8 << 20;

/// When dirty slates reach the key-value store (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Every slate mutation writes to the store before the worker moves on.
    WriteThrough,
    /// A background flusher sweeps dirty slates every `ms` milliseconds
    /// ("a thread to provide background I/O to the durable key-value
    /// store", §4.5).
    IntervalMs(u64),
    /// Slates reach the store only when evicted (maximum write coalescing,
    /// maximum crash loss).
    OnEvict,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::IntervalMs(100)
    }
}

/// One dirty-slate snapshot inside a batched flush: the bytes and
/// identity a [`SlateBackend::store_many`] call persists. Snapshots are
/// taken under the slot's state lock but *written* without it — a worker
/// mutating the slate never waits on the (possibly remote) store write.
#[derive(Clone, Debug)]
pub struct FlushItem {
    /// The update function's name (store column).
    pub updater: Arc<str>,
    /// The event key (store row).
    pub key: Key,
    /// The slate bytes at snapshot time.
    pub bytes: Bytes,
    /// Format of `bytes` (the cache materializes in the store's codec;
    /// raw/legacy payloads stay [`Codec::Json`]).
    pub codec: Codec,
    /// TTL configured for this updater's slates.
    pub ttl_secs: Option<u64>,
}

/// Where cache misses load from and flushes write to. Implemented by the
/// slate-store cluster; tests may substitute an in-memory backend.
pub trait SlateBackend: Send + Sync + 'static {
    /// Load the persisted slate bytes for ⟨updater, key⟩, if any. Bytes
    /// come back uncompressed in whatever codec they were stored under —
    /// the MBF magic byte is sniffable, so no tag travels on this path.
    fn load(&self, updater: &str, key: &Key, now_us: u64) -> Option<Vec<u8>>;
    /// Persist the slate bytes for ⟨updater, key⟩, tagged with their
    /// codec (the store may compress them, after which the payload is no
    /// longer sniffable — the tag must travel explicitly). Returns
    /// `false` when the write did not reach the store (quorum failure,
    /// dead store host): the caller must keep the slate dirty so a later
    /// flush retries — dropping it would silently lose the update.
    fn store(
        &self,
        updater: &str,
        key: &Key,
        bytes: &[u8],
        codec: Codec,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> bool;

    /// Persist a run of slates, returning per-item success in order.
    /// Batch-capable backends override this to turn a flush tick's dirty
    /// set into one store round trip (one `StorePutBatch` frame over the
    /// wire, one WAL group commit on the LSM node); the default falls
    /// back to per-slate [`SlateBackend::store`] calls so existing
    /// backends keep working unchanged.
    fn store_many(&self, items: &[FlushItem], now_us: u64) -> Vec<bool> {
        items
            .iter()
            .map(|item| {
                self.store(&item.updater, &item.key, &item.bytes, item.codec, item.ttl_secs, now_us)
            })
            .collect()
    }

    /// Load a run of slates, in order. Same batching contract as
    /// [`SlateBackend::store_many`]; the default falls back to per-slate
    /// loads.
    fn load_many(&self, items: &[(Arc<str>, Key)], now_us: u64) -> Vec<Option<Vec<u8>>> {
        items.iter().map(|(updater, key)| self.load(updater, key, now_us)).collect()
    }
}

/// Backend that drops writes and never finds anything — engines without an
/// attached store use this.
#[derive(Debug, Default)]
pub struct NullBackend;

impl SlateBackend for NullBackend {
    fn load(&self, _updater: &str, _key: &Key, _now_us: u64) -> Option<Vec<u8>> {
        None
    }
    fn store(
        &self,
        _updater: &str,
        _key: &Key,
        _bytes: &[u8],
        _codec: Codec,
        _ttl: Option<u64>,
        _now_us: u64,
    ) -> bool {
        // With no store attached there is nothing to retry against:
        // report success so caches do not accumulate forever-dirty slates.
        true
    }
}

impl SlateBackend for StoreCluster {
    fn load(&self, updater: &str, key: &Key, now_us: u64) -> Option<Vec<u8>> {
        let cell_key = CellKey::new(key.as_bytes(), updater.as_bytes());
        // Quorum failures surface as cache misses: the paper's posture is
        // availability-first on the read path.
        self.get(&cell_key, now_us).ok().flatten().map(|b| b.to_vec())
    }

    fn store(
        &self,
        updater: &str,
        key: &Key,
        bytes: &[u8],
        codec: Codec,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> bool {
        let cell_key = CellKey::new(key.as_bytes(), updater.as_bytes());
        // A write failure keeps the slate dirty; a later flush retries.
        self.put_tagged(&cell_key, bytes, codec, ttl_secs, now_us).is_ok()
    }

    fn store_many(&self, items: &[FlushItem], now_us: u64) -> Vec<bool> {
        // One `put_many`: cells grouped per storage node, each node's run
        // WAL-group-committed (one fsync per batch under `sync_each`).
        let cells: Vec<(CellKey, &[u8], Codec, Option<u64>)> = items
            .iter()
            .map(|item| {
                (
                    CellKey::new(item.key.as_bytes(), item.updater.as_bytes()),
                    item.bytes.as_ref(),
                    item.codec,
                    item.ttl_secs,
                )
            })
            .collect();
        self.put_many(&cells, now_us).into_iter().map(|r| r.is_ok()).collect()
    }

    fn load_many(&self, items: &[(Arc<str>, Key)], now_us: u64) -> Vec<Option<Vec<u8>>> {
        let keys: Vec<CellKey> = items
            .iter()
            .map(|(updater, key)| CellKey::new(key.as_bytes(), updater.as_bytes()))
            .collect();
        // Quorum failures surface as misses (availability-first reads).
        self.get_many(&keys, now_us)
            .into_iter()
            .map(|r| r.ok().flatten().map(|b| b.to_vec()))
            .collect()
    }
}

/// Mutable slate state guarded by the slot lock.
#[derive(Debug)]
pub struct SlateState {
    /// The live slate.
    pub slate: Slate,
    /// Version already persisted; `slate.version() > flushed_version` ⟹
    /// dirty.
    pub flushed_version: u64,
    /// Engine-relative µs of the last updater write (drives TTL reset).
    pub last_write_us: u64,
    /// Whether this slot is currently registered in its shard's dirty
    /// index (guarded by the state lock, so the clean→dirty transition
    /// registers exactly once — steady-state re-writes of an
    /// already-dirty slate touch no extra lock).
    indexed: bool,
    /// A flush of this slot's snapshot is mid-flight to the backend
    /// (guarded by the state lock). Concurrent flushes of one slot must
    /// be refused: the backend write runs outside the state lock and the
    /// store resolves same-key writes by arrival order, so two in-flight
    /// snapshots could land newest-first and leave the STALE bytes
    /// durable while the CAS marks the slot clean — a silently lost
    /// update. (The pre-pipeline code serialized flushes by holding the
    /// state lock across the write; this flag restores that exclusion
    /// without the blocking.)
    flushing: bool,
}

impl SlateState {
    /// Whether the slate has unpersisted changes.
    pub fn dirty(&self) -> bool {
        self.slate.version() > self.flushed_version
    }
}

/// One cached slate: identity + lockable state.
#[derive(Debug)]
pub struct SlateSlot {
    /// The updater's workflow id (shard + dirty-index addressing).
    pub op: OpId,
    /// The update function's name (store column).
    pub updater: Arc<str>,
    /// The event key (store row).
    pub key: Key,
    /// TTL configured for this updater's slates.
    pub ttl_secs: Option<u64>,
    /// Lockable state; workers hold this lock while updating.
    pub state: Mutex<SlateState>,
}

/// Cache statistics (atomic; cheap to snapshot).
#[derive(Debug, Default)]
pub struct CacheCounters {
    store_loads: AtomicU64,
    evictions: AtomicU64,
    flush_writes: AtomicU64,
    flush_failures: AtomicU64,
    ttl_resets: AtomicU64,
    flush_batches: AtomicU64,
    store_round_trips: AtomicU64,
    miss_coalesced: AtomicU64,
}

/// Snapshot of [`CacheCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Misses that found a persisted slate in the store.
    pub store_loads: u64,
    /// Slates evicted for capacity.
    pub evictions: u64,
    /// Writes issued to the backend.
    pub flush_writes: u64,
    /// Backend writes that failed (the slate stayed dirty for retry).
    pub flush_failures: u64,
    /// Slates reset because their TTL lapsed.
    pub ttl_resets: u64,
    /// Live entries.
    pub entries: u64,
    /// Dirty entries (unpersisted).
    pub dirty: u64,
    /// Lock shards the cache's budget is split over.
    pub shards: u64,
    /// Batched `store_many` calls issued by flush sweeps.
    pub flush_batches: u64,
    /// Median flush-batch size (power-of-two bucket upper bound).
    pub flush_batch_p50: u64,
    /// Largest single flush batch.
    pub flush_batch_largest: u64,
    /// Backend round trips (loads + stores + batched stores): over a
    /// remote store host this is the wire-round-trip count of the slate
    /// path.
    pub store_round_trips: u64,
    /// Concurrent misses on the same ⟨op, key⟩ that shared another miss's
    /// in-flight backend load instead of stampeding the store.
    pub miss_coalesced: u64,
}

/// One lock shard: its own LRU map, its slice of the capacity budget, and
/// its own hit/miss counters (the `/status` observability surface).
struct Shard {
    map: Mutex<LruMap<(OpId, Key), Arc<SlateSlot>>>,
    /// The dirty index: slots with unpersisted writes, registered on the
    /// clean→dirty transition. Flush sweeps drain this instead of walking
    /// the whole map — a sweep's cost scales with the dirty set, not the
    /// cache size. Weak so an index entry never pins a slot resident (the
    /// eviction strong-count protocol stays exact).
    dirty: Mutex<HashMap<(OpId, Key), Weak<SlateSlot>>>,
    /// Single-flight read-through: ⟨op, key⟩s with a backend load already
    /// in flight. Concurrent misses park on the flight instead of
    /// stampeding the store with duplicate loads.
    flights: Mutex<HashMap<(OpId, Key), Arc<Flight>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Outcome of one flush attempt of one slot.
enum FlushOutcome {
    /// The slot is persisted up to the snapshot (or was already clean).
    Done,
    /// Another flush of this slot is mid-flight; this attempt did not
    /// write (the slot stays dirty and indexed for retry).
    InFlight,
    /// The backend refused the write; the slot stays dirty for retry.
    Failed,
}

/// A single-flight ticket: the leader resolves it once its loaded slot is
/// in the map; waiters block on it, then retry the map lookup.
#[derive(Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    /// Block until the leader resolves the flight (re-checking
    /// periodically so a wedged backend cannot strand waiters silently).
    fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cv.wait_for(&mut done, Duration::from_millis(50));
        }
    }

    fn finish(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }
}

/// Per-shard statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups served from this shard.
    pub hits: u64,
    /// Lookups that missed in this shard.
    pub misses: u64,
    /// Live entries in this shard.
    pub entries: u64,
    /// This shard's slice of the capacity budget.
    pub capacity: u64,
}

/// One shard's space-saving sketch over ⟨op, key⟩ offers.
type HotSketch = Mutex<SpaceSaving<(OpId, Key)>>;

/// An LRU slate cache bound to a backend, split into power-of-two lock
/// shards so a machine's worker pool stops serializing on one mutex
/// (the Muppet 2.0 central cache was a single `Mutex<LruMap>` — with 4+
/// workers the map lock was the hottest line on the machine). Shard
/// selection hashes ⟨op, key⟩ with the same fx64 family the routing rings
/// use; each shard owns an even slice of the capacity budget and runs the
/// full eviction/flush/TTL protocol independently.
pub struct SlateCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    shard_mask: u64,
    policy: FlushPolicy,
    backend: Arc<dyn SlateBackend>,
    /// Codec flushes materialize slates in before handing bytes to the
    /// backend ([`muppet_core::CodecChoice::store_codec`] resolves the
    /// engine's wire-codec setting to this).
    store_codec: Codec,
    /// Dirty slates coalesced into one `store_many` call at most.
    flush_batch_max: usize,
    counters: CacheCounters,
    /// Distribution of flush-batch sizes (events per `store_many`).
    flush_batch_hist: Histogram,
    /// Per-shard heavy-hitter sketches over the updater event stream
    /// (⟨op, key⟩ offers from the engine's updater path, §5: "the
    /// distribution of event keys can be strongly skewed"). Empty when
    /// hot-key telemetry is off.
    hot: Box<[HotSketch]>,
    /// Per-shard 1-in-N gates for sketch offers; a hit offers with the
    /// sampling interval as its weight, keeping reported counts
    /// event-scale.
    hot_samplers: Box<[Sampler]>,
    /// µs per backend store call on the flush path; shared with the
    /// registry when one is attached.
    flush_latency: Arc<Histogram>,
    /// Incident logger (flush failures, aggregated once per sweep).
    logger: Arc<Logger>,
}

impl std::fmt::Debug for SlateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlateCache")
            .field("capacity", &self.capacity())
            .field("shards", &self.shards.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl SlateCache {
    /// A single-shard cache holding up to `capacity` slates (the Muppet
    /// 1.0 per-worker caches, which have exactly one owner and gain
    /// nothing from sharding).
    pub fn new(capacity: usize, policy: FlushPolicy, backend: Arc<dyn SlateBackend>) -> Self {
        SlateCache::with_shards(capacity, policy, backend, 1)
    }

    /// A cache holding up to `capacity` slates split over `shards` lock
    /// shards (rounded up to a power of two). The total budget is pinned:
    /// shard capacities sum to exactly `max(capacity, shards)`.
    pub fn with_shards(
        capacity: usize,
        policy: FlushPolicy,
        backend: Arc<dyn SlateBackend>,
        shards: usize,
    ) -> Self {
        let n = shards.max(1).next_power_of_two();
        let capacity = capacity.max(n); // every shard holds at least one slate
        let (base, extra) = (capacity / n, capacity % n);
        let shards: Vec<Shard> = (0..n)
            .map(|i| Shard {
                map: Mutex::new(LruMap::new()),
                dirty: Mutex::new(HashMap::new()),
                flights: Mutex::new(HashMap::new()),
                capacity: base + usize::from(i < extra),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            })
            .collect();
        SlateCache {
            shards: shards.into_boxed_slice(),
            shard_mask: (n - 1) as u64,
            policy,
            backend,
            store_codec: Codec::Json,
            flush_batch_max: DEFAULT_FLUSH_BATCH_MAX,
            counters: CacheCounters::default(),
            flush_batch_hist: Histogram::new(),
            hot: Box::new([]),
            hot_samplers: Box::new([]),
            flush_latency: Arc::new(Histogram::new()),
            logger: Logger::disabled(),
        }
    }

    /// Set the flush-batch cap: dirty slates coalesced into one backend
    /// `store_many` call at most (1 = the per-slate write-behind path).
    pub fn with_flush_batch(mut self, flush_batch_max: usize) -> Self {
        self.flush_batch_max = flush_batch_max.max(1);
        self
    }

    /// Enable per-⟨op, key⟩ hot-spot telemetry: one space-saving sketch
    /// of `capacity` keys per lock shard, fed 1-in-`sample_n` offers
    /// (each weighted by the interval). `capacity = 0` disables it —
    /// [`SlateCache::offer_hot`] becomes a single branch.
    pub fn with_hot_keys(mut self, capacity: usize, sample_n: u64) -> Self {
        if capacity == 0 {
            self.hot = Box::new([]);
            self.hot_samplers = Box::new([]);
            return self;
        }
        let n = self.shards.len();
        let sketches: Vec<Mutex<SpaceSaving<(OpId, Key)>>> =
            (0..n).map(|_| Mutex::new(SpaceSaving::new(capacity))).collect();
        let samplers: Vec<Sampler> = (0..n).map(|_| Sampler::every(sample_n)).collect();
        self.hot = sketches.into_boxed_slice();
        self.hot_samplers = samplers.into_boxed_slice();
        self
    }

    /// Set the codec flushes materialize slates in before they reach the
    /// backend. Under [`Codec::Mbf`] dirty JSON-document slates encode to
    /// binary once per flush; raw/legacy payloads still go out verbatim
    /// (tagged JSON).
    pub fn with_store_codec(mut self, codec: Codec) -> Self {
        self.store_codec = codec;
        self
    }

    /// Record flush-path store latency into `hist` (a registry-owned
    /// histogram, so `/metrics` exports the flush stage).
    pub fn with_flush_latency(mut self, hist: Arc<Histogram>) -> Self {
        self.flush_latency = hist;
        self
    }

    /// Route flush-incident warnings through `logger`.
    pub fn with_logger(mut self, logger: Arc<Logger>) -> Self {
        self.logger = logger;
        self
    }

    /// The flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity).sum()
    }

    /// The shard owning ⟨`op`, `key`⟩ — the same fx64 the rings route by,
    /// with the op id mixed in so two updaters' slates for one key spread.
    fn shard_of(&self, op: OpId, key: &Key) -> &Shard {
        let h = fx64_pair(key.as_bytes(), &(op as u64).to_le_bytes());
        &self.shards[(h & self.shard_mask) as usize]
    }

    /// Fetch (or create) the slot for ⟨updater `op`, `key`⟩. On a miss the
    /// backend is consulted ("Muppet retrieves the slate from the Cassandra
    /// cluster", §4.2) with single-flight read-through: the load runs with
    /// no cache lock held, and concurrent misses on the same ⟨op, key⟩
    /// share the one in-flight load instead of stampeding the store. If
    /// nothing is stored the slot starts empty and the update function
    /// initializes it. Cached slates whose TTL lapsed reset to empty
    /// ("resetting to an empty slate at that time").
    pub fn get_or_load(
        &self,
        op: OpId,
        updater: &Arc<str>,
        key: &Key,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> Arc<SlateSlot> {
        let shard = self.shard_of(op, key);
        loop {
            let flight = {
                let mut map = shard.map.lock();
                if let Some(slot) = map.get(&(op, key.clone())) {
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    let slot = Arc::clone(slot);
                    drop(map);
                    self.maybe_ttl_reset(&slot, now_us);
                    return slot;
                }
                let mut flights = shard.flights.lock();
                match flights.get(&(op, key.clone())) {
                    Some(flight) => {
                        // Another miss is already loading this slate from
                        // the backend: share its flight.
                        self.counters.miss_coalesced.fetch_add(1, Ordering::Relaxed);
                        Arc::clone(flight)
                    }
                    None => {
                        shard.misses.fetch_add(1, Ordering::Relaxed);
                        flights.insert((op, key.clone()), Arc::new(Flight::default()));
                        drop(flights);
                        drop(map);
                        return self.load_as_leader(shard, op, updater, key, ttl_secs, now_us);
                    }
                }
            };
            flight.wait();
            // Retry: the leader's slot is (usually) a map hit now.
        }
    }

    /// The leader half of single-flight read-through: consult the backend
    /// with NO cache locks held, install the slot, resolve the flight,
    /// then run the eviction protocol on any capacity excess.
    #[allow(clippy::too_many_arguments)]
    fn load_as_leader(
        &self,
        shard: &Shard,
        op: OpId,
        updater: &Arc<str>,
        key: &Key,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) -> Arc<SlateSlot> {
        /// Resolves the flight on every exit — including an unwinding
        /// backend panic. A stranded flight would hang every future miss
        /// on this key forever; with the guard, waiters wake, retry, and
        /// (if the slot never landed) elect a fresh leader.
        struct FlightGuard<'a> {
            shard: &'a Shard,
            key: (OpId, Key),
        }
        impl Drop for FlightGuard<'_> {
            fn drop(&mut self) {
                if let Some(flight) = self.shard.flights.lock().remove(&self.key) {
                    flight.finish();
                }
            }
        }
        let guard = FlightGuard { shard, key: (op, key.clone()) };
        let loaded = self.backend.load(updater, key, now_us);
        self.counters.store_round_trips.fetch_add(1, Ordering::Relaxed);
        if loaded.is_some() {
            self.counters.store_loads.fetch_add(1, Ordering::Relaxed);
        }
        // The load path is untagged (the store decompresses before
        // returning), so the payload's codec is sniffed from its first
        // byte: MBF slates stay undecoded binary until an accessor needs
        // the document, JSON slates behave exactly as before.
        let slate = loaded
            .map(|data| {
                let codec = Codec::sniff(&data);
                Slate::from_stored(data, codec)
            })
            .unwrap_or_default();
        let flushed_version = slate.version();
        let fresh = Arc::new(SlateSlot {
            op,
            updater: Arc::clone(updater),
            key: key.clone(),
            ttl_secs,
            state: Mutex::new(SlateState {
                slate,
                flushed_version,
                last_write_us: now_us,
                indexed: false,
                flushing: false,
            }),
        });
        let mut evicted: Vec<((OpId, Key), Arc<SlateSlot>)> = Vec::new();
        let slot = {
            let mut map = shard.map.lock();
            if let Some(existing) = map.get(&(op, key.clone())) {
                // An externally-built slot landed while we were loading
                // (elastic handoff `insert_slot`): it carries live state —
                // our freshly loaded copy is the stale one. Keep theirs.
                let existing = Arc::clone(existing);
                drop(map);
                return existing; // guard resolves the flight
            }
            map.insert((op, key.clone()), Arc::clone(&fresh));
            self.pick_eviction_victims(shard, &mut map, &mut evicted);
            Arc::clone(&fresh)
        };
        // Wake the waiters before the (possibly I/O-bound) victim flush.
        drop(guard);
        self.flush_and_remove_victims(shard, evicted, now_us);
        slot
    }

    /// Select eviction victims beyond capacity (called with the shard map
    /// locked) — but keep them *resident*: each candidate is reinserted
    /// immediately (as MRU) and only leaves the map after its flush
    /// succeeds. A victim removed while dirty would open a window where a
    /// concurrent get_or_load re-creates the slot from the (still
    /// unwritten) backend and the slate forks. `pop_lru` moves the map's
    /// reference out, so an unborrowed victim has strong_count == 1;
    /// anything higher means a worker (or the leader's fresh binding, for
    /// the entry just inserted) still holds it — skip those, bounded so a
    /// fully-borrowed cache cannot spin. (The dirty index holds only
    /// `Weak` references, so being dirty never disguises a slot as
    /// borrowed.)
    fn pick_eviction_victims(
        &self,
        shard: &Shard,
        map: &mut LruMap<(OpId, Key), Arc<SlateSlot>>,
        evicted: &mut Vec<((OpId, Key), Arc<SlateSlot>)>,
    ) {
        let mut skipped: Vec<((OpId, Key), Arc<SlateSlot>)> = Vec::new();
        let max_picks = map.len();
        // Reinserting keeps `map.len()` constant, so the loop is
        // bounded by the victim count (the capacity excess), not by
        // the map shrinking.
        let excess = map.len().saturating_sub(shard.capacity);
        while evicted.len() < excess && evicted.len() + skipped.len() < max_picks {
            let Some((k, victim)) = map.pop_lru() else { break };
            if Arc::strong_count(&victim) > 1 {
                skipped.push((k, victim));
                continue;
            }
            map.insert(k.clone(), Arc::clone(&victim)); // stays resident until flushed
            evicted.push((k, victim));
        }
        for (k, v) in skipped {
            map.insert(k, v); // reinsert as MRU; retry next time
        }
    }

    /// Flush the victims outside the map lock, then remove each from
    /// the map only if it was persisted and nobody raced us: the
    /// entry still holds this exact slot, no worker borrowed it
    /// meanwhile (count == map + our binding), and no write re-dirtied
    /// it. Anything else stays resident for the next sweep — a failed
    /// store write must never silently lose the update.
    fn flush_and_remove_victims(
        &self,
        shard: &Shard,
        evicted: Vec<((OpId, Key), Arc<SlateSlot>)>,
        now_us: u64,
    ) {
        for (k, victim) in evicted {
            let flushed = self.flush_slot(&victim, now_us);
            let mut map = shard.map.lock();
            let unchanged = map.peek(&k).map(|s| Arc::ptr_eq(s, &victim)).unwrap_or(false);
            if flushed
                && unchanged
                && Arc::strong_count(&victim) == 2
                && !victim.state.lock().dirty()
            {
                map.remove(&k);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn maybe_ttl_reset(&self, slot: &Arc<SlateSlot>, now_us: u64) {
        let Some(ttl) = slot.ttl_secs else { return };
        let mut state = slot.state.lock();
        if !state.slate.is_empty()
            && now_us.saturating_sub(state.last_write_us) > ttl.saturating_mul(1_000_000)
        {
            state.slate.clear();
            state.flushed_version = state.slate.version();
            self.counters.ttl_resets.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a lookup served from a worker's slot memo (the batch-drain
    /// path reuses the previous packet's slot for a run of same-key events
    /// without touching the shard lock): counts as a shard hit and applies
    /// the TTL check exactly like a map lookup would.
    pub fn note_memo_hit(&self, op: OpId, slot: &Arc<SlateSlot>, now_us: u64) {
        self.shard_of(op, &slot.key).hits.fetch_add(1, Ordering::Relaxed);
        self.maybe_ttl_reset(slot, now_us);
    }

    /// Offer one updater event's ⟨op, key⟩ to the hot-key sketches. The
    /// engine calls this once per processed update event (memo-hit and
    /// map-lookup paths alike); the per-shard sampler keeps the steady
    /// cost to one relaxed `fetch_add`, and each sampled hit is weighted
    /// by the interval so reported counts stay event-scale estimates.
    pub fn offer_hot(&self, op: OpId, key: &Key) {
        if self.hot.is_empty() {
            return;
        }
        let h = fx64_pair(key.as_bytes(), &(op as u64).to_le_bytes());
        let i = (h & self.shard_mask) as usize;
        let sampler = &self.hot_samplers[i];
        if sampler.hit() {
            self.hot[i].lock().offer_n((op, key.clone()), sampler.rate());
        }
    }

    /// Credit `n` events' worth of load to one ⟨op, key⟩ in one shot —
    /// unsampled, since the caller already coalesced. The batch-fold path
    /// uses this for the events a combined carrier absorbed: the carrier
    /// itself still flows through the sampled [`SlateCache::offer_hot`],
    /// but without this credit a deeply-folded hot key would look *cold*
    /// to the splitter (the sketch would see one carrier per batch, not
    /// the event-scale load the `hot_split_threshold` is denominated in).
    pub fn offer_hot_n(&self, op: OpId, key: &Key, n: u64) {
        if self.hot.is_empty() || n == 0 {
            return;
        }
        let h = fx64_pair(key.as_bytes(), &(op as u64).to_le_bytes());
        let i = (h & self.shard_mask) as usize;
        self.hot[i].lock().offer_n((op, key.clone()), n);
    }

    /// The top `k` ⟨op, key⟩ pairs by estimated event count, merged
    /// across shards. Shard selection is key-stable, so per-shard entries
    /// are disjoint and a concatenation-then-sort merge is exact over the
    /// union of the shard sketches.
    pub fn hot_keys(&self, k: usize) -> Vec<HeavyHitter<(OpId, Key)>> {
        let mut all: Vec<HeavyHitter<(OpId, Key)>> = Vec::new();
        for sketch in self.hot.iter() {
            let sketch = sketch.lock();
            all.extend(sketch.top(sketch.capacity()));
        }
        all.sort_by(|a, b| b.count.cmp(&a.count).then(a.err.cmp(&b.err)));
        all.truncate(k);
        all
    }

    /// Sketch estimate of the event count seen for one ⟨op, key⟩, `None`
    /// when the pair is not tracked (or hot-key tracking is off). Shard
    /// selection matches `offer_hot`, so the lookup touches exactly one
    /// sketch. Counts are sampler-weighted event-scale estimates; the
    /// engine's hot-key splitter compares them against its threshold.
    pub fn hot_estimate(&self, op: OpId, key: &Key) -> Option<u64> {
        if self.hot.is_empty() {
            return None;
        }
        let h = fx64_pair(key.as_bytes(), &(op as u64).to_le_bytes());
        let i = (h & self.shard_mask) as usize;
        self.hot[i].lock().estimate(&(op, key.clone()))
    }

    /// Point-in-time reading of the flush-batch-size histogram (the
    /// registry's cache collector exports it as a histogram family).
    pub fn flush_batch_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bucket_counts: self.flush_batch_hist.bucket_counts(),
            sum: self.flush_batch_hist.sum_us(),
            count: self.flush_batch_hist.count(),
        }
    }

    /// Register `slot` in its shard's dirty index if it is not already
    /// there (caller holds the slot's state lock — the `indexed` flag
    /// makes steady-state re-writes of an already-dirty slate free).
    fn ensure_indexed(&self, slot: &Arc<SlateSlot>, state: &mut SlateState) {
        if !state.indexed {
            state.indexed = true;
            self.shard_of(slot.op, &slot.key)
                .dirty
                .lock()
                .insert((slot.op, slot.key.clone()), Arc::downgrade(slot));
        }
    }

    /// Re-register `slot` unconditionally — the flush paths use this
    /// after taking (or declining) a snapshot, when the `indexed` flag
    /// may be stale-false while the slot's index entry is gone.
    fn force_reindex(&self, slot: &Arc<SlateSlot>, state: &mut SlateState) {
        state.indexed = false;
        self.ensure_indexed(slot, state);
    }

    /// Record a completed updater write on `slot`; under write-through this
    /// persists immediately. A failed write-through leaves the slate dirty
    /// (the eviction/shutdown flush retries it). Under the write-behind
    /// policies the slot is registered in its shard's dirty index so the
    /// next flush sweep finds it without scanning the cache.
    pub fn note_write(&self, slot: &Arc<SlateSlot>, state: &mut SlateState, now_us: u64) {
        state.last_write_us = now_us;
        if self.policy == FlushPolicy::WriteThrough && state.dirty() && !state.flushing {
            // (With a flush of this slot mid-flight, the synchronous write
            // is skipped — two concurrent store writes of one key could
            // land out of order. The slot stays dirty; the in-flight
            // flush's CAS sees the newer version and re-registers it.)
            self.counters.store_round_trips.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let (bytes, codec) = state.slate.materialize(self.store_codec);
            let ok =
                self.backend.store(&slot.updater, &slot.key, &bytes, codec, slot.ttl_secs, now_us);
            self.flush_latency.record(t0.elapsed().as_micros() as u64);
            if ok {
                state.flushed_version = state.slate.version();
                self.counters.flush_writes.fetch_add(1, Ordering::Relaxed);
                return;
            }
            self.counters.flush_failures.fetch_add(1, Ordering::Relaxed);
        }
        if state.dirty() {
            self.ensure_indexed(slot, state);
        }
    }

    /// Flush one slot if dirty, without holding the slot's state lock
    /// across the (possibly remote, blocking) backend write: snapshot
    /// bytes + version under the lock, write outside it, then advance
    /// `flushed_version` to the *written* version only — a worker that
    /// mutated the slate mid-flight keeps it dirty (its newer version was
    /// not persisted) and never stalls behind the wire round trip.
    /// Returns false when the backend write failed — or when another
    /// flush of this slot is already mid-flight (issuing a second,
    /// reorderable store write would risk the stale snapshot landing
    /// last) — the slate stays dirty for a later retry either way.
    fn flush_slot(&self, slot: &Arc<SlateSlot>, now_us: u64) -> bool {
        matches!(self.try_flush_slot(slot, now_us), FlushOutcome::Done)
    }

    /// One flush attempt of one slot (see [`SlateCache::flush_slot`]).
    fn try_flush_slot(&self, slot: &Arc<SlateSlot>, now_us: u64) -> FlushOutcome {
        let ((bytes, codec), version) = {
            let mut state = slot.state.lock();
            if !state.dirty() {
                return FlushOutcome::Done;
            }
            if state.flushing {
                // Serialize per slot: the in-flight flush's completion
                // re-registers whatever its snapshot did not cover.
                self.force_reindex(slot, &mut state);
                return FlushOutcome::InFlight;
            }
            state.flushing = true;
            // This flush owns the snapshot: deregister so a concurrent
            // sweep does not double-write it; any write that lands after
            // this lock drops re-registers via `note_write`.
            state.indexed = false;
            (state.slate.materialize(self.store_codec), state.slate.version())
        };
        self.counters.store_round_trips.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let ok = self.backend.store(&slot.updater, &slot.key, &bytes, codec, slot.ttl_secs, now_us);
        self.flush_latency.record(t0.elapsed().as_micros() as u64);
        if ok {
            let mut state = slot.state.lock();
            state.flushing = false;
            if version > state.flushed_version {
                state.flushed_version = version;
            }
            if state.dirty() {
                // Mutated while the snapshot was in flight: the newer
                // version stays dirty for the next sweep.
                self.force_reindex(slot, &mut state);
            }
            self.counters.flush_writes.fetch_add(1, Ordering::Relaxed);
            FlushOutcome::Done
        } else {
            let mut state = slot.state.lock();
            state.flushing = false;
            self.force_reindex(slot, &mut state);
            self.counters.flush_failures.fetch_add(1, Ordering::Relaxed);
            // One warn per failed flush attempt of one slot (the
            // eviction / handoff path flushes one slate per incident).
            self.logger.warn(
                "slate flush failed; kept dirty for retry",
                &[
                    ("updater", slot.updater.as_ref().into()),
                    ("key", String::from_utf8_lossy(slot.key.as_bytes()).into_owned().into()),
                ],
            );
            FlushOutcome::Failed
        }
    }

    /// Public flush-one entry point (elastic handoff: the old owner
    /// flushes moved-away slates before acking the epoch — the ack
    /// certifies the slate is durable, so an in-flight background flush
    /// is *waited out* and the slot re-checked, never skipped; the wait
    /// is bounded by the backend's own write timeout). Returns false
    /// when the backend write failed.
    pub fn flush_slot_now(&self, slot: &Arc<SlateSlot>, now_us: u64) -> bool {
        loop {
            match self.try_flush_slot(slot, now_us) {
                FlushOutcome::Done => return true,
                FlushOutcome::Failed => return false,
                FlushOutcome::InFlight => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }

    /// Remove every cached slate of updater `op` whose key matches
    /// `moved`, returning the removed ⟨key, slot⟩ pairs (elastic handoff:
    /// the keys whose ring arc moved to another machine). The caller
    /// decides what to do with them — flush to the store, or hand them
    /// directly to the new owner's cache in-process.
    pub fn take_matching(
        &self,
        op: OpId,
        moved: &dyn Fn(&Key) -> bool,
    ) -> Vec<(Key, Arc<SlateSlot>)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let mut map = shard.map.lock();
            let keys: Vec<Key> = map
                .iter()
                .filter(|((o, k), _)| *o == op && moved(k))
                .map(|((_, k), _)| k.clone())
                .collect();
            let taken: Vec<(Key, Arc<SlateSlot>)> = keys
                .into_iter()
                .filter_map(|k| map.remove(&(op, k.clone())).map(|slot| (k, slot)))
                .collect();
            drop(map);
            // The slots leave this cache: purge their dirty-index entries
            // (the new owner's cache re-registers them on insert), then
            // mark them unindexed. The two locks are never nested — every
            // other path orders state → dirty (`ensure_indexed` under the
            // caller's state lock), so taking state while holding dirty
            // here would be an AB-BA deadlock with a concurrent flusher.
            {
                let mut dirty = shard.dirty.lock();
                for (k, _) in &taken {
                    dirty.remove(&(op, k.clone()));
                }
            }
            for (_, slot) in &taken {
                slot.state.lock().indexed = false;
            }
            out.extend(taken);
        }
        out
    }

    /// Drop one ⟨op, key⟩ slot from the cache *without* flushing it —
    /// poison containment: a panicking updater may have left the slate
    /// half-mutated, so its cached state must be thrown away (never
    /// flushed) and the next touch refaults the store's last good
    /// version. Same lock discipline as [`SlateCache::take_matching`]:
    /// map, then dirty, then slot state — never nested.
    pub fn discard(&self, op: OpId, key: &Key) {
        let shard = self.shard_of(op, key);
        let slot = shard.map.lock().remove(&(op, key.clone()));
        shard.dirty.lock().remove(&(op, key.clone()));
        if let Some(slot) = slot {
            slot.state.lock().indexed = false;
        }
    }

    /// Insert an externally-built slot (elastic handoff between in-process
    /// machines: the moved slate keeps its state, dirtiness included — a
    /// dirty arrival enters this cache's dirty index so the next flush
    /// sweep finds it).
    pub fn insert_slot(&self, op: OpId, key: Key, slot: Arc<SlateSlot>) {
        debug_assert_eq!(slot.op, op, "a handed-off slot keeps its op identity");
        self.shard_of(op, &key).map.lock().insert((op, key), Arc::clone(&slot));
        let mut state = slot.state.lock();
        if state.dirty() {
            self.force_reindex(&slot, &mut state); // its old cache's registration is gone
        }
    }

    /// Flush every dirty slate (background flusher tick / graceful
    /// shutdown). The sweep drains the per-shard dirty indexes — visiting
    /// only dirty slots, not the whole cache — then assembles the
    /// snapshots into `FlushBatch`es of at most `flush_batch_max` slates
    /// and issues ONE batched backend call per batch (one store round
    /// trip over a remote host, one WAL group commit on the LSM node).
    /// Snapshots are taken under each slot's state lock but written
    /// outside it, so no worker ever stalls behind the store write of a
    /// slate it is mutating. Returns the number of slates written.
    pub fn flush_dirty(&self, now_us: u64) -> u64 {
        let mut candidates: Vec<Arc<SlateSlot>> = Vec::new();
        for shard in self.shards.iter() {
            // Dead weaks are slots that left the cache after their last
            // flush (eviction removes only clean slots); nothing to do.
            candidates.extend(shard.dirty.lock().drain().filter_map(|(_, weak)| weak.upgrade()));
        }
        let mut written = 0u64;
        let mut failed = 0u64;
        let mut at = 0usize;
        while at < candidates.len() {
            // Snapshot phase: bytes + version per dirty slot, each under
            // its own briefly-held state lock. A batch closes at
            // `flush_batch_max` slates OR `FLUSH_BATCH_SOFT_BYTES` of
            // payload, whichever first — a count-only cap could assemble
            // a frame over the wire's hard size limit, which would be
            // rejected wholesale and rebuilt identically forever. A
            // single slate over the soft cap still flushes (alone),
            // exactly like the per-slate path would send it.
            let mut items: Vec<FlushItem> = Vec::new();
            let mut meta: Vec<(&Arc<SlateSlot>, u64)> = Vec::new();
            let mut batch_bytes = 0usize;
            while at < candidates.len() && items.len() < self.flush_batch_max {
                let slot = &candidates[at];
                let ((bytes, codec), version) = {
                    let mut state = slot.state.lock();
                    state.indexed = false; // this sweep owns the snapshot
                    if !state.dirty() {
                        at += 1;
                        continue; // raced with an eviction flush / TTL reset
                    }
                    if state.flushing {
                        // An eviction flush of this slot is mid-flight:
                        // a second, reorderable store write could land
                        // the stale snapshot last. Leave it for the next
                        // sweep (its completion re-registers it too).
                        self.force_reindex(slot, &mut state);
                        at += 1;
                        continue;
                    }
                    state.flushing = true;
                    (state.slate.materialize(self.store_codec), state.slate.version())
                };
                if !items.is_empty() && batch_bytes + bytes.len() > FLUSH_BATCH_SOFT_BYTES {
                    // Close this batch; the slot opens the next one. The
                    // snapshot above claimed the slot (flushing = true) —
                    // release the claim or no sweep could ever touch it
                    // again (`at` is not advanced, so it is re-snapshotted
                    // as the next batch's first item).
                    let mut state = slot.state.lock();
                    state.flushing = false;
                    self.force_reindex(slot, &mut state);
                    break;
                }
                batch_bytes += bytes.len();
                items.push(FlushItem {
                    updater: Arc::clone(&slot.updater),
                    key: slot.key.clone(),
                    bytes,
                    codec,
                    ttl_secs: slot.ttl_secs,
                });
                meta.push((slot, version));
                at += 1;
            }
            if items.is_empty() {
                continue;
            }
            // One batched backend call for the whole chunk.
            let t0 = Instant::now();
            let oks = self.backend.store_many(&items, now_us);
            self.flush_latency.record(t0.elapsed().as_micros() as u64);
            self.counters.store_round_trips.fetch_add(1, Ordering::Relaxed);
            self.counters.flush_batches.fetch_add(1, Ordering::Relaxed);
            self.flush_batch_hist.record(items.len() as u64);
            debug_assert_eq!(oks.len(), items.len(), "store_many must ack per item");
            // A short ack vector (a misbehaving backend) must fail the
            // uncovered tail, not silently strand it dirty-but-unindexed.
            let oks = oks.into_iter().chain(std::iter::repeat(false));
            for ((slot, version), ok) in meta.into_iter().zip(oks) {
                if ok {
                    let mut state = slot.state.lock();
                    state.flushing = false;
                    // Compare-and-set: advance only to the version this
                    // sweep actually wrote — a concurrent mutation's newer
                    // version stays dirty (and re-registered itself).
                    if version > state.flushed_version {
                        state.flushed_version = version;
                    }
                    if state.dirty() {
                        self.force_reindex(slot, &mut state);
                    }
                    self.counters.flush_writes.fetch_add(1, Ordering::Relaxed);
                    written += 1;
                } else {
                    let mut state = slot.state.lock();
                    state.flushing = false;
                    self.force_reindex(slot, &mut state);
                    self.counters.flush_failures.fetch_add(1, Ordering::Relaxed);
                    failed += 1;
                }
            }
        }
        if failed > 0 {
            // One warn per sweep, not per slate: a store outage during a
            // large sweep is one incident, and per-slot records from
            // concurrent sweeps would interleave into noise.
            self.logger.warn(
                "flush sweep: backend refused writes; slates stay dirty for retry",
                &[("failed", failed.into()), ("written", written.into())],
            );
        }
        written
    }

    /// Read a slate's current bytes without creating it (HTTP reads, §4.4:
    /// "the fetch retrieves the slate from Muppet's slate cache ... to
    /// ensure an up-to-date reply").
    pub fn read(&self, op: OpId, key: &Key) -> Option<Vec<u8>> {
        let slot = {
            let map = self.shard_of(op, key).map.lock();
            map.peek(&(op, key.clone())).map(Arc::clone)
        }?;
        let state = slot.state.lock();
        if state.slate.is_empty() {
            None
        } else {
            Some(state.slate.bytes().to_vec())
        }
    }

    /// Keys currently cached for updater `op` (bulk reads / debugging).
    pub fn keys_of(&self, op: OpId) -> Vec<Key> {
        let mut keys = Vec::new();
        for shard in self.shards.iter() {
            keys.extend(
                shard.map.lock().iter().filter(|((o, _), _)| *o == op).map(|((_, k), _)| k.clone()),
            );
        }
        keys
    }

    /// Number of dirty slates that would be lost if this machine crashed
    /// right now (§4.3: "whatever changes ... not yet been flushed to the
    /// key-value store are lost").
    pub fn dirty_count(&self) -> u64 {
        let mut dirty = 0u64;
        for shard in self.shards.iter() {
            let slots: Vec<Arc<SlateSlot>> =
                shard.map.lock().iter().map(|(_, slot)| Arc::clone(slot)).collect();
            dirty += slots.iter().filter(|s| s.state.lock().dirty()).count() as u64;
        }
        dirty
    }

    /// Per-shard statistics (hit/miss/occupancy per lock shard).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                entries: s.map.lock().len() as u64,
                capacity: s.capacity as u64,
            })
            .collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut entries = 0u64;
        for shard in self.shards.iter() {
            hits += shard.hits.load(Ordering::Relaxed);
            misses += shard.misses.load(Ordering::Relaxed);
            entries += shard.map.lock().len() as u64;
        }
        let dirty = self.dirty_count();
        CacheStats {
            hits,
            misses,
            store_loads: self.counters.store_loads.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            flush_writes: self.counters.flush_writes.load(Ordering::Relaxed),
            flush_failures: self.counters.flush_failures.load(Ordering::Relaxed),
            ttl_resets: self.counters.ttl_resets.load(Ordering::Relaxed),
            entries,
            dirty,
            shards: self.shards.len() as u64,
            flush_batches: self.counters.flush_batches.load(Ordering::Relaxed),
            flush_batch_p50: self.flush_batch_hist.percentile_us(0.50),
            flush_batch_largest: self.flush_batch_hist.max_us(),
            store_round_trips: self.counters.store_round_trips.load(Ordering::Relaxed),
            miss_coalesced: self.counters.miss_coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::sync::RwLock;
    use std::collections::HashMap;

    /// In-memory backend recording stores.
    #[derive(Debug, Default)]
    struct MemBackend {
        data: RwLock<HashMap<(String, Key), Vec<u8>>>,
        stores: AtomicU64,
    }

    impl SlateBackend for MemBackend {
        fn load(&self, updater: &str, key: &Key, _now: u64) -> Option<Vec<u8>> {
            self.data.read().get(&(updater.to_string(), key.clone())).cloned()
        }
        fn store(
            &self,
            updater: &str,
            key: &Key,
            bytes: &[u8],
            _codec: Codec,
            _ttl: Option<u64>,
            _now: u64,
        ) -> bool {
            self.stores.fetch_add(1, Ordering::Relaxed);
            self.data.write().insert((updater.to_string(), key.clone()), bytes.to_vec());
            true
        }
    }

    /// Backend whose first `fail_n` writes fail (store outage), then
    /// recovers — the regression harness for lost-on-evict updates.
    #[derive(Debug, Default)]
    struct FlakyBackend {
        inner: MemBackend,
        failures_left: AtomicU64,
        failed: AtomicU64,
    }

    impl FlakyBackend {
        fn failing(n: u64) -> Self {
            FlakyBackend {
                inner: MemBackend::default(),
                failures_left: AtomicU64::new(n),
                failed: AtomicU64::new(0),
            }
        }
    }

    impl SlateBackend for FlakyBackend {
        fn load(&self, updater: &str, key: &Key, now: u64) -> Option<Vec<u8>> {
            self.inner.load(updater, key, now)
        }
        fn store(
            &self,
            updater: &str,
            key: &Key,
            bytes: &[u8],
            codec: Codec,
            ttl: Option<u64>,
            now: u64,
        ) -> bool {
            loop {
                let left = self.failures_left.load(Ordering::Acquire);
                if left == 0 {
                    return self.inner.store(updater, key, bytes, codec, ttl, now);
                }
                if self
                    .failures_left
                    .compare_exchange(left, left - 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
    }

    /// Backend whose store/load calls block until the test releases them
    /// — the harness for "no worker stalls behind a wire round trip".
    struct SlowBackend {
        inner: MemBackend,
        /// Signalled (once per store entry) when a store is in flight.
        entered: std::sync::mpsc::Sender<()>,
        /// Store calls block here until the test sends a token.
        release: Mutex<std::sync::mpsc::Receiver<()>>,
        loads: AtomicU64,
    }

    impl SlowBackend {
        fn gated() -> (Arc<SlowBackend>, std::sync::mpsc::Receiver<()>, std::sync::mpsc::Sender<()>)
        {
            let (entered_tx, entered_rx) = std::sync::mpsc::channel();
            let (release_tx, release_rx) = std::sync::mpsc::channel();
            let backend = Arc::new(SlowBackend {
                inner: MemBackend::default(),
                entered: entered_tx,
                release: Mutex::new(release_rx),
                loads: AtomicU64::new(0),
            });
            (backend, entered_rx, release_tx)
        }
    }

    impl SlateBackend for SlowBackend {
        fn load(&self, updater: &str, key: &Key, now: u64) -> Option<Vec<u8>> {
            self.loads.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(30));
            self.inner.load(updater, key, now)
        }
        fn store(
            &self,
            updater: &str,
            key: &Key,
            bytes: &[u8],
            codec: Codec,
            ttl: Option<u64>,
            now: u64,
        ) -> bool {
            let _ = self.entered.send(());
            let _ = self.release.lock().recv(); // park until released
            self.inner.store(updater, key, bytes, codec, ttl, now)
        }
    }

    fn updater_name() -> Arc<str> {
        Arc::from("U1")
    }

    #[test]
    fn miss_then_hit() {
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, backend);
        let name = updater_name();
        let k = Key::from("walmart");
        let slot = cache.get_or_load(0, &name, &k, None, 0);
        assert!(slot.state.lock().slate.is_empty(), "fresh slate starts empty");
        let again = cache.get_or_load(0, &name, &k, None, 1);
        assert!(Arc::ptr_eq(&slot, &again));
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn write_through_persists_immediately() {
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::new(10, FlushPolicy::WriteThrough, Arc::clone(&backend) as _);
        let name = updater_name();
        let k = Key::from("k");
        let slot = cache.get_or_load(0, &name, &k, None, 0);
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"5".to_vec());
            cache.note_write(&slot, &mut state, 10);
            assert!(!state.dirty());
        }
        assert_eq!(backend.load("U1", &k, 0), Some(b"5".to_vec()));
        assert_eq!(cache.stats().flush_writes, 1);
    }

    #[test]
    fn interval_policy_leaves_dirty_until_flush() {
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::new(10, FlushPolicy::IntervalMs(100), Arc::clone(&backend) as _);
        let name = updater_name();
        let k = Key::from("k");
        let slot = cache.get_or_load(0, &name, &k, None, 0);
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"7".to_vec());
            cache.note_write(&slot, &mut state, 10);
            assert!(state.dirty(), "interval policy defers the write");
        }
        assert_eq!(cache.dirty_count(), 1);
        assert_eq!(backend.load("U1", &k, 0), None);
        assert_eq!(cache.flush_dirty(20), 1);
        assert_eq!(backend.load("U1", &k, 0), Some(b"7".to_vec()));
        assert_eq!(cache.dirty_count(), 0);
        // Re-flush with no new writes is a no-op.
        assert_eq!(cache.flush_dirty(30), 0);
    }

    #[test]
    fn eviction_flushes_dirty_victims() {
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::new(2, FlushPolicy::OnEvict, Arc::clone(&backend) as _);
        let name = updater_name();
        for i in 0..5 {
            let k = Key::from(format!("k{i}"));
            let slot = cache.get_or_load(0, &name, &k, None, i);
            let mut state = slot.state.lock();
            state.slate.replace(format!("v{i}").into_bytes());
            cache.note_write(&slot, &mut state, i);
        }
        let s = cache.stats();
        assert!(s.evictions >= 3, "capacity 2 with 5 inserts evicts ≥3: {s:?}");
        assert!(s.flush_writes >= 3, "dirty victims must be persisted");
        // The evicted slates are in the store, reloadable.
        let k0 = Key::from("k0");
        let slot = cache.get_or_load(0, &name, &k0, None, 100);
        assert_eq!(slot.state.lock().slate.bytes(), b"v0");
        assert_eq!(cache.stats().store_loads, 1);
    }

    #[test]
    fn evicted_dirty_slate_survives_a_failed_store_write() {
        // The regression: a dirty slate evicted for capacity whose store
        // write fails used to be dropped from the map — the update was
        // silently lost. It must stay resident (dirty) and reach the
        // store once the backend recovers.
        let backend = Arc::new(FlakyBackend::failing(2));
        let cache = SlateCache::new(1, FlushPolicy::OnEvict, Arc::clone(&backend) as _);
        let name = updater_name();
        let precious = Key::from("precious");
        {
            let slot = cache.get_or_load(0, &name, &precious, None, 0);
            let mut state = slot.state.lock();
            state.slate.replace(b"critical-update".to_vec());
            cache.note_write(&slot, &mut state, 0);
        } // slot Arc dropped: evictable
          // Capacity pressure while the store is down: the eviction flush
          // fails and the victim must be reinserted, not dropped.
        cache.get_or_load(0, &name, &Key::from("intruder-1"), None, 1);
        assert!(backend.failed.load(Ordering::Relaxed) >= 1, "the outage was exercised");
        assert_eq!(
            cache.read(0, &precious),
            Some(b"critical-update".to_vec()),
            "a failed eviction flush must keep the slate resident"
        );
        assert!(cache.stats().flush_failures >= 1);
        assert_eq!(backend.load("U1", &precious, 0), None, "nothing reached the store yet");
        // Burn through the remaining failure, then a flusher sweep
        // succeeds and the value lands in the store.
        let mut swept = 0;
        while backend.load("U1", &precious, 0).is_none() {
            cache.flush_dirty(10 + swept);
            swept += 1;
            assert!(swept < 10, "flush retries never reached the recovered store");
        }
        assert_eq!(backend.load("U1", &precious, 0), Some(b"critical-update".to_vec()));
        assert_eq!(cache.dirty_count(), 0);
    }

    #[test]
    fn capacity_overflow_evicts_only_the_excess() {
        // Regression: victims stay resident during the flush, so the
        // selection loop must stop at the capacity excess — one insert
        // over capacity evicts one entry, not the whole cache.
        let cache = SlateCache::new(4, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        for i in 0..5 {
            cache.get_or_load(0, &name, &Key::from(format!("k{i}")), None, i);
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "exactly the excess is evicted: {s:?}");
        assert_eq!(s.entries, 4);
    }

    #[test]
    fn take_matching_hands_off_and_insert_slot_restores() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        for key in ["stay", "move-a", "move-b"] {
            let slot = cache.get_or_load(0, &name, &Key::from(key), None, 0);
            let mut state = slot.state.lock();
            state.slate.replace(format!("v-{key}").into_bytes());
            cache.note_write(&slot, &mut state, 0);
        }
        let moved = cache.take_matching(0, &|k: &Key| k.as_str().unwrap().starts_with("move"));
        assert_eq!(moved.len(), 2);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.read(0, &Key::from("move-a")), None, "taken slates left the cache");
        assert_eq!(cache.read(0, &Key::from("stay")), Some(b"v-stay".to_vec()));
        // The new owner's cache adopts them with state (and dirtiness)
        // intact.
        let target = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        for (key, slot) in moved {
            assert!(slot.state.lock().dirty(), "handoff preserves dirtiness");
            target.insert_slot(0, key, slot);
        }
        assert_eq!(target.read(0, &Key::from("move-b")), Some(b"v-move-b".to_vec()));
    }

    #[test]
    fn store_loads_resume_counters() {
        // §4.2: restart warms the cache from the store.
        let backend = Arc::new(MemBackend::default());
        backend.store("U1", &Key::from("persisted"), b"42", Codec::Json, None, 0);
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::clone(&backend) as _);
        let slot = cache.get_or_load(0, &updater_name(), &Key::from("persisted"), None, 0);
        assert_eq!(slot.state.lock().slate.counter(), 42);
        assert_eq!(cache.stats().store_loads, 1);
    }

    #[test]
    fn ttl_resets_idle_cached_slates() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        let k = Key::from("idle");
        let slot = cache.get_or_load(0, &name, &k, Some(1), 0);
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"data".to_vec());
            cache.note_write(&slot, &mut state, 0);
        }
        // 0.5s later: still live.
        cache.get_or_load(0, &name, &k, Some(1), 500_000);
        assert!(!slot.state.lock().slate.is_empty());
        // 2s later: reset to empty.
        cache.get_or_load(0, &name, &k, Some(1), 2_000_001);
        assert!(slot.state.lock().slate.is_empty(), "TTL lapse resets the slate (§4.2)");
        assert_eq!(cache.stats().ttl_resets, 1);
    }

    #[test]
    fn read_returns_bytes_without_creating() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        assert_eq!(cache.read(0, &Key::from("nope")), None);
        assert_eq!(cache.stats().entries, 0, "read must not allocate slots");
        let slot = cache.get_or_load(0, &name, &Key::from("k"), None, 0);
        assert_eq!(cache.read(0, &Key::from("k")), None, "empty slate reads as None");
        slot.state.lock().slate.replace(b"live".to_vec());
        assert_eq!(cache.read(0, &Key::from("k")), Some(b"live".to_vec()));
    }

    #[test]
    fn distinct_updaters_have_distinct_slots() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let k = Key::from("shared-key");
        let a = cache.get_or_load(0, &Arc::from("U1"), &k, None, 0);
        let b = cache.get_or_load(1, &Arc::from("U2"), &k, None, 0);
        assert!(!Arc::ptr_eq(&a, &b), "⟨updater, key⟩ identifies a slate (§3)");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn keys_of_filters_by_updater() {
        let cache = SlateCache::new(10, FlushPolicy::OnEvict, Arc::new(NullBackend));
        cache.get_or_load(0, &Arc::from("U1"), &Key::from("a"), None, 0);
        cache.get_or_load(0, &Arc::from("U1"), &Key::from("b"), None, 0);
        cache.get_or_load(1, &Arc::from("U2"), &Key::from("c"), None, 0);
        let mut keys = cache.keys_of(0);
        keys.sort();
        assert_eq!(keys, vec![Key::from("a"), Key::from("b")]);
    }

    #[test]
    fn sharded_capacity_is_pinned_to_the_total() {
        // The budget must not inflate when split: shard capacities sum to
        // exactly the configured total, regardless of divisibility.
        for (capacity, shards) in [(100usize, 8usize), (10, 8), (7, 4), (1, 4), (100_000, 16)] {
            let cache = SlateCache::with_shards(
                capacity,
                FlushPolicy::OnEvict,
                Arc::new(NullBackend),
                shards,
            );
            let n = shards.next_power_of_two();
            assert_eq!(cache.shard_count(), n);
            assert_eq!(cache.capacity(), capacity.max(n), "capacity pinned ({capacity}/{shards})");
        }
    }

    #[test]
    fn sharded_cache_spreads_entries_and_counts_hits_per_shard() {
        let cache = SlateCache::with_shards(10_000, FlushPolicy::OnEvict, Arc::new(NullBackend), 8);
        let name = updater_name();
        for i in 0..512 {
            let k = Key::from(format!("key-{i}"));
            cache.get_or_load(0, &name, &k, None, 0);
            cache.get_or_load(0, &name, &k, None, 1); // one hit each
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 512);
        assert_eq!(stats.hits, 512);
        assert_eq!(stats.misses, 512);
        assert_eq!(stats.shards, 8);
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 8);
        assert_eq!(per_shard.iter().map(|s| s.entries).sum::<u64>(), 512);
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), 512);
        let occupied = per_shard.iter().filter(|s| s.entries > 0).count();
        assert!(occupied >= 6, "fx64 spreads 512 keys over most of 8 shards: {per_shard:?}");
    }

    #[test]
    fn sharded_eviction_respects_per_shard_slices() {
        // 8 slates of budget over 4 shards (2 each): flooding one updater
        // with many keys evicts down to the per-shard slices without the
        // total ever exceeding the budget.
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::with_shards(8, FlushPolicy::OnEvict, Arc::clone(&backend) as _, 4);
        let name = updater_name();
        for i in 0..64 {
            let k = Key::from(format!("k{i}"));
            let slot = cache.get_or_load(0, &name, &k, None, i);
            let mut state = slot.state.lock();
            state.slate.replace(format!("v{i}").into_bytes());
            cache.note_write(&slot, &mut state, i);
        }
        let stats = cache.stats();
        assert!(stats.entries <= 8, "entries bounded by the total budget: {stats:?}");
        assert!(stats.evictions >= 56, "the excess was evicted: {stats:?}");
        assert_eq!(stats.flush_writes, stats.evictions, "every dirty victim was persisted");
        // Everything evicted is reloadable from the store.
        let slot = cache.get_or_load(0, &name, &Key::from("k0"), None, 100);
        assert_eq!(slot.state.lock().slate.bytes(), b"v0");
    }

    #[test]
    fn sharded_dirty_victim_survives_failed_flush() {
        // The PR 3 regression, per shard: an evicted dirty slate whose
        // store write fails stays resident in ITS shard and retries.
        let backend = Arc::new(FlakyBackend::failing(64));
        let cache = SlateCache::with_shards(4, FlushPolicy::OnEvict, Arc::clone(&backend) as _, 4);
        let name = updater_name();
        let mut written = Vec::new();
        for i in 0..32 {
            let k = Key::from(format!("precious-{i}"));
            let slot = cache.get_or_load(0, &name, &k, None, i);
            let mut state = slot.state.lock();
            state.slate.replace(format!("critical-{i}").into_bytes());
            cache.note_write(&slot, &mut state, i);
            written.push(k);
        }
        assert!(backend.failed.load(Ordering::Relaxed) >= 1, "the outage was exercised");
        // Store is down: nothing may have been dropped — every update is
        // either still cached (dirty) or already persisted.
        for (i, k) in written.iter().enumerate() {
            let expect = format!("critical-{i}").into_bytes();
            let live = cache.read(0, k);
            let stored = backend.load("U1", k, 0);
            assert!(
                live.as_deref() == Some(expect.as_slice())
                    || stored.as_deref() == Some(expect.as_slice()),
                "update {i} lost under store outage (live={live:?} stored={stored:?})"
            );
        }
        assert!(cache.stats().flush_failures >= 1);
        // Recovery: sweeps drain every retained dirty slate to the store.
        let mut swept = 0;
        while cache.dirty_count() > 0 {
            cache.flush_dirty(1000 + swept);
            swept += 1;
            assert!(swept < 100, "flush retries never drained the dirty set");
        }
        for (i, k) in written.iter().enumerate() {
            let expect = format!("critical-{i}").into_bytes();
            let in_cache = cache.read(0, k);
            let in_store = backend.load("U1", k, 0);
            assert!(
                in_store.as_deref() == Some(expect.as_slice())
                    || in_cache.as_deref() == Some(expect.as_slice()),
                "update {i} missing after recovery"
            );
        }
    }

    #[test]
    fn memo_hits_count_and_apply_ttl() {
        let cache = SlateCache::with_shards(16, FlushPolicy::OnEvict, Arc::new(NullBackend), 4);
        let name = updater_name();
        let k = Key::from("memoed");
        let slot = cache.get_or_load(0, &name, &k, Some(1), 0);
        slot.state.lock().slate.replace(b"live".to_vec());
        cache.note_memo_hit(0, &slot, 500_000);
        assert!(!slot.state.lock().slate.is_empty(), "within TTL: untouched");
        cache.note_memo_hit(0, &slot, 2_000_001);
        assert!(slot.state.lock().slate.is_empty(), "memo path still applies the TTL reset");
        assert_eq!(cache.stats().hits, 2, "memo hits count as shard hits");
        assert_eq!(cache.stats().ttl_resets, 1);
    }

    #[test]
    fn mid_flight_mutation_is_never_blocked_and_never_lost() {
        // The write-behind regression pair: (1) a worker mutating a slate
        // whose snapshot is mid-flight to the backend must not wait for
        // the (blocking) store write; (2) the flush's compare-and-set on
        // flushed_version must only advance to the version it actually
        // wrote — the mid-flight mutation stays dirty and reaches the
        // store on the next sweep, never silently "already flushed".
        let (backend, entered, release) = SlowBackend::gated();
        let cache =
            Arc::new(SlateCache::new(10, FlushPolicy::IntervalMs(1), Arc::clone(&backend) as _));
        let name = updater_name();
        let k = Key::from("contended");
        let slot = cache.get_or_load(0, &name, &k, None, 0);
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"v1".to_vec());
            cache.note_write(&slot, &mut state, 0);
        }
        // Start the flush; it parks inside the backend store with the
        // v1 snapshot taken and NO state lock held.
        let flusher = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.flush_dirty(10))
        };
        entered.recv_timeout(std::time::Duration::from_secs(5)).expect("flush reached the store");
        // The worker mutates the slate NOW, while the store write is in
        // flight. If the flush held the state lock across the write this
        // would deadlock (the release below comes after), so completing
        // within the timeout is the no-blocking proof.
        let mutated = {
            let cache = Arc::clone(&cache);
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                let mut state = slot.state.lock();
                state.slate.replace(b"v2".to_vec());
                cache.note_write(&slot, &mut state, 11);
            })
        };
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let _ = mutated.join();
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("a worker must never block on an in-flight flush of its slate");
        // Let the store write (of the v1 snapshot) complete.
        release.send(()).unwrap();
        assert_eq!(flusher.join().unwrap(), 1, "the v1 snapshot was written");
        assert_eq!(backend.inner.load("U1", &k, 0), Some(b"v1".to_vec()));
        // The CAS advanced flushed_version only to v1: the newer v2 is
        // still dirty and the next sweep persists it.
        assert!(slot.state.lock().dirty(), "the mid-flight mutation must stay dirty");
        assert_eq!(cache.dirty_count(), 1);
        release.send(()).unwrap(); // pre-release the second store
        assert_eq!(cache.flush_dirty(20), 1);
        assert_eq!(backend.inner.load("U1", &k, 0), Some(b"v2".to_vec()));
        assert!(!slot.state.lock().dirty());
    }

    #[test]
    fn evicted_mid_flight_snapshot_does_not_lose_the_newer_version() {
        // The satellite regression, eviction flavor: a dirty slate being
        // flushed for eviction while a borrower mutates it must stay
        // resident and dirty (the eviction removal re-checks dirtiness
        // under the map lock after the CAS).
        let (backend, entered, release) = SlowBackend::gated();
        let cache = Arc::new(SlateCache::new(1, FlushPolicy::OnEvict, Arc::clone(&backend) as _));
        let name = updater_name();
        let precious = Key::from("precious");
        {
            let slot = cache.get_or_load(0, &name, &precious, None, 0);
            let mut state = slot.state.lock();
            state.slate.replace(b"old".to_vec());
            cache.note_write(&slot, &mut state, 0);
        } // dropped: evictable
        let evictor = {
            let cache = Arc::clone(&cache);
            let name = Arc::clone(&name);
            std::thread::spawn(move || {
                // Capacity pressure: the eviction flush of `precious`
                // parks in the backend.
                cache.get_or_load(0, &name, &Key::from("intruder"), None, 1);
            })
        };
        entered.recv_timeout(std::time::Duration::from_secs(5)).expect("eviction flush started");
        // Mutate the slate while its old snapshot is on the wire.
        let slot = cache.get_or_load(0, &name, &precious, None, 2);
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"newer".to_vec());
            cache.note_write(&slot, &mut state, 2);
        }
        drop(slot);
        release.send(()).unwrap();
        evictor.join().unwrap();
        // The newer version must still be visible (resident) — the CAS
        // only covered the old snapshot, so the slot stayed dirty and the
        // eviction removal declined to drop it.
        assert_eq!(
            cache.read(0, &precious),
            Some(b"newer".to_vec()),
            "a mid-flight mutation must survive the eviction flush"
        );
        release.send(()).unwrap(); // allow the retry sweep's store
        cache.flush_dirty(10);
        assert_eq!(backend.inner.load("U1", &precious, 0), Some(b"newer".to_vec()));
    }

    #[test]
    fn concurrent_flushes_of_one_slot_serialize() {
        // The write-ordering hazard: the store resolves same-key writes by
        // arrival order, so two concurrent in-flight snapshots of one slot
        // (eviction flush + sweep, or two sweeps) could land newest-first
        // and leave the stale bytes durable while the CAS marks the slot
        // clean. The `flushing` flag must make the second flush *skip* the
        // slot (keeping it dirty) instead of issuing a reorderable write.
        let (backend, entered, release) = SlowBackend::gated();
        let cache =
            Arc::new(SlateCache::new(10, FlushPolicy::IntervalMs(1), Arc::clone(&backend) as _));
        let name = updater_name();
        let k = Key::from("ordered");
        let slot = cache.get_or_load(0, &name, &k, None, 0);
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"v1".to_vec());
            cache.note_write(&slot, &mut state, 0);
        }
        let sweep = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.flush_dirty(10))
        };
        entered.recv_timeout(std::time::Duration::from_secs(5)).expect("first flush in flight");
        // Mutate to v2 while the v1 snapshot is parked in the backend,
        // then run a second sweep: it must NOT issue a concurrent store
        // write of this slot (the gated backend would show a second
        // `entered` signal — and the test would deadlock on join).
        {
            let mut state = slot.state.lock();
            state.slate.replace(b"v2".to_vec());
            cache.note_write(&slot, &mut state, 11);
        }
        assert_eq!(cache.flush_dirty(12), 0, "the in-flight slot is skipped, not double-written");
        assert!(
            entered.try_recv().is_err(),
            "no second store write may start while one is in flight"
        );
        release.send(()).unwrap();
        assert_eq!(sweep.join().unwrap(), 1);
        assert_eq!(backend.inner.load("U1", &k, 0), Some(b"v1".to_vec()));
        assert!(slot.state.lock().dirty(), "v2 is still dirty");
        // The skipped slot was re-registered: the next sweep writes v2 and
        // the store converges on the newest version.
        release.send(()).unwrap();
        assert_eq!(cache.flush_dirty(20), 1);
        assert_eq!(backend.inner.load("U1", &k, 0), Some(b"v2".to_vec()));
        assert!(!slot.state.lock().dirty());
        assert_eq!(cache.dirty_count(), 0);
    }

    #[test]
    fn concurrent_misses_share_one_backend_load() {
        // Single-flight read-through: 8 threads missing on the same
        // ⟨op, key⟩ must issue ONE backend load between them.
        let (backend, _entered, _release) = SlowBackend::gated();
        backend.inner.store("U1", &Key::from("hot"), b"77", Codec::Json, None, 0);
        let cache = Arc::new(SlateCache::with_shards(
            100,
            FlushPolicy::OnEvict,
            Arc::clone(&backend) as _,
            4,
        ));
        let name = updater_name();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let name = Arc::clone(&name);
                std::thread::spawn(move || cache.get_or_load(0, &name, &Key::from("hot"), None, 1))
            })
            .collect();
        let slots: Vec<Arc<SlateSlot>> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert!(slots.iter().all(|s| Arc::ptr_eq(s, &slots[0])), "one shared slot");
        assert_eq!(slots[0].state.lock().slate.counter(), 77, "the loaded value is shared");
        assert_eq!(backend.loads.load(Ordering::SeqCst), 1, "one load, not a stampede");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one leader miss");
        assert_eq!(stats.miss_coalesced, 7, "seven waiters coalesced");
        assert_eq!(stats.store_loads, 1);
        // Distinct keys still load independently.
        cache.get_or_load(0, &name, &Key::from("cold"), None, 2);
        assert_eq!(backend.loads.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn flush_sweep_batches_and_visits_only_dirty_slots() {
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::with_shards(
            10_000,
            FlushPolicy::IntervalMs(100),
            Arc::clone(&backend) as _,
            8,
        )
        .with_flush_batch(32);
        let name = updater_name();
        // 500 clean residents + 100 dirty.
        for i in 0..500 {
            cache.get_or_load(0, &name, &Key::from(format!("clean-{i}")), None, 0);
        }
        for i in 0..100 {
            let slot = cache.get_or_load(0, &name, &Key::from(format!("dirty-{i}")), None, 1);
            let mut state = slot.state.lock();
            state.slate.replace(format!("v{i}").into_bytes());
            cache.note_write(&slot, &mut state, 1);
        }
        let trips_before = cache.stats().store_round_trips;
        let stores_before = backend.stores.load(Ordering::Relaxed);
        assert_eq!(cache.flush_dirty(10), 100);
        let stats = cache.stats();
        assert_eq!(
            backend.stores.load(Ordering::Relaxed) - stores_before,
            100,
            "exactly the dirty slots were written — the sweep never touches clean residents"
        );
        let trips = stats.store_round_trips - trips_before;
        assert_eq!(trips, 100_u64.div_ceil(32), "⌈100/32⌉ batched backend calls, not 100");
        assert_eq!(stats.flush_batches, 4);
        assert!(stats.flush_batch_largest >= 32, "full batches were assembled: {stats:?}");
        // A second sweep with nothing dirty issues zero backend calls.
        assert_eq!(cache.flush_dirty(20), 0);
        assert_eq!(cache.stats().store_round_trips, stats.store_round_trips);
        // Everything is reloadable bit-for-bit.
        for i in 0..100 {
            assert_eq!(
                backend.load("U1", &Key::from(format!("dirty-{i}")), 0),
                Some(format!("v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn soft_byte_cap_splits_batches_without_stranding_slots() {
        // The regression: closing a batch early on FLUSH_BATCH_SOFT_BYTES
        // used to leak `flushing = true` on the slot whose snapshot
        // tripped the cap — every later sweep skipped it forever. Two
        // slates big enough that they cannot share a batch must flush in
        // one sweep as two batches, and nothing may stay dirty.
        let backend = Arc::new(MemBackend::default());
        let cache = SlateCache::new(10, FlushPolicy::IntervalMs(100), Arc::clone(&backend) as _);
        let name = updater_name();
        let big = FLUSH_BATCH_SOFT_BYTES / 2 + 1024;
        for key in ["jumbo-a", "jumbo-b"] {
            let slot = cache.get_or_load(0, &name, &Key::from(key), None, 0);
            let mut state = slot.state.lock();
            state.slate.replace(vec![key.as_bytes()[6]; big]);
            cache.note_write(&slot, &mut state, 0);
        }
        assert_eq!(cache.flush_dirty(1), 2, "both jumbo slates flush in ONE sweep");
        assert_eq!(cache.dirty_count(), 0, "no slot may be stranded flushing");
        let stats = cache.stats();
        assert_eq!(stats.flush_batches, 2, "the byte cap split the sweep into two batches");
        assert_eq!(backend.load("U1", &Key::from("jumbo-a"), 0).map(|v| v.len()), Some(big));
        assert_eq!(backend.load("U1", &Key::from("jumbo-b"), 0).map(|v| v.len()), Some(big));
        // And the slots remain flushable afterwards (the handoff barrier
        // must not spin).
        let slot = cache.get_or_load(0, &name, &Key::from("jumbo-a"), None, 2);
        slot.state.lock().slate.replace(b"small-again".to_vec());
        assert!(cache.flush_slot_now(&slot, 3), "the slot is still flushable");
    }

    #[test]
    fn batched_flush_equals_per_slate_flush_in_the_store() {
        // Equivalence: the same dirty set flushed with batch cap 1 (the
        // per-slate write-behind path) and with a large cap must leave
        // bit-identical backend contents.
        let run = |batch: usize| -> std::collections::HashMap<(String, Key), Vec<u8>> {
            let backend = Arc::new(MemBackend::default());
            let cache = SlateCache::with_shards(
                1000,
                FlushPolicy::IntervalMs(5),
                Arc::clone(&backend) as _,
                4,
            )
            .with_flush_batch(batch);
            let name = updater_name();
            for i in 0..64 {
                let slot = cache.get_or_load(0, &name, &Key::from(format!("k{i}")), None, 0);
                let mut state = slot.state.lock();
                state.slate.replace(format!("payload-{i}-{}", "x".repeat(i)).into_bytes());
                cache.note_write(&slot, &mut state, 0);
            }
            cache.flush_dirty(1);
            let contents = backend.data.read().clone();
            contents
        };
        let per_slate = run(1);
        let batched = run(256);
        assert_eq!(per_slate.len(), 64);
        assert_eq!(per_slate, batched, "batched flush must be bit-identical to per-slate flush");
    }

    #[test]
    fn borrowed_slots_survive_eviction_pressure() {
        let cache = SlateCache::new(1, FlushPolicy::OnEvict, Arc::new(NullBackend));
        let name = updater_name();
        let hot = cache.get_or_load(0, &name, &Key::from("hot"), None, 0);
        hot.state.lock().slate.replace(b"precious".to_vec());
        // Insert more entries while `hot` is still borrowed (we hold an Arc).
        for i in 0..5 {
            cache.get_or_load(0, &name, &Key::from(format!("cold{i}")), None, i);
        }
        // The borrowed slot is still reachable and intact.
        let again = cache.get_or_load(0, &name, &Key::from("hot"), None, 100);
        assert_eq!(again.state.lock().slate.bytes(), b"precious");
    }
}
