//! The Muppet engines: distributed execution of MapUpdate applications
//! (§4.1, §4.3, §4.5) over a simulated in-process cluster.
//!
//! ## What is faithful to the paper
//!
//! * **Routing**: every worker shares one hash function mapping
//!   ⟨event key, destination function⟩ to a destination; events pass
//!   *directly* between workers — no master on the data path (§4.1).
//! * **Muppet 1.0**: one worker = one function; a consistent ring per
//!   function spreads its keys over its workers; each updater-worker owns a
//!   private slate cache (the machine's budget split evenly — the §4.5
//!   fragmentation problem).
//! * **Muppet 2.0**: per machine, a pool of threads each able to run any
//!   function; two-choice dispatch into primary/secondary queues; a single
//!   central slate cache per machine; a background store-flusher thread.
//! * **Failure handling** (§4.3): senders detect dead machines on send,
//!   report to the master, the master broadcast removes the machine from
//!   the rings, the undeliverable event is lost and logged; queued events
//!   on the dead machine are lost; unflushed slate changes are lost.
//! * **Queue overflow** (§4.3/§5): drop-and-log, overflow stream, or
//!   source throttling (external intake blocks; internal events force
//!   through to avoid the §5 self-feeding deadlock).
//!
//! ## What is simulated
//!
//! Machines are structs; "the network" is a queue hand-off. See DESIGN.md.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use muppet_core::config::{AppConfig, ConsistencySpec, FlushSpec};
use muppet_core::error::{Error, Result};
use muppet_core::event::{Event, Key, StreamId};
use muppet_core::operator::{Mapper, Updater, VecEmitter};
use muppet_core::sync::{Condvar, Mutex, RwLock};
use muppet_core::workflow::{OpId, OpKind, Workflow};
use muppet_core::{Codec, CodecChoice, Json};
use muppet_net::frame::{MembershipPhase, MembershipUpdate, WireEvent, MAX_FORWARDS};
use muppet_net::tcp::{BatchConfig, TcpListenerHandle, TcpTransport};
use muppet_net::topology::{NodeSpec, Topology};
use muppet_net::transport::{ClusterHandler, InProcessTransport, MachineId, NetError, Transport};
use muppet_obs::{Counter, Level, Logger, Registry, Sample, Sampler};
use muppet_slatestore::cluster::StoreCluster;
use muppet_slatestore::ring::{ConsistentRing, EpochRing};

use crate::cache::{
    FlushPolicy, NullBackend, SlateBackend, SlateCache, SlateSlot, DEFAULT_FLUSH_BATCH_MAX,
};
use crate::dispatch::{choose_between, RouteHash};
use crate::dlq::{DeadLetter, DeadLetterQueue};
use crate::ingestlog::IngestLog;
use crate::master::Master;
use crate::metrics::{Histogram, LatencySummary};
use crate::netstore::RemoteBackend;
use crate::overflow::{DropLog, OverflowAction, OverflowPolicy};
use crate::queue::EventQueue;

/// Default lock-shard count for the Muppet 2.0 central slate cache.
pub const DEFAULT_CACHE_SHARDS: usize = 8;
/// Default per-worker queue drain batch (events per lock acquisition).
pub const DEFAULT_DRAIN_BATCH: usize = 64;
/// Default dead-letter queue capacity per machine.
pub const DEFAULT_DLQ_CAPACITY: usize = 1024;
/// Reserved store column the ingest replay cursor is checkpointed under
/// (never a real updater name — workflow operator names are validated).
const INGEST_CURSOR_COLUMN: &str = "__ingest_cursor";

/// Which generation of Muppet to run (§4.5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// Worker-per-function, per-worker slate caches.
    Muppet1,
    /// Thread pool per machine, two-choice dispatch, central cache.
    #[default]
    Muppet2,
}

/// Which wire connects the cluster's machines.
#[derive(Clone, Debug, Default)]
pub enum TransportKind {
    /// Every machine lives in this process; "the network" is a synchronous
    /// queue hand-off (the seed behaviour, now routed through the
    /// [`Transport`] trait).
    #[default]
    InProcess,
    /// Real TCP: this engine process owns exactly one machine (`local`) of
    /// a static cluster; events to other machines cross actual sockets,
    /// and connection errors drive the §4.3 failure protocol.
    Tcp {
        /// The static cluster layout (`topology.len()` must equal
        /// [`EngineConfig::machines`]).
        topology: Topology,
        /// The machine this process runs.
        local: MachineId,
    },
}

/// Engine deployment configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Muppet 1.0 or 2.0.
    pub kind: EngineKind,
    /// Machines in the cluster (simulated in-process, or cluster-wide
    /// count in TCP mode).
    pub machines: usize,
    /// The wire between machines.
    pub transport: TransportKind,
    /// TCP mode: which machine hosts the durable slate store service.
    /// Nodes other than the host flush/load their slates through the
    /// transport's store frames; `None` means every node uses whatever
    /// store was passed to [`Engine::start`] directly (the in-process
    /// arrangement).
    pub store_host: Option<MachineId>,
    /// Muppet 2.0: worker threads per machine ("as large ... as the
    /// parallelization of the application code allows", §4.5).
    pub workers_per_machine: usize,
    /// Muppet 1.0: workers per map/update function, spread round-robin
    /// across machines (Figure 2 runs 3 mappers + 2 updaters).
    pub workers_per_op: usize,
    /// Per-worker input queue capacity (events).
    pub queue_capacity: usize,
    /// Slate-cache budget per machine (slates). Muppet 1.0 splits this
    /// evenly across the machine's updater workers; 2.0 gives it to the
    /// central cache.
    pub slate_cache_capacity: usize,
    /// Muppet 2.0: lock shards the central cache is split over (rounded
    /// up to a power of two; the budget is pinned across shards). With one
    /// shard every worker serializes on a single mutex — the pre-sharding
    /// hot-path bottleneck. Muppet 1.0 per-worker caches have one owner
    /// and always use a single shard.
    pub cache_shards: usize,
    /// Events a worker drains from its queue per lock acquisition (1 =
    /// the pre-batching pop-per-event behaviour). Batching never *waits*
    /// for a full batch — a drain returns whatever is queued — so it adds
    /// no latency, only removes mutex + condvar round-trips.
    pub drain_batch_max: usize,
    /// Flush policy for dirty slates.
    pub flush: FlushPolicy,
    /// Dirty slates a flush sweep coalesces into one batched backend
    /// call (`SlateBackend::store_many`) at most: over a remote store
    /// host, one `StorePutBatch` wire round trip; on the LSM node, one
    /// WAL group commit. 1 = the per-slate write-behind path.
    pub flush_batch_max: usize,
    /// Queue-overflow policy.
    pub overflow: OverflowPolicy,
    /// Whether to measure end-to-end latency per updater delivery.
    pub record_latency: bool,
    /// TCP mode: events coalesced into one wire frame at most (the
    /// batching senders' size trigger; 1 = unbatched). Ignored
    /// in-process.
    pub net_batch_max: usize,
    /// TCP mode: age bound in microseconds — a queued outbound event
    /// never waits longer than this for its batch to flush (the latency
    /// side of the size/age policy). Ignored in-process.
    pub net_flush_us: u64,
    /// Elastic clusters: the machine count the cluster was *founded*
    /// with. Machines `base..machines` joined later (Muppet 1.0 derives
    /// their worker layout from the join order instead of the founding
    /// round-robin). `None` means every machine is a founding member.
    pub base_machines: Option<usize>,
    /// This node was reserved via the master's `/join` admin call and has
    /// not entered the rings yet: start with the local machine excluded
    /// from all rings, then call [`Engine::announce_join`] — the master's
    /// epoch-stamped membership update installs it everywhere (including
    /// here).
    pub pending_join: bool,
    /// The membership epoch this engine starts at (a joiner inherits the
    /// master's epoch from the join grant; founding members start at 0).
    pub initial_epoch: u64,
    /// Machines already known failed at start (a joiner inherits the
    /// master's failed set so it never routes to corpses).
    pub initial_failed: Vec<usize>,
    /// The committed ring membership at start (`None` = every machine).
    /// A joiner inherits this from its grant so that *reserved but not
    /// yet joined* ids — present in the node list for addressing — never
    /// enter its rings before their own commit.
    pub ring_members: Option<Vec<usize>>,
    /// Master switch for the observability extras that ride the hot
    /// path: sampled per-stage latency spans and per-shard hot-key
    /// sketch offers. The registry's counters and the end-to-end latency
    /// histogram are always on (one relaxed atomic each — they predate
    /// the registry).
    pub metrics: bool,
    /// 1-in-N sampling interval for per-stage latency spans and hot-key
    /// offers (rounded up to a power of two; 1 = observe every event).
    pub latency_sample_n: u64,
    /// Keys tracked per cache shard by the space-saving hot-key sketch
    /// (0 disables per-⟨op, key⟩ telemetry).
    pub hot_key_capacity: usize,
    /// Minimum severity for operational incident logging. Defaults to
    /// `Off` so libraries and tests stay silent; `muppetd` raises it.
    pub log_level: Level,
    /// Emit incident log records as JSON lines instead of human text.
    pub log_json: bool,
    /// Path of this machine's ingest WAL (`None` = no ingest logging,
    /// the paper's §4.3 lose-in-flight-work semantics). When set, every
    /// accepted external event is appended durably before dispatch, and
    /// `Engine::start` replays the segment's suffix past the checkpointed
    /// cursor so a restart converges to bit-identical slates.
    pub ingest_wal: Option<std::path::PathBuf>,
    /// Ingest WAL durability mode: true = fsync per record (lowest loss
    /// window, highest tax); false = leader-based group commit (one fsync
    /// per concurrent batch — the x20 default).
    pub ingest_sync_each: bool,
    /// Dead-letter queue capacity (poison events parked per machine
    /// before the oldest letters are evicted).
    pub dlq_capacity: usize,
    /// Slate/wire byte representation. `Auto` (default) offers MBF in the
    /// TCP hello and stores MBF at rest, falling back to JSON per
    /// connection when the peer predates protocol v5 or is pinned to
    /// JSON. `Json` pins everything to the pre-v5 text wire (the rolling-
    /// upgrade escape hatch); `Mbf` additionally transcodes
    /// container-shaped external event values to MBF at the ingest edge
    /// (one parse+encode per event buys ~30% fewer bytes WAL-appended and
    /// framed — see x22). HTTP endpoints always speak JSON.
    pub wire_codec: CodecChoice,
    /// Map-side combining: when true, same-⟨op, key⟩ runs for updaters
    /// that declare an associative `combine` are pre-aggregated in the
    /// sender outbox (before framing) and in the local dispatch drain
    /// (before the slate lock), so a hot-key burst costs O(peers) wire
    /// entries and one slate mutation per drained batch instead of one
    /// per event. Exactness is preserved by the declared fold-equivalence
    /// contract (`Updater::combine`); updaters that declare nothing are
    /// untouched. Off by default.
    pub combine: bool,
    /// Dynamic hot-key splitting: when a per-shard SpaceSaving sketch
    /// estimates a combining key's event count past this threshold, its
    /// updates transparently fan out across [`SPLIT_WAYS`] ring-
    /// distributed subslates, merged on read through the same combiner;
    /// keys that cool back under half the threshold collapse back to
    /// direct routing. 0 (the default) disables splitting. Requires
    /// `combine` and `metrics` (the sketch is the detector).
    pub hot_split_threshold: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            kind: EngineKind::Muppet2,
            machines: 2,
            transport: TransportKind::InProcess,
            store_host: None,
            workers_per_machine: 4,
            workers_per_op: 2,
            queue_capacity: 4096,
            slate_cache_capacity: 100_000,
            cache_shards: DEFAULT_CACHE_SHARDS,
            drain_batch_max: DEFAULT_DRAIN_BATCH,
            flush: FlushPolicy::default(),
            flush_batch_max: DEFAULT_FLUSH_BATCH_MAX,
            overflow: OverflowPolicy::default(),
            record_latency: true,
            net_batch_max: BatchConfig::default().batch_max,
            net_flush_us: BatchConfig::default().flush_us,
            base_machines: None,
            pending_join: false,
            initial_epoch: 0,
            initial_failed: Vec::new(),
            ring_members: None,
            metrics: true,
            latency_sample_n: 64,
            hot_key_capacity: 64,
            log_level: Level::Off,
            log_json: false,
            ingest_wal: None,
            ingest_sync_each: false,
            dlq_capacity: DEFAULT_DLQ_CAPACITY,
            wire_codec: CodecChoice::Auto,
            combine: false,
            hot_split_threshold: 0,
        }
    }
}

impl EngineConfig {
    /// Derive an engine configuration from an application config file.
    pub fn from_app_config(app: &AppConfig, kind: EngineKind) -> EngineConfig {
        EngineConfig {
            kind,
            machines: app.machines,
            transport: TransportKind::InProcess,
            store_host: None,
            workers_per_machine: app.workers_per_machine,
            workers_per_op: app.workers_per_machine, // 1.0 interpretation
            queue_capacity: app.queue_capacity,
            slate_cache_capacity: app.slate_cache_capacity,
            cache_shards: DEFAULT_CACHE_SHARDS,
            drain_batch_max: DEFAULT_DRAIN_BATCH,
            flush: match app.flush {
                FlushSpec::WriteThrough => FlushPolicy::WriteThrough,
                FlushSpec::IntervalMs(ms) => FlushPolicy::IntervalMs(ms),
                FlushSpec::OnEvict => FlushPolicy::OnEvict,
            },
            flush_batch_max: DEFAULT_FLUSH_BATCH_MAX,
            overflow: OverflowPolicy::default(),
            record_latency: true,
            net_batch_max: BatchConfig::default().batch_max,
            net_flush_us: BatchConfig::default().flush_us,
            base_machines: None,
            pending_join: false,
            initial_epoch: 0,
            initial_failed: Vec::new(),
            ring_members: None,
            metrics: true,
            latency_sample_n: 64,
            hot_key_capacity: 64,
            log_level: Level::Off,
            log_json: false,
            ingest_wal: None,
            ingest_sync_each: false,
            dlq_capacity: DEFAULT_DLQ_CAPACITY,
            wire_codec: CodecChoice::Auto,
            combine: false,
            hot_split_threshold: 0,
        }
    }
}

/// A join reservation issued by the master's `/join` admin endpoint: the
/// id and cluster view the joining `muppetd` starts its engine with.
#[derive(Clone, Debug)]
pub struct JoinGrant {
    /// The machine id assigned to the joiner (always `nodes.len() - 1` —
    /// ids are append-only, never reused).
    pub id: MachineId,
    /// The master's membership epoch at reservation time.
    pub epoch: u64,
    /// The founding machine count (Muppet 1.0 layout replay).
    pub base: usize,
    /// The full node list, joiner included (as a not-yet-joined
    /// reservation).
    pub topology: Topology,
    /// Machines already known failed.
    pub failed: Vec<usize>,
    /// The committed ring members at grant time — a strict subset of the
    /// node list when other reservations are pending; only these may
    /// enter the joiner's initial rings.
    pub members: Vec<usize>,
    /// The cluster's slate-store host, so the joiner wires itself to the
    /// same store the handoff flushes went to (a joiner without it would
    /// fault nothing and silently reset every moved slate).
    pub store_host: Option<usize>,
}

/// Map the config consistency onto the store's enum (convenience for
/// experiment harnesses).
pub fn consistency_of(spec: ConsistencySpec) -> muppet_slatestore::cluster::Consistency {
    match spec {
        ConsistencySpec::One => muppet_slatestore::cluster::Consistency::One,
        ConsistencySpec::Quorum => muppet_slatestore::cluster::Consistency::Quorum,
        ConsistencySpec::All => muppet_slatestore::cluster::Consistency::All,
    }
}

/// Registered operator implementations for a workflow.
#[derive(Default)]
pub struct OperatorSet {
    mappers: Vec<Arc<dyn Mapper>>,
    updaters: Vec<Arc<dyn Updater>>,
}

impl OperatorSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a map function implementation.
    pub fn mapper(mut self, m: impl Mapper) -> Self {
        self.mappers.push(Arc::new(m));
        self
    }

    /// Add an update function implementation.
    pub fn updater(mut self, u: impl Updater) -> Self {
        self.updaters.push(Arc::new(u));
        self
    }

    /// Add a pre-boxed mapper.
    pub fn mapper_arc(mut self, m: Arc<dyn Mapper>) -> Self {
        self.mappers.push(m);
        self
    }

    /// Add a pre-boxed updater.
    pub fn updater_arc(mut self, u: Arc<dyn Updater>) -> Self {
        self.updaters.push(u);
        self
    }
}

/// Resolved operator instance.
enum OpInstance {
    Map(Arc<dyn Mapper>),
    Update { updater: Arc<dyn Updater>, name: Arc<str>, ttl_secs: Option<u64> },
}

/// A queued unit of work: deliver `event` to operator `op`.
struct Packet {
    op: OpId,
    event: Event,
    /// Engine-relative µs at external injection (latency measurement).
    injected_us: u64,
    /// True once redirected to an overflow stream (no double redirects).
    redirected: bool,
    /// Ownership-forwarding hops so far (elastic handoff; capped).
    forwards: u8,
    /// Engine-relative µs at local enqueue when the queue-wait span
    /// sampled this packet; 0 = unsampled. Stamped only on the local
    /// delivery side — never crosses the wire.
    enqueued_us: u64,
}

/// Per-machine state.
struct Machine {
    /// Whether this machine's queues/caches/threads live in this process.
    /// Always true in-process; exactly one machine is local in TCP mode
    /// (the others are bookkeeping stubs for ring/liveness state).
    local: bool,
    alive: AtomicBool,
    queues: Vec<Arc<EventQueue<Packet>>>,
    /// Route each thread is currently processing (two-choice rule 1).
    /// Encoding: 0 = idle, otherwise `route.wrapping_add(1)` — lock-free
    /// because the dispatcher reads these on every send.
    in_flight: Vec<AtomicU64>,
    /// 2.0: one central cache. 1.0: per-thread caches (None for mapper
    /// threads).
    central_cache: Option<Arc<SlateCache>>,
    worker_caches: Vec<Option<Arc<SlateCache>>>,
    /// 1.0: the single op each thread runs (None in 2.0).
    thread_ops: Vec<Option<OpId>>,
}

/// 1.0 worker slot: global id → (machine, thread, function). Slot ids
/// are append-only and their layout is a pure function of the founding
/// configuration plus machine ids (join layout: machine `id ≥ base` owns
/// one slot per op at a deterministic position), so every node derives
/// identical slot ids regardless of when it learned of a machine.
#[derive(Clone, Copy, Debug)]
struct WorkerSlot {
    machine: usize,
    thread: usize,
    /// The function this slot runs (lets membership updates rebuild a
    /// missing machine's ring entries from the slot table alone).
    op: OpId,
}

/// Cumulative engine counters — registry handles, so the same atomic
/// cells feed both [`EngineStats`] and the `/metrics` exposition.
struct Counters {
    submitted: Counter,
    processed: Counter,
    emitted: Counter,
    lost_machine_failure: Counter,
    lost_in_queues: Counter,
    dropped_overflow: Counter,
    redirected_overflow: Counter,
    throttle_waits: Counter,
    publish_errors: Counter,
    forwarded: Counter,
    ingest_logged: Counter,
    dead_lettered: Counter,
    /// Original events absorbed into a pre-aggregated carrier by a
    /// declared combiner (outbox + local drain folds).
    combined_events: Counter,
    /// Reads that merged split subslates back through the combiner.
    split_merge_reads: Counter,
}

impl Counters {
    fn register(reg: &Registry) -> Counters {
        let lost = "Events lost (§4.3), by reason";
        Counters {
            submitted: reg.counter("muppet_events_submitted_total", "External events accepted"),
            processed: reg
                .counter("muppet_events_processed_total", "Operator invocations completed"),
            emitted: reg.counter("muppet_events_emitted_total", "Events emitted by operators"),
            lost_machine_failure: reg.counter_with(
                "muppet_events_lost_total",
                lost,
                &[("reason", "machine_failure")],
            ),
            lost_in_queues: reg.counter_with(
                "muppet_events_lost_total",
                lost,
                &[("reason", "in_queues")],
            ),
            dropped_overflow: reg
                .counter("muppet_overflow_dropped_total", "Events dropped by the overflow policy"),
            redirected_overflow: reg.counter(
                "muppet_overflow_redirected_total",
                "Events redirected to the overflow stream",
            ),
            throttle_waits: reg.counter(
                "muppet_throttle_waits_total",
                "Times an external producer blocked on source throttling",
            ),
            publish_errors: reg.counter(
                "muppet_publish_errors_total",
                "Emissions to unknown/external streams (discarded)",
            ),
            forwarded: reg.counter(
                "muppet_events_forwarded_total",
                "Events re-sent to their current owner (elastic handoff)",
            ),
            ingest_logged: reg.counter(
                "muppet_wal_ingest_records_total",
                "Events appended durably to the ingest WAL",
            ),
            dead_lettered: reg.counter(
                "muppet_dead_letters_total",
                "Poison events parked in the dead-letter queue",
            ),
            combined_events: reg.counter(
                "muppet_combined_events_total",
                "Original events absorbed into combiner-folded carriers",
            ),
            split_merge_reads: reg.counter(
                "muppet_split_merge_reads_total",
                "Slate reads that merged hot-key subslates through the combiner",
            ),
        }
    }
}

/// Public snapshot of engine statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// External events accepted via `submit`.
    pub submitted: u64,
    /// Operator invocations completed.
    pub processed: u64,
    /// Events emitted by operators.
    pub emitted: u64,
    /// Events lost to machine failures (undeliverable sends).
    pub lost_machine_failure: u64,
    /// Events lost inside a crashed machine's queues.
    pub lost_in_queues: u64,
    /// Events dropped by the overflow policy.
    pub dropped_overflow: u64,
    /// Events redirected to the overflow stream.
    pub redirected_overflow: u64,
    /// Times an external producer blocked on source throttling.
    pub throttle_waits: u64,
    /// Emissions to unknown/external streams (discarded, counted).
    pub publish_errors: u64,
    /// Events re-sent to their current owner by a machine that no longer
    /// owned their key (elastic handoff / laggard rings) — never lost,
    /// just re-routed.
    pub forwarded: u64,
    /// The membership epoch this node has installed.
    pub epoch: u64,
    /// End-to-end latency (injection → updater completion).
    pub latency: LatencySummary,
    /// Aggregated slate-cache stats.
    pub cache: crate::cache::CacheStats,
    /// Dirty slates that never reached the store (loss bound, §4.3).
    pub dirty_slates: u64,
    /// Wire-level counters (all zero for the in-process transport).
    pub net: NetSummary,
    /// Queue drain-batch sizes (how many events workers pop per lock
    /// acquisition).
    pub drain: DrainSummary,
    /// The write-behind store pipeline (flush batching + single-flight
    /// misses), aggregated across this node's slate caches.
    pub store: StoreSummary,
    /// Original events absorbed into combiner-folded carriers (map-side
    /// pre-aggregation in the outbox and the local dispatch drain).
    pub combined_events: u64,
    /// Hot keys currently split across subslates on this node.
    pub split_keys_active: u64,
    /// Slate reads that merged split subslates through the combiner.
    pub split_merge_reads: u64,
}

/// Counters of the write-behind store pipeline (DESIGN.md §9).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreSummary {
    /// Batched `store_many` calls issued by flush sweeps.
    pub flush_batches: u64,
    /// Median flush-batch size (power-of-two bucket upper bound; worst
    /// cache when a machine owns several).
    pub flush_batch_p50: u64,
    /// Largest single flush batch.
    pub flush_batch_largest: u64,
    /// Backend round trips (loads + stores + batched stores) — over a
    /// remote store host, the wire-round-trip count of the slate path.
    pub store_round_trips: u64,
    /// Concurrent cache misses that shared another miss's in-flight
    /// backend load (single-flight read-through).
    pub miss_coalesced: u64,
}

/// Distribution of worker queue drain-batch sizes (events per
/// `pop_many`). Percentiles are power-of-two bucket upper bounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainSummary {
    /// Non-empty drains.
    pub drains: u64,
    /// Mean batch size.
    pub mean: u64,
    /// Median batch size (bucket upper bound).
    pub p50: u64,
    /// 99th-percentile batch size (bucket upper bound).
    pub p99: u64,
    /// Largest single drain.
    pub max: u64,
}

/// Snapshot of the TCP transport's counters (see `muppet_net::TcpStats`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NetSummary {
    /// Frames written to peers (events, batches, and request frames).
    pub frames_sent: u64,
    /// Frames received by this node's listener.
    pub frames_received: u64,
    /// Multi-event frames written by the batching senders.
    pub batches_sent: u64,
    /// Events shipped through the batching path.
    pub batched_events_sent: u64,
    /// Wire failures that triggered §4.3 detection.
    pub send_failures: u64,
    /// Times a producer blocked on a full peer outbox (backpressure).
    pub queue_full_waits: u64,
    /// Gauge: events accepted for send but not yet on the wire.
    pub outbound_backlog: u64,
}

impl Machine {
    /// A stub for a machine that lives in another process.
    fn remote_stub() -> Machine {
        Machine {
            local: false,
            alive: AtomicBool::new(true),
            queues: Vec::new(),
            in_flight: Vec::new(),
            central_cache: None,
            worker_caches: Vec::new(),
            thread_ops: Vec::new(),
        }
    }

    /// A local Muppet 2.0 machine: a worker pool and one central cache.
    fn local2(cfg: &EngineConfig, backend: &Arc<dyn SlateBackend>, obs: &CacheObs) -> Machine {
        let threads = cfg.workers_per_machine.max(1);
        Machine {
            local: true,
            alive: AtomicBool::new(true),
            queues: (0..threads).map(|_| Arc::new(EventQueue::new(cfg.queue_capacity))).collect(),
            in_flight: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            central_cache: Some(Arc::new(
                SlateCache::with_shards(
                    cfg.slate_cache_capacity,
                    cfg.flush,
                    Arc::clone(backend),
                    cfg.cache_shards.max(1),
                )
                .with_flush_batch(cfg.flush_batch_max)
                .with_store_codec(cfg.wire_codec.store_codec())
                .with_hot_keys(obs.hot_key_capacity, obs.hot_sample_n)
                .with_flush_latency(Arc::clone(&obs.flush_latency))
                .with_logger(Arc::clone(&obs.logger)),
            )),
            worker_caches: (0..threads).map(|_| None).collect(),
            thread_ops: (0..threads).map(|_| None).collect(),
        }
    }

    /// A local Muppet 1.0 machine from its thread→function binding; each
    /// updater thread gets an even share of the machine's cache budget
    /// (§4.5).
    fn local1(
        thread_ops: &[OpId],
        wf: &Workflow,
        cfg: &EngineConfig,
        backend: &Arc<dyn SlateBackend>,
        obs: &CacheObs,
    ) -> Machine {
        let n_upd =
            thread_ops.iter().filter(|&&op| wf.op(op).kind == OpKind::Update).count().max(1);
        let per_worker_cap = (cfg.slate_cache_capacity / n_upd).max(1);
        // A machine can end up with zero assigned workers (more machines
        // than worker slots); keep one idle thread so every per-thread
        // vector stays consistent.
        let n_threads = thread_ops.len().max(1);
        let mut worker_caches: Vec<Option<Arc<SlateCache>>> = thread_ops
            .iter()
            .map(|&op| {
                if wf.op(op).kind == OpKind::Update {
                    Some(Arc::new(
                        SlateCache::new(per_worker_cap, cfg.flush, Arc::clone(backend))
                            .with_flush_batch(cfg.flush_batch_max)
                            .with_store_codec(cfg.wire_codec.store_codec())
                            .with_hot_keys(obs.hot_key_capacity, obs.hot_sample_n)
                            .with_flush_latency(Arc::clone(&obs.flush_latency))
                            .with_logger(Arc::clone(&obs.logger)),
                    ))
                } else {
                    None
                }
            })
            .collect();
        worker_caches.resize_with(n_threads, || None);
        let mut bound_ops: Vec<Option<OpId>> = thread_ops.iter().map(|&op| Some(op)).collect();
        bound_ops.resize(n_threads, None);
        Machine {
            local: true,
            alive: AtomicBool::new(true),
            queues: (0..n_threads).map(|_| Arc::new(EventQueue::new(cfg.queue_capacity))).collect(),
            in_flight: (0..n_threads).map(|_| AtomicU64::new(0)).collect(),
            central_cache: None,
            worker_caches,
            thread_ops: bound_ops,
        }
    }
}

/// The Muppet 1.0 worker layout of one machine that *joined* a running
/// cluster: one worker slot per function, thread `t` running op `t`.
/// A pure function of the workflow, so every node (and the joiner
/// itself) derives the identical layout from the join order alone.
fn join_layout_ops(wf: &Workflow) -> Vec<OpId> {
    (0..wf.ops().len()).collect()
}

/// The routing state one membership epoch defines: the machine ring
/// (2.0), the per-op worker-slot rings (1.0), and the slot table. All of
/// it lives under ONE `RwLock` — updaters hold the read lock across a
/// slate mutation, so installing a new epoch (write lock) is atomic with
/// respect to every in-flight update: after the install, no worker can
/// still be mutating a slate the node just handed off.
struct Membership {
    /// 2.0: ring over machines, stamped with the master-assigned
    /// membership epoch (failure drops reshape the ring but do not mint
    /// epochs; only committed membership updates do).
    machine_ring: EpochRing,
    /// 1.0: ring per op over global worker-slot ids.
    op_rings: Vec<ConsistentRing>,
    /// 1.0: global slot id → (machine, thread).
    worker_slots: Vec<WorkerSlot>,
    /// Staged next-epoch state between the prepare and commit phases of a
    /// join. Once staged, *processing* ownership checks use it (this node
    /// has flushed its moved-away slates and must forward instead of
    /// updating them locally) while *sender* routing keeps the committed
    /// rings until the cluster-wide flush barrier passes.
    pending: Option<PendingEpoch>,
}

/// A staged (prepared, not yet committed) membership epoch.
struct PendingEpoch {
    epoch: u64,
    machine_ring: ConsistentRing,
    op_rings: Vec<ConsistentRing>,
    worker_slots: Vec<WorkerSlot>,
    joined: Vec<MachineId>,
}

impl Membership {
    /// Committed 2.0 owner of `route` — what senders route by.
    fn owner2(&self, route: RouteHash) -> Option<usize> {
        self.machine_ring.owner(route)
    }

    /// Committed 1.0 owning slot of ⟨op, route⟩.
    fn slot1(&self, op: OpId, route: RouteHash) -> Option<WorkerSlot> {
        self.op_rings.get(op)?.owner(route).map(|sid| self.worker_slots[sid])
    }

    /// 2.0 owner including a staged epoch (processing-side checks).
    fn effective_owner2(&self, route: RouteHash) -> Option<usize> {
        match &self.pending {
            Some(p) => p.machine_ring.owner(route),
            None => self.machine_ring.owner(route),
        }
    }

    /// 1.0 owning slot including a staged epoch (processing-side checks).
    fn effective_slot1(&self, op: OpId, route: RouteHash) -> Option<WorkerSlot> {
        match &self.pending {
            Some(p) => p.op_rings.get(op)?.owner(route).map(|sid| p.worker_slots[sid]),
            None => self.slot1(op, route),
        }
    }
}

/// Help string shared by every `muppet_stage_latency_us` series.
const STAGE_HELP: &str = "Sampled per-stage event latency, microseconds";

/// The observability wiring every slate cache receives at construction —
/// founding machines and elastic joiners alike (kept in [`Shared`] so
/// `join_machine` builds identically instrumented caches).
#[derive(Clone)]
struct CacheObs {
    /// The `stage="flush"` latency histogram (backend store calls).
    flush_latency: Arc<Histogram>,
    logger: Arc<Logger>,
    /// Keys per shard for the hot-key sketch (0 = disabled).
    hot_key_capacity: usize,
    /// 1-in-N sampling of sketch offers (counted with weight N).
    hot_sample_n: u64,
}

/// Sampled per-stage latency spans: ingest (submit → accepted by a
/// queue), queue-wait (enqueue → drained), service (slate fetch +
/// operator execution, labeled per op), and fan-out (emitted records →
/// re-routed). The flush stage lives cache-side via [`CacheObs`]. Each
/// span is timed on 1 in `latency_sample_n` events; an unsampled event
/// pays one relaxed fetch_add and a branch.
struct StageMetrics {
    /// False ⇒ every span site is a single load + branch.
    enabled: bool,
    sampler_ingest: Sampler,
    sampler_queue: Sampler,
    sampler_service: Sampler,
    sampler_fanout: Sampler,
    ingest: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    /// Indexed by `OpId`.
    service: Vec<Arc<Histogram>>,
    fanout: Arc<Histogram>,
}

impl StageMetrics {
    fn new(reg: &Registry, wf: &Workflow, cfg: &EngineConfig) -> StageMetrics {
        let n = cfg.latency_sample_n.max(1);
        let stage =
            |s: &str| reg.histogram_with("muppet_stage_latency_us", STAGE_HELP, &[("stage", s)]);
        StageMetrics {
            enabled: cfg.metrics,
            sampler_ingest: Sampler::every(n),
            sampler_queue: Sampler::every(n),
            sampler_service: Sampler::every(n),
            sampler_fanout: Sampler::every(n),
            ingest: stage("ingest"),
            queue_wait: stage("queue_wait"),
            service: wf
                .ops()
                .iter()
                .map(|op| {
                    reg.histogram_with(
                        "muppet_stage_latency_us",
                        STAGE_HELP,
                        &[("stage", "service"), ("op", &op.name)],
                    )
                })
                .collect(),
            fanout: stage("fanout"),
        }
    }
}

/// Cooling-probe window for split hot keys: a key whose rewrite traffic
/// over one window falls below half `hot_split_threshold` collapses back
/// to base-key routing (its subslates persist and keep merging on read).
const SPLIT_COOL_WINDOW_US: u64 = 250_000;

/// Dynamic hot-key fan-out state. The owner-side detector installs a
/// combining ⟨op, key⟩ here when the cache's space-saving sketch
/// estimates its event count past [`EngineConfig::hot_split_threshold`];
/// while installed, senders and owners rewrite the key round-robin to
/// one of [`crate::dispatch::SPLIT_WAYS`] ring-distributed subkeys.
/// Reads merge base + subslates through the declared combiner, so the
/// split is invisible to exactness. Subkeys are ordinary keys to every
/// other subsystem (handoff, flush, recovery) — no epoch special-casing.
struct SplitTracker {
    /// Actively split ⟨op, key⟩ pairs. Touched on the rewrite path only
    /// when `active > 0`, so unsplit workloads never take the lock.
    map: RwLock<HashMap<(OpId, Key), Arc<SplitEntry>>>,
    /// Fast-path gate: the number of entries in `map`.
    active: AtomicU64,
    /// Sampled-probe counter for the hot detector (one sketch estimate
    /// per `SPLIT_PROBE_EVERY` update events).
    probe: AtomicU64,
}

/// Per-split-key routing state.
struct SplitEntry {
    /// Round-robin subkey cursor.
    rr: AtomicU64,
    /// Rewrites observed in the current cooling window.
    hits: AtomicU64,
    /// Engine-relative µs when the current cooling window opened.
    window_us: AtomicU64,
}

/// One hot-key sketch probe per this many update events: keeps the
/// steady detector cost to a relaxed `fetch_add`.
const SPLIT_PROBE_EVERY: u64 = 64;

/// A batch-fold run that absorbed at least this many events probes the
/// splitter unconditionally — coalescing that deep is itself the skew
/// signal, and the carrier-level probe above undersamples keys the fold
/// has already collapsed.
const SPLIT_FOLD_PROBE_MIN: u64 = 8;

struct Shared {
    wf: Workflow,
    ops: Vec<OpInstance>,
    cfg: EngineConfig,
    /// Per-machine state; grows when machines join (ids are append-only).
    machines: RwLock<Vec<Arc<Machine>>>,
    /// The epoch-stamped routing state (all rings + slot table).
    membership: RwLock<Membership>,
    /// The full cluster node list, reservations included (authoritative
    /// on the master; grown from membership updates elsewhere).
    cluster_nodes: Mutex<Vec<NodeSpec>>,
    /// Serializes join reservations + protocol runs on the master.
    join_lock: Mutex<()>,
    /// Highest epoch this master has ever handed out (monotone even
    /// across aborted joins — a staged-but-never-committed epoch must
    /// never be reused with different content).
    epoch_mint: AtomicU64,
    /// The wire (in-process hand-off or TCP).
    transport: Arc<dyn Transport>,
    /// TCP mode: the concrete transport, for wire-level stats snapshots.
    tcp: Option<Arc<TcpTransport>>,
    /// TCP mode: the locally hosted store service, served to peers via
    /// the transport's store frames.
    host_store: Option<Arc<StoreCluster>>,
    /// The slate backend every cache flushes to / loads from (also the
    /// read fallback when a slate's owner is unreachable, §4.4).
    backend: Arc<dyn SlateBackend>,
    /// Whether `backend` actually persists (false for [`NullBackend`]):
    /// decides whether elastic handoff goes through the store or moves
    /// slots directly between in-process caches.
    has_backend: bool,
    master: Master,
    /// Events enqueued but not yet fully processed.
    pending: AtomicI64,
    stopping: AtomicBool,
    counters: Counters,
    latency: Arc<Histogram>,
    /// Batch sizes of non-empty worker queue drains.
    drain_hist: Arc<Histogram>,
    /// The unified metrics registry: every counter/histogram above is a
    /// handle into it, and collectors pull cache/net/store state at
    /// scrape time. `Engine::registry()` / `GET /metrics` expose it.
    registry: Arc<Registry>,
    /// Sampled per-stage latency spans.
    stages: StageMetrics,
    /// Leveled incident logger (peer deaths, flush failures). Disabled
    /// (`Level::Off`) unless the config raises it.
    logger: Arc<Logger>,
    /// Peers whose death was already logged through `logger`: §4.3
    /// detection can fire concurrently from the sync-send, forward, and
    /// batch-sender paths for one incident; this set makes the
    /// operator-facing record exactly-once while the [`DropLog`] ring
    /// keeps its per-event entries.
    logged_peer_deaths: Mutex<HashSet<usize>>,
    /// Cache observability wiring, reused by elastic joins.
    cache_obs: CacheObs,
    drop_log: DropLog,
    start: Instant,
    /// Source-throttling gate: producers wait here when queues are full.
    throttle_mutex: Mutex<()>,
    throttle_cv: Condvar,
    /// The per-machine ingest WAL (`None` = the paper's §4.3 semantics:
    /// in-flight work dies with the machine).
    ingest_log: Option<Arc<IngestLog>>,
    /// Events replayed from the ingest WAL by this start (past the
    /// checkpointed cursor).
    recovered: AtomicU64,
    /// Poison events parked instead of killing worker threads.
    dlq: Arc<DeadLetterQueue>,
    /// Dynamic hot-key splitting state (empty unless `cfg.combine` and
    /// `cfg.hot_split_threshold > 0` ever install a split).
    splits: SplitTracker,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn machine(&self, id: usize) -> Option<Arc<Machine>> {
        self.machines.read().get(id).cloned()
    }

    fn machines_snapshot(&self) -> Vec<Arc<Machine>> {
        self.machines.read().clone()
    }

    /// Whether dynamic hot-key splitting is configured on.
    fn split_enabled(&self) -> bool {
        self.cfg.combine && self.cfg.hot_split_threshold > 0
    }

    /// Rewrite path: the round-robin subkey for an actively split
    /// ⟨op, key⟩, `None` when the pair is not split. Each rewrite bumps
    /// the entry's cooling window; a window whose rewrite traffic fell
    /// below half the threshold collapses the entry — routing reverts
    /// to the base key while the subslates persist (reads keep merging
    /// them, so no update is ever lost to a collapse).
    fn split_route(&self, op: OpId, key: &Key) -> Option<Key> {
        if self.splits.active.load(Ordering::Acquire) == 0 {
            return None;
        }
        let entry = self.splits.map.read().get(&(op, key.clone())).cloned()?;
        let now = self.now_us();
        let opened = entry.window_us.load(Ordering::Acquire);
        if now.saturating_sub(opened) >= SPLIT_COOL_WINDOW_US
            && entry
                .window_us
                .compare_exchange(opened, now, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            let windowed = entry.hits.swap(0, Ordering::AcqRel);
            if windowed < self.cfg.hot_split_threshold / 2 {
                let mut map = self.splits.map.write();
                if map.remove(&(op, key.clone())).is_some() {
                    self.splits.active.fetch_sub(1, Ordering::AcqRel);
                }
                return None;
            }
        }
        entry.hits.fetch_add(1, Ordering::Relaxed);
        let shard = entry.rr.fetch_add(1, Ordering::Relaxed) as usize % crate::dispatch::SPLIT_WAYS;
        Some(crate::dispatch::split_subkey(key, shard))
    }

    /// Owner-side hot detector: install a split for a combining
    /// ⟨op, key⟩ whose sketch estimate crossed the threshold. Probes the
    /// sketch once per [`SPLIT_PROBE_EVERY`] update events; callers
    /// exclude subkeys (a split never recurses).
    fn maybe_split(&self, cache: &SlateCache, op: OpId, key: &Key) {
        if !self.splits.probe.fetch_add(1, Ordering::Relaxed).is_multiple_of(SPLIT_PROBE_EVERY) {
            return;
        }
        self.probe_split(cache, op, key);
    }

    /// Unconditional sketch check. The batch-fold path calls this
    /// directly for runs it just coalesced past the fold-probe floor:
    /// under deep folding a hot key surfaces as a handful of carriers,
    /// so the sampled per-event probe above would almost never land on
    /// it — but the absorbed count *is* the heat signal, already paid
    /// for.
    fn probe_split(&self, cache: &SlateCache, op: OpId, key: &Key) {
        let Some(est) = cache.hot_estimate(op, key) else { return };
        if est < self.cfg.hot_split_threshold {
            return;
        }
        let mut map = self.splits.map.write();
        if let std::collections::hash_map::Entry::Vacant(v) = map.entry((op, key.clone())) {
            let now = self.now_us();
            v.insert(Arc::new(SplitEntry {
                rr: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                window_us: AtomicU64::new(now),
            }));
            self.splits.active.fetch_add(1, Ordering::AcqRel);
        }
    }

    fn epoch(&self) -> u64 {
        self.membership.read().machine_ring.epoch()
    }

    /// Total events the cluster's queues are sized to hold; the source-
    /// throttling high-water mark.
    fn total_queue_budget(&self) -> usize {
        self.machines.read().iter().map(|m| m.queues.len() * self.cfg.queue_capacity).sum()
    }

    /// The store key under which this machine checkpoints its ingest
    /// replay cursor. Rides the slate backend as a reserved ⟨column,
    /// row⟩ pair, so cursor durability shares the store's quorum/WAL
    /// guarantees without a second persistence mechanism.
    fn ingest_cursor_key(&self) -> Key {
        let id = self.transport.local_machine().unwrap_or(0);
        Key::from(format!("node-{id}"))
    }

    /// The checkpointed replay cursor: events `0..cursor` of the ingest
    /// WAL are already reflected in store-recovered slates.
    fn load_ingest_cursor(&self) -> u64 {
        self.backend
            .load(INGEST_CURSOR_COLUMN, &self.ingest_cursor_key(), self.now_us())
            .and_then(|bytes| String::from_utf8(bytes).ok()?.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Persist the replay cursor. Returns false if the store rejected
    /// the write (the caller must not treat the checkpoint as taken).
    fn store_ingest_cursor(&self, cursor: u64) -> bool {
        self.backend.store(
            INGEST_CURSOR_COLUMN,
            &self.ingest_cursor_key(),
            cursor.to_string().as_bytes(),
            Codec::Json,
            None,
            self.now_us(),
        )
    }
}

/// A running Muppet engine.
pub struct Engine {
    shared: Arc<Shared>,
    /// Keeps the transport's weak handler registration alive.
    _handler: Arc<EngineHandler>,
    /// TCP mode: the node's frame listener (stopped on shutdown/drop).
    listener: Mutex<Option<TcpListenerHandle>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    flushers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Engine {
    /// Start an engine for `workflow` with the given operator
    /// implementations. `store` attaches the durable slate store; without
    /// it, slates exist only in the caches (unless
    /// [`EngineConfig::store_host`] points at a remote store service).
    pub fn start(
        workflow: Workflow,
        ops: OperatorSet,
        cfg: EngineConfig,
        store: Option<Arc<StoreCluster>>,
    ) -> Result<Engine> {
        // Build the wire first: machine materialization below depends on
        // which machines are local.
        let (transport, tcp): (Arc<dyn Transport>, Option<Arc<TcpTransport>>) = match &cfg.transport
        {
            TransportKind::InProcess => (Arc::new(InProcessTransport::new()), None),
            TransportKind::Tcp { topology, local } => {
                if topology.len() != cfg.machines {
                    return Err(Error::Config(format!(
                        "topology has {} nodes but EngineConfig.machines = {}",
                        topology.len(),
                        cfg.machines
                    )));
                }
                let batch = BatchConfig {
                    batch_max: cfg.net_batch_max,
                    flush_us: cfg.net_flush_us,
                    // Bound each peer outbox like a worker queue: the
                    // backlog participates in the same throttle budget.
                    queue_capacity: cfg.queue_capacity.max(1),
                };
                let tcp =
                    TcpTransport::new_with_codec(topology.clone(), *local, batch, cfg.wire_codec)
                        .map_err(Error::Config)?;
                (Arc::clone(&tcp) as Arc<dyn Transport>, Some(tcp))
            }
        };
        let is_local = |m: usize| transport.is_local(m);

        // Pick the slate backend: a directly attached store, a remote
        // store service reached through the transport, or nothing.
        let backend: Arc<dyn SlateBackend> =
            match (&store, cfg.store_host, transport.local_machine()) {
                (Some(cluster), _, _) => Arc::clone(cluster) as Arc<dyn SlateBackend>,
                (None, Some(host), Some(local)) if host != local => {
                    Arc::new(RemoteBackend::new(Arc::clone(&transport), host))
                }
                _ => Arc::new(NullBackend),
            };
        let has_backend = store.is_some()
            || matches!((cfg.store_host, transport.local_machine()), (Some(h), Some(l)) if h != l);

        // Resolve operator implementations against the workflow.
        let mut instances: Vec<Option<OpInstance>> =
            (0..workflow.ops().len()).map(|_| None).collect();
        for m in ops.mappers {
            let id = workflow
                .op_id(m.name())
                .ok_or_else(|| Error::UnknownOperator(m.name().to_string()))?;
            if workflow.op(id).kind != OpKind::Map {
                return Err(Error::OperatorMismatch {
                    expected: "a map function".into(),
                    got: m.name().to_string(),
                });
            }
            instances[id] = Some(OpInstance::Map(m));
        }
        for u in ops.updaters {
            let id = workflow
                .op_id(u.name())
                .ok_or_else(|| Error::UnknownOperator(u.name().to_string()))?;
            if workflow.op(id).kind != OpKind::Update {
                return Err(Error::OperatorMismatch {
                    expected: "an update function".into(),
                    got: u.name().to_string(),
                });
            }
            let ttl = workflow.op(id).ttl_secs.or(u.slate_ttl_secs());
            let name: Arc<str> = Arc::from(u.name());
            instances[id] = Some(OpInstance::Update { updater: u, name, ttl_secs: ttl });
        }
        let ops: Vec<OpInstance> = instances
            .into_iter()
            .enumerate()
            .map(|(id, inst)| {
                inst.ok_or_else(|| Error::UnknownOperator(workflow.op(id).name.clone()))
            })
            .collect::<Result<_>>()?;

        // The observability substrate: one registry per engine, built
        // before the machines so every cache records into it from the
        // first event.
        let registry = Arc::new(Registry::new());
        let logger = if cfg.log_level == Level::Off {
            Logger::disabled()
        } else {
            Logger::stderr(cfg.log_level, cfg.log_json, transport.local_machine().map(|m| m as u64))
        };
        let stages = StageMetrics::new(&registry, &workflow, &cfg);
        let cache_obs = CacheObs {
            flush_latency: registry.histogram_with(
                "muppet_stage_latency_us",
                STAGE_HELP,
                &[("stage", "flush")],
            ),
            logger: Arc::clone(&logger),
            hot_key_capacity: if cfg.metrics { cfg.hot_key_capacity } else { 0 },
            hot_sample_n: cfg.latency_sample_n.max(1),
        };

        // Build machines + worker layout. Machines `0..base` carry the
        // founding layout; machines `base..` joined a running cluster and
        // carry the deterministic join layout (replayed identically on
        // every node from the join order).
        let base = cfg.base_machines.unwrap_or(cfg.machines).min(cfg.machines).max(1);
        let local_machine = transport.local_machine();
        let mut machines: Vec<Arc<Machine>> = Vec::with_capacity(cfg.machines);
        let mut worker_slots = Vec::new();
        let mut op_rings: Vec<ConsistentRing> =
            (0..workflow.ops().len()).map(|_| ConsistentRing::new(0, 32)).collect();
        match cfg.kind {
            EngineKind::Muppet2 => {
                for m in 0..cfg.machines {
                    machines.push(Arc::new(if is_local(m) {
                        Machine::local2(&cfg, &backend, &cache_obs)
                    } else {
                        Machine::remote_stub()
                    }));
                }
            }
            EngineKind::Muppet1 => {
                // Founding machines: workers_per_op workers per function,
                // round-robin over machines 0..base.
                let mut per_machine_threads: Vec<Vec<OpId>> = vec![Vec::new(); base];
                let mut slot_positions: Vec<Vec<(usize, usize)>> = Vec::new(); // per op: (machine, thread)
                let mut rr = 0usize;
                for op_id in 0..workflow.ops().len() {
                    let mut positions = Vec::new();
                    for _ in 0..cfg.workers_per_op.max(1) {
                        let m = rr % base;
                        rr += 1;
                        let thread = per_machine_threads[m].len();
                        per_machine_threads[m].push(op_id);
                        positions.push((m, thread));
                    }
                    slot_positions.push(positions);
                }
                for (m, thread_ops) in per_machine_threads.iter().enumerate() {
                    machines.push(Arc::new(if is_local(m) {
                        Machine::local1(thread_ops, &workflow, &cfg, &backend, &cache_obs)
                    } else {
                        Machine::remote_stub()
                    }));
                }
                // Founding worker slots + per-op rings over slot ids.
                for (op, positions) in slot_positions.iter().enumerate() {
                    for &(machine, thread) in positions {
                        let slot_id = worker_slots.len();
                        worker_slots.push(WorkerSlot { machine, thread, op });
                        op_rings[op].add(slot_id);
                    }
                }
                // Joined machines (id order): one slot per function,
                // thread t running op t, at deterministic slot ids.
                let join_ops = join_layout_ops(&workflow);
                for id in base..cfg.machines {
                    machines.push(Arc::new(if is_local(id) {
                        Machine::local1(&join_ops, &workflow, &cfg, &backend, &cache_obs)
                    } else {
                        Machine::remote_stub()
                    }));
                    for (thread, &op) in join_ops.iter().enumerate() {
                        let slot_id = worker_slots.len();
                        worker_slots.push(WorkerSlot { machine: id, thread, op });
                        op_rings[op].add(slot_id);
                    }
                }
            }
        }

        // The machine ring holds only committed members: not a pending
        // local joiner, not machines already known failed, and — when
        // the grant says so — not ids that are mere reservations (other
        // joiners racing us; they enter via their own commit).
        let in_ring = |m: usize| {
            if cfg.pending_join && local_machine == Some(m) {
                return false;
            }
            if cfg.initial_failed.contains(&m) {
                return false;
            }
            cfg.ring_members.as_ref().map(|members| members.contains(&m)).unwrap_or(true)
        };
        let mut machine_ring = ConsistentRing::new(0, 64);
        for m in 0..cfg.machines {
            if in_ring(m) {
                machine_ring.add(m);
            }
        }
        // Out-of-ring machines lose their 1.0 slots too; failed ones
        // also their alive flag.
        for m in 0..cfg.machines {
            if in_ring(m) {
                continue;
            }
            for (slot_id, slot) in worker_slots.iter().enumerate() {
                if slot.machine == m {
                    for ring in op_rings.iter_mut() {
                        ring.remove(slot_id);
                    }
                }
            }
            if cfg.initial_failed.contains(&m) {
                if let Some(machine) = machines.get(m) {
                    machine.alive.store(false, Ordering::Release);
                }
            }
        }

        // The authoritative node list (addresses for TCP; synthesized
        // placeholders in-process, where addressing is by id only).
        let cluster_nodes: Vec<NodeSpec> = match &cfg.transport {
            TransportKind::Tcp { topology, .. } => topology.nodes.clone(),
            TransportKind::InProcess => (0..cfg.machines)
                .map(|id| NodeSpec { id, host: "in-process".into(), port: 0, http_port: 0 })
                .collect(),
        };

        // Crash recovery: open (or create) the ingest WAL before anything
        // can accept events. A torn tail from a crash mid-append is cut
        // back to the last intact record; the recovered history is
        // replayed past the checkpointed cursor once the workers are up.
        let (ingest_log, ingest_recovery) = match &cfg.ingest_wal {
            Some(path) => {
                let (log, rec) = IngestLog::open(path, cfg.ingest_sync_each)
                    .map_err(|e| Error::Config(format!("cannot open ingest WAL: {e}")))?;
                (Some(Arc::new(log)), Some(rec))
            }
            None => (None, None),
        };

        let initial_epoch = cfg.initial_epoch;
        let initial_failed = cfg.initial_failed.clone();
        let dlq_capacity = cfg.dlq_capacity;
        let shared = Arc::new(Shared {
            membership: RwLock::new(Membership {
                machine_ring: EpochRing::from_ring(machine_ring, initial_epoch),
                op_rings,
                worker_slots,
                pending: None,
            }),
            cluster_nodes: Mutex::new(cluster_nodes),
            join_lock: Mutex::new(()),
            epoch_mint: AtomicU64::new(initial_epoch),
            wf: workflow,
            ops,
            machines: RwLock::new(machines),
            transport: Arc::clone(&transport),
            tcp: tcp.clone(),
            host_store: store.clone(),
            backend,
            has_backend,
            master: Master::new(),
            pending: AtomicI64::new(0),
            stopping: AtomicBool::new(false),
            counters: Counters::register(&registry),
            latency: registry.histogram(
                "muppet_event_latency_us",
                "End-to-end event latency (injection → updater completion), microseconds",
            ),
            drain_hist: registry
                .histogram("muppet_drain_batch_events", "Events per non-empty worker queue drain"),
            registry,
            stages,
            logger,
            logged_peer_deaths: Mutex::new(HashSet::new()),
            cache_obs,
            drop_log: DropLog::new(1024),
            start: Instant::now(),
            throttle_mutex: Mutex::new(()),
            throttle_cv: Condvar::new(),
            ingest_log,
            recovered: AtomicU64::new(0),
            dlq: Arc::new(DeadLetterQueue::new(dlq_capacity)),
            splits: SplitTracker {
                map: RwLock::new(HashMap::new()),
                active: AtomicU64::new(0),
                probe: AtomicU64::new(0),
            },
            cfg,
        });
        for failed in initial_failed {
            shared.master.mark_failed(failed, initial_epoch);
        }
        register_collectors(&shared);

        // Wire the transport back into this engine.
        let handler = Arc::new(EngineHandler(Arc::clone(&shared)));
        transport.register(Arc::downgrade(&handler) as std::sync::Weak<dyn ClusterHandler>);

        // Spawn worker threads (local machines only; remote stubs have no
        // queues).
        let mut threads = Vec::new();
        {
            let machines = shared.machines.read();
            for m in 0..machines.len() {
                for t in 0..machines[m].queues.len() {
                    threads.push(spawn_worker(&shared, m, t));
                }
            }
        }
        // Spawn background flusher threads (one per local machine) when the
        // policy is interval-based and a backend (direct or remote) is
        // attached. With an ingest WAL the flushers stay parked: store
        // slate state may only advance together with the replay cursor
        // (at `Engine::checkpoint`), or a restart would replay events
        // whose effects were already flushed and double-count them.
        let mut flushers = Vec::new();
        if matches!(shared.cfg.flush, FlushPolicy::IntervalMs(_))
            && has_backend
            && shared.ingest_log.is_none()
        {
            let machines = shared.machines.read();
            for m in 0..machines.len() {
                if machines[m].local {
                    flushers.push(spawn_flusher(&shared, m));
                }
            }
        }
        // TCP mode: open this node's inbound wire last, so peers never see
        // a half-initialized engine.
        let listener = match &tcp {
            Some(tcp) => Some(
                tcp.start_listener()
                    .map_err(|e| Error::Config(format!("cannot bind event listener: {e}")))?,
            ),
            None => None,
        };
        let engine = Engine {
            shared,
            _handler: handler,
            listener: Mutex::new(listener),
            threads: Mutex::new(threads),
            flushers: Mutex::new(flushers),
        };
        // Replay the ingest suffix past the checkpointed cursor: the
        // store recovered the slates as of the last checkpoint, so only
        // events logged after it are re-injected. A node that was
        // checkpointed at shutdown (SIGTERM) replays nothing.
        if let Some(recovery) = ingest_recovery {
            engine.replay_recovered(recovery.events, recovery.truncated);
        }
        Ok(engine)
    }

    /// Re-inject the ingest-WAL suffix past the persisted cursor. The
    /// replayed events fan out exactly like fresh submissions — same
    /// routing, same seq assignment order — but are *not* re-appended to
    /// the WAL (they are already in it) and count as `recovered`, not
    /// `submitted`.
    fn replay_recovered(&self, events: Vec<Event>, truncated: bool) {
        let shared = &self.shared;
        let cursor = shared.load_ingest_cursor();
        let total = events.len() as u64;
        let skip = cursor.min(total) as usize;
        let replayed = (events.len() - skip) as u64;
        for event in events.into_iter().skip(skip) {
            let injected_us = shared.now_us();
            let subscribers = shared.wf.subscribers_of(event.stream.as_str());
            if let Some((&last, rest)) = subscribers.split_last() {
                for &op in rest {
                    let packet = Packet {
                        op,
                        event: event.clone(),
                        injected_us,
                        redirected: false,
                        forwards: 0,
                        enqueued_us: 0,
                    };
                    try_send(shared, packet, true);
                }
                let packet = Packet {
                    op: last,
                    event,
                    injected_us,
                    redirected: false,
                    forwards: 0,
                    enqueued_us: 0,
                };
                try_send(shared, packet, true);
            }
        }
        shared.recovered.store(replayed, Ordering::Release);
        if replayed > 0 || truncated {
            shared.logger.warn(
                "ingest WAL recovery",
                &[
                    ("logged", total.into()),
                    ("cursor", cursor.into()),
                    ("replayed", replayed.into()),
                    ("torn_tail", u64::from(truncated).into()),
                ],
            );
        }
    }

    /// Inject one external event (the paper's special source mapper M0
    /// reading the input stream, §4.1). Routes to every subscriber of
    /// `event.stream`, which must be a declared external stream.
    ///
    /// Under [`OverflowPolicy::SourceThrottle`], this call *blocks* while
    /// the cluster is backlogged beyond its aggregate queue budget — the
    /// §5 source throttling: "Muppet ... can slow down the pace at which
    /// it consumes events from its input streams ... until the hotspot
    /// updater has a chance to catch up." Internal events never block
    /// (§5's deadlock argument), so a *downstream* hotspot surfaces here,
    /// at the source, via the global in-flight count.
    pub fn submit(&self, mut event: Event) -> Result<()> {
        let stream = event.stream.clone();
        if !self.shared.wf.is_external(stream.as_str()) {
            return Err(Error::ExternalStreamViolation(stream.as_str().to_string()));
        }
        self.mbf_ingest(&mut event);
        if self.shared.cfg.overflow == OverflowPolicy::SourceThrottle {
            let budget = self.shared.total_queue_budget() as i64;
            // The in-flight count includes the transport's outbound
            // backlog (TCP mode): events parked in per-peer batching
            // outboxes are cluster load exactly like queued events, so a
            // slow wire throttles the source instead of growing buffers.
            while self.shared.pending.load(Ordering::Acquire)
                + self.shared.transport.outbound_backlog() as i64
                > budget
            {
                if self.shared.stopping.load(Ordering::Acquire) {
                    break;
                }
                self.shared.counters.throttle_waits.inc();
                let mut guard = self.shared.throttle_mutex.lock();
                self.shared.throttle_cv.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
        // Durability line: an accepted event is in the ingest WAL before
        // any worker sees it, so a crash after this point replays it.
        // Group commit batches concurrent submitters into one fsync.
        if let Some(log) = &self.shared.ingest_log {
            log.append(&event)
                .map_err(|e| Error::Config(format!("ingest WAL append failed: {e}")))?;
            self.shared.counters.ingest_logged.inc();
        }
        self.dispatch_accepted(event);
        Ok(())
    }

    /// Submit a coalesced run of external events — the ingest twin of
    /// the transport outbox's frame batching. Semantically identical to
    /// calling [`Engine::submit`] per event, but the durability line is
    /// drawn once: the whole run enters the ingest WAL as a single
    /// staged batch sharing one fsync ([`IngestLog::append_batch`]), so
    /// sources that deliver in frames pay the fsync tax per frame, not
    /// per event. Source throttling is checked once at the head of the
    /// run; like `submit`, events are only accepted from external
    /// streams.
    pub fn submit_many(&self, mut events: Vec<Event>) -> Result<()> {
        for event in &events {
            if !self.shared.wf.is_external(event.stream.as_str()) {
                return Err(Error::ExternalStreamViolation(event.stream.as_str().to_string()));
            }
        }
        for event in &mut events {
            self.mbf_ingest(event);
        }
        if self.shared.cfg.overflow == OverflowPolicy::SourceThrottle {
            let budget = self.shared.total_queue_budget() as i64;
            while self.shared.pending.load(Ordering::Acquire)
                + self.shared.transport.outbound_backlog() as i64
                > budget
            {
                if self.shared.stopping.load(Ordering::Acquire) {
                    break;
                }
                self.shared.counters.throttle_waits.inc();
                let mut guard = self.shared.throttle_mutex.lock();
                self.shared.throttle_cv.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
        if let Some(log) = &self.shared.ingest_log {
            log.append_batch(&events)
                .map_err(|e| Error::Config(format!("ingest WAL append failed: {e}")))?;
            self.shared.counters.ingest_logged.add(events.len() as u64);
        }
        for event in events {
            self.dispatch_accepted(event);
        }
        Ok(())
    }

    /// Ingest-edge transcoding: under `CodecChoice::Mbf` (explicit
    /// opt-in), container-shaped external event values (JSON
    /// objects/arrays) are rewritten to MBF once here — before the
    /// ingest-WAL append, so a crash replay redispatches the identical
    /// bytes — and every downstream `Json::from_payload` skips the text
    /// parser. This trades one parse+encode per event at the ingest edge
    /// for ~30% fewer bytes WAL-appended and framed downstream (x22), so
    /// it is not part of `Auto`: the default negotiates binary where it
    /// is free (slate materialization, store frames) and leaves submitted
    /// values untouched. Scalar and plain-text values (`"42"`, raw URLs)
    /// pass through untouched in every mode: applications read those via
    /// `value_str`, and the reference engine must observe the same text.
    fn mbf_ingest(&self, event: &mut Event) {
        if self.shared.cfg.wire_codec != CodecChoice::Mbf {
            return;
        }
        if !matches!(event.value.first(), Some(b'{') | Some(b'[')) {
            return;
        }
        if let Ok(json) = Json::parse_bytes(&event.value) {
            if let Ok(mbf) = json.to_mbf() {
                event.value = mbf.into();
            }
        }
    }

    /// Fan an accepted (validated, WAL-durable) external event out to its
    /// stream's subscriber queues. The shared tail of `submit` and
    /// `submit_many`.
    fn dispatch_accepted(&self, event: Event) {
        let stream = event.stream.clone();
        let injected_us = self.shared.now_us();
        self.shared.counters.submitted.inc();
        // The workflow is immutable after start: iterate the subscriber
        // slice directly (no per-event Vec) and move the event into the
        // last packet instead of cloning it.
        let subscribers = self.shared.wf.subscribers_of(stream.as_str());
        if let Some((&last, rest)) = subscribers.split_last() {
            for &op in rest {
                let packet = Packet {
                    op,
                    event: event.clone(),
                    injected_us,
                    redirected: false,
                    forwards: 0,
                    enqueued_us: 0,
                };
                try_send(&self.shared, packet, true);
            }
            let packet = Packet {
                op: last,
                event,
                injected_us,
                redirected: false,
                forwards: 0,
                enqueued_us: 0,
            };
            try_send(&self.shared, packet, true);
        }
        let stages = &self.shared.stages;
        if stages.enabled && stages.sampler_ingest.hit() {
            // The ingest span: external injection → accepted by a queue
            // (or the transport's outbox) for every subscriber.
            stages.ingest.record(self.shared.now_us().saturating_sub(injected_us));
        }
    }

    /// Convenience: submit with the engine assigning the timestamp (µs
    /// since engine start).
    pub fn submit_kv(&self, stream: &str, key: Key, value: impl Into<Bytes>) -> Result<()> {
        let ts = self.shared.now_us();
        self.submit(Event::new(stream, ts, key, value))
    }

    /// Wait until all in-flight events finish (or `timeout` elapses) —
    /// including events still parked in the transport's outbound batching
    /// queues, which have not reached their destination machine yet.
    /// Returns true on a full drain.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.shared.pending.load(Ordering::Acquire) > 0
            || self.shared.transport.outbound_backlog() > 0
        {
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// Read a slate's current value from the owning machine's cache —
    /// the §4.4 live read ("from Muppet's slate cache ... rather than from
    /// the durable key-value store to ensure an up-to-date reply"). When
    /// the owning machine lives in another process (TCP mode), the read
    /// crosses the wire as a `SlateGet` frame.
    ///
    /// A read addressed to a machine that has died (or was dropped from
    /// the ring between resolution and the wire call) does not surface as
    /// a failure: it falls back to the *current* owner and then to the
    /// durable store, so the client sees the last flushed value instead
    /// of an error — the §4.3 survivor-recovery path, applied to reads.
    pub fn read_slate(&self, updater: &str, key: &Key) -> Option<Vec<u8>> {
        let base = self.read_slate_unsplit(updater, key);
        let shared = &self.shared;
        if !shared.split_enabled() || crate::dispatch::split_base_of(key).is_some() {
            return base;
        }
        let Some(op) = shared.wf.op_id(updater) else { return base };
        let OpInstance::Update { updater: up, .. } = &shared.ops[op] else { return base };
        if !up.combines() {
            return base;
        }
        // Merge-on-read: a key that is (or ever was) split holds part of
        // its total in up to SPLIT_WAYS subslates; fold them into the
        // base value through the combiner. Collapsed keys keep their
        // subslate residue, so this runs whenever splitting is
        // configured — reads of never-split keys cost SPLIT_WAYS cache
        // misses only in that configuration.
        let mut acc = base;
        let mut merged = false;
        for shard in 0..crate::dispatch::SPLIT_WAYS {
            let sub = crate::dispatch::split_subkey(key, shard);
            if let Some(part) = self.read_slate_unsplit(updater, &sub) {
                merged = true;
                acc = match acc {
                    None => Some(part),
                    // Splitting requires a total combiner (the
                    // `Updater::combine` contract); on a veto keep the
                    // accumulated prefix rather than corrupt it.
                    Some(a) => Some(up.combine(&a, &part).unwrap_or(a)),
                };
            }
        }
        if merged {
            shared.counters.split_merge_reads.inc();
        }
        acc
    }

    /// [`Engine::read_slate`] without subslate merging: one key, one
    /// value (the pre-splitting read path, still the whole story for
    /// non-combining operators).
    fn read_slate_unsplit(&self, updater: &str, key: &Key) -> Option<Vec<u8>> {
        let op = self.shared.wf.op_id(updater)?;
        if self.shared.wf.op(op).kind != OpKind::Update {
            return None;
        }
        let first_owner = self.owner_machine(updater, key)?;
        match self.read_slate_from(first_owner, op, updater, key) {
            Ok(Some(bytes)) => Some(bytes),
            Ok(None) => {
                // The live owner has nothing cached (evicted, or freshly
                // handed the arc and not yet faulted): the store holds
                // the last flushed value — the §4.2 miss path, applied
                // to reads.
                self.shared.backend.load(updater, key, self.shared.now_us())
            }
            Err(_) => {
                // The owner was unreachable. The failed request may
                // already have driven the §4.3 protocol; re-resolve and
                // try the new owner once, then fall back to the store.
                let retried = self
                    .owner_machine(updater, key)
                    .filter(|&again| again != first_owner)
                    .and_then(|again| self.read_slate_from(again, op, updater, key).ok().flatten());
                retried.or_else(|| self.shared.backend.load(updater, key, self.shared.now_us()))
            }
        }
    }

    /// One read attempt against a specific machine's cache.
    fn read_slate_from(
        &self,
        owner: usize,
        op: OpId,
        updater: &str,
        key: &Key,
    ) -> std::result::Result<Option<Vec<u8>>, NetError> {
        if self.shared.transport.is_local(owner) {
            let Some(machine) = self.shared.machine(owner) else { return Ok(None) };
            if !machine.alive.load(Ordering::Acquire) {
                return Err(NetError::Unreachable(owner));
            }
            Ok(match self.shared.cfg.kind {
                EngineKind::Muppet2 => {
                    machine.central_cache.as_ref().and_then(|cache| cache.read(op, key))
                }
                EngineKind::Muppet1 => {
                    let route = key.route_hash(updater);
                    let slot = self.shared.membership.read().effective_slot1(op, route);
                    slot.filter(|s| s.machine == owner)
                        .and_then(|s| machine.worker_caches.get(s.thread)?.as_ref()?.read(op, key))
                }
            })
        } else {
            self.shared.transport.read_slate(owner, updater, key.as_bytes())
        }
    }

    /// The machine whose rings currently own ⟨`updater`, `key`⟩ — where
    /// an event with that key would be routed and where its slate lives.
    /// `None` for unknown operators or once every owner has failed.
    pub fn owner_machine(&self, updater: &str, key: &Key) -> Option<usize> {
        let op = self.shared.wf.op_id(updater)?;
        let route = key.route_hash(updater);
        let membership = self.shared.membership.read();
        match self.shared.cfg.kind {
            EngineKind::Muppet2 => membership.owner2(route),
            EngineKind::Muppet1 => membership.slot1(op, route).map(|slot| slot.machine),
        }
    }

    /// All cached keys of one updater across machines (bulk reads, §5).
    pub fn cached_keys(&self, updater: &str) -> Vec<Key> {
        let Some(op) = self.shared.wf.op_id(updater) else { return Vec::new() };
        let mut keys = Vec::new();
        for m in &self.shared.machines_snapshot() {
            if !m.alive.load(Ordering::Acquire) {
                continue;
            }
            if let Some(cache) = &m.central_cache {
                keys.extend(cache.keys_of(op));
            }
            for cache in m.worker_caches.iter().flatten() {
                keys.extend(cache.keys_of(op));
            }
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Bulk-dump every *cached* slate of one updater — §5's "Bulk Reading
    /// of Slates" concern: "repeated HTTP slate fetches can be expensive
    /// ... or difficult (because the query agent must know all the slate
    /// keys in advance)". Returns ⟨key, bytes⟩ in key order; empty slates
    /// are skipped. Slates already evicted from the caches live only in
    /// the store (see `StoreCluster::scan_column` for that path).
    pub fn dump_slates(&self, updater: &str) -> Vec<(Key, Vec<u8>)> {
        let Some(op) = self.shared.wf.op_id(updater) else { return Vec::new() };
        let read_from = |cache: &crate::cache::SlateCache, out: &mut Vec<(Key, Vec<u8>)>| {
            for key in cache.keys_of(op) {
                if let Some(bytes) = cache.read(op, &key) {
                    out.push((key, bytes));
                }
            }
        };
        let mut out = Vec::new();
        for m in &self.shared.machines_snapshot() {
            if !m.alive.load(Ordering::Acquire) {
                continue;
            }
            if let Some(cache) = &m.central_cache {
                read_from(cache, &mut out);
            }
            for cache in m.worker_caches.iter().flatten() {
                read_from(cache, &mut out);
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }

    /// Kill a machine abruptly: its queued events are lost, its threads
    /// stop, its unflushed slates are lost (§4.3). Routing updates lazily —
    /// the next send to the dead machine triggers the failure report.
    /// In TCP mode this only makes sense for the local machine (killing a
    /// peer means killing its process).
    pub fn kill_machine(&self, machine: usize) {
        let Some(m) = self.shared.machine(machine) else { return };
        if !m.local {
            return;
        }
        if !m.alive.swap(false, Ordering::AcqRel) {
            return;
        }
        let mut lost = 0u64;
        for q in &m.queues {
            let dropped = q.drain_all();
            lost += dropped.len() as u64;
            q.notify();
        }
        self.shared.counters.lost_in_queues.add(lost);
        self.shared.pending.fetch_sub(lost as i64, Ordering::AcqRel);
    }

    /// Number of machines known (configured + joined).
    pub fn machine_count(&self) -> usize {
        self.shared.machines.read().len()
    }

    /// The membership epoch this node has installed.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// This node's view of the cluster: (epoch, node list, failed ids).
    pub fn membership_view(&self) -> (u64, Vec<NodeSpec>, Vec<usize>) {
        (
            self.shared.epoch(),
            self.shared.cluster_nodes.lock().clone(),
            self.shared.master.failed_machines(),
        )
    }

    /// In-process elastic growth: add one machine to the running
    /// simulated cluster and drive the full membership protocol through
    /// the transport — reserve, prepare (epoch-stamped, with the dirty
    /// slates of moved arcs handed off), commit. Returns the new
    /// machine's id. TCP clusters grow via `muppetd --join` instead.
    pub fn join_machine(&self) -> Result<usize> {
        let shared = &self.shared;
        if shared.transport.local_machine().is_some() {
            return Err(Error::Config(
                "join_machine grows in-process clusters; TCP nodes join via `muppetd --join`"
                    .into(),
            ));
        }
        let id = {
            let _serialize = shared.join_lock.lock();
            let mut machines = shared.machines.write();
            let id = machines.len();
            let machine = match shared.cfg.kind {
                EngineKind::Muppet2 => {
                    Machine::local2(&shared.cfg, &shared.backend, &shared.cache_obs)
                }
                EngineKind::Muppet1 => Machine::local1(
                    &join_layout_ops(&shared.wf),
                    &shared.wf,
                    &shared.cfg,
                    &shared.backend,
                    &shared.cache_obs,
                ),
            };
            machines.push(Arc::new(machine));
            drop(machines);
            shared.cluster_nodes.lock().push(NodeSpec {
                id,
                host: "in-process".into(),
                port: 0,
                http_port: 0,
            });
            let machines = shared.machines.read();
            let mut threads = self.threads.lock();
            for t in 0..machines[id].queues.len() {
                threads.push(spawn_worker(shared, id, t));
            }
            if matches!(shared.cfg.flush, FlushPolicy::IntervalMs(_))
                && shared.has_backend
                && shared.ingest_log.is_none()
            {
                self.flushers.lock().push(spawn_flusher(shared, id));
            }
            id
        };
        // Announce readiness: the (in-process) master role runs the
        // prepare → handoff → commit protocol synchronously.
        shared
            .transport
            .send_join(0, id)
            .map_err(|e| Error::Config(format!("join announcement failed: {e}")))?;
        if !self.ring_contains(id) {
            return Err(Error::Config(format!("machine {id} failed to enter the rings")));
        }
        Ok(id)
    }

    /// Master-side admin (the HTTP `POST /join` endpoint): reserve a
    /// cluster id for a joining `muppetd`. The node is appended to the
    /// peer table — so the master can talk to it — but enters no ring
    /// until its engine announces readiness ([`Engine::announce_join`]).
    pub fn admin_reserve_join(&self, host: &str, port: u16, http_port: u16) -> Result<JoinGrant> {
        let shared = &self.shared;
        let Some(tcp) = &shared.tcp else {
            return Err(Error::Config("join reservations require the TCP transport".into()));
        };
        let master = tcp.topology().master;
        if shared.transport.local_machine() != Some(master) {
            return Err(Error::Config(format!("joins must be sent to the master (node {master})")));
        }
        let _serialize = shared.join_lock.lock();
        let mut cluster_nodes = shared.cluster_nodes.lock();
        let id = cluster_nodes.len();
        let spec = NodeSpec { id, host: host.to_string(), port, http_port };
        tcp.add_peer(&spec).map_err(Error::Config)?;
        shared.machines.write().push(Arc::new(Machine::remote_stub()));
        cluster_nodes.push(spec);
        let mut members = shared.membership.read().machine_ring.members().to_vec();
        members.sort_unstable();
        Ok(JoinGrant {
            id,
            epoch: shared.epoch(),
            base: shared.cfg.base_machines.unwrap_or(shared.cfg.machines),
            topology: Topology { nodes: cluster_nodes.clone(), master },
            failed: shared.master.failed_machines(),
            members,
            store_host: shared.cfg.store_host,
        })
    }

    /// Joiner-side: announce to the master that this node (started with
    /// [`EngineConfig::pending_join`], listener live) is ready to enter
    /// the rings. The master's epoch-stamped membership update installs
    /// it everywhere — including here, once the commit arrives.
    pub fn announce_join(&self) -> Result<()> {
        let shared = &self.shared;
        let Some(local) = shared.transport.local_machine() else {
            return Err(Error::Config("announce_join is for TCP joiners".into()));
        };
        let Some(tcp) = &shared.tcp else {
            return Err(Error::Config("announce_join is for TCP joiners".into()));
        };
        shared
            .transport
            .send_join(tcp.topology().master, local)
            .map_err(|e| Error::Config(format!("join announcement failed: {e}")))
    }

    /// Restarted-node side of restart re-identification: tell the master
    /// "machine `local` is back under its old id". The master revives the
    /// wire, clears the previous incarnation's §4.3 death-ledger entry,
    /// and — if the crash was detected and the id dropped from the rings —
    /// re-runs the join protocol to restore the old ring position. A no-op
    /// for in-process clusters and for the master itself (which applies
    /// the same steps locally).
    pub fn announce_restart(&self) -> Result<()> {
        let shared = &self.shared;
        let Some(local) = shared.transport.local_machine() else {
            return Ok(());
        };
        let Some(tcp) = &shared.tcp else {
            return Ok(());
        };
        let master = tcp.topology().master;
        if local == master {
            EngineHandler(Arc::clone(shared)).handle_reintroduce(local);
            return Ok(());
        }
        shared
            .transport
            .reintroduce(master, local)
            .map_err(|e| Error::Config(format!("restart announcement failed: {e}")))?;
        Ok(())
    }

    /// Whether the master has been told about a machine failure yet
    /// (detection is send-driven, §4.3). On non-master TCP nodes this
    /// reflects receipt of the master's broadcast.
    pub fn failure_detected(&self, machine: usize) -> bool {
        self.shared.master.is_failed(machine)
    }

    /// Whether `machine` is still a member of the routing ring (false once
    /// the §4.3 broadcast dropped it, true again after a committed join).
    pub fn ring_contains(&self, machine: usize) -> bool {
        self.shared.membership.read().machine_ring.contains(machine)
    }

    /// The machine this engine runs locally (`None` in-process, where all
    /// machines are local).
    pub fn local_machine(&self) -> Option<usize> {
        self.shared.transport.local_machine()
    }

    /// Machine ids known dead, in id order.
    pub fn failed_machines(&self) -> Vec<usize> {
        self.shared.master.failed_machines()
    }

    /// Microseconds since the engine started (the engine's store clock).
    pub fn now_us(&self) -> u64 {
        self.shared.now_us()
    }

    /// Peak queue occupancy across all workers (the §4.5 status
    /// information: "the event count of the largest event queues").
    pub fn max_queue_high_water(&self) -> usize {
        self.shared
            .machines
            .read()
            .iter()
            .flat_map(|m| m.queues.iter())
            .map(|q| q.high_water())
            .max()
            .unwrap_or(0)
    }

    /// Snapshot engine statistics.
    pub fn stats(&self) -> EngineStats {
        let c = &self.shared.counters;
        let mut cache = crate::cache::CacheStats::default();
        let mut dirty = 0u64;
        for m in &self.shared.machines_snapshot() {
            let mut add = |s: crate::cache::CacheStats| {
                cache.hits += s.hits;
                cache.misses += s.misses;
                cache.store_loads += s.store_loads;
                cache.evictions += s.evictions;
                cache.flush_writes += s.flush_writes;
                cache.flush_failures += s.flush_failures;
                cache.ttl_resets += s.ttl_resets;
                cache.entries += s.entries;
                cache.dirty += s.dirty;
                cache.shards += s.shards;
                cache.flush_batches += s.flush_batches;
                cache.flush_batch_p50 = cache.flush_batch_p50.max(s.flush_batch_p50);
                cache.flush_batch_largest = cache.flush_batch_largest.max(s.flush_batch_largest);
                cache.store_round_trips += s.store_round_trips;
                cache.miss_coalesced += s.miss_coalesced;
            };
            if let Some(central) = &m.central_cache {
                add(central.stats());
            }
            for wc in m.worker_caches.iter().flatten() {
                add(wc.stats());
            }
            dirty = cache.dirty;
        }
        let net = match &self.shared.tcp {
            Some(tcp) => {
                let t = tcp.stats();
                NetSummary {
                    frames_sent: t.frames_sent.load(Ordering::Relaxed),
                    frames_received: t.frames_received.load(Ordering::Relaxed),
                    batches_sent: t.batches_sent.load(Ordering::Relaxed),
                    batched_events_sent: t.batched_events_sent.load(Ordering::Relaxed),
                    send_failures: t.send_failures.load(Ordering::Relaxed),
                    queue_full_waits: t.queue_full_waits.load(Ordering::Relaxed),
                    outbound_backlog: t.outbound_backlog.load(Ordering::Relaxed),
                }
            }
            None => NetSummary::default(),
        };
        EngineStats {
            submitted: c.submitted.get(),
            processed: c.processed.get(),
            emitted: c.emitted.get(),
            lost_machine_failure: c.lost_machine_failure.get(),
            lost_in_queues: c.lost_in_queues.get(),
            dropped_overflow: c.dropped_overflow.get(),
            redirected_overflow: c.redirected_overflow.get(),
            throttle_waits: c.throttle_waits.get(),
            publish_errors: c.publish_errors.get(),
            forwarded: c.forwarded.get(),
            combined_events: c.combined_events.get(),
            split_keys_active: self.shared.splits.active.load(Ordering::Acquire),
            split_merge_reads: c.split_merge_reads.get(),
            epoch: self.shared.epoch(),
            latency: self.shared.latency.summary(),
            cache,
            dirty_slates: dirty,
            net,
            drain: {
                let d = self.shared.drain_hist.summary();
                DrainSummary {
                    drains: d.count,
                    mean: d.mean_us,
                    p50: d.p50_us,
                    p99: d.p99_us,
                    max: d.max_us,
                }
            },
            store: StoreSummary {
                flush_batches: cache.flush_batches,
                flush_batch_p50: cache.flush_batch_p50,
                flush_batch_largest: cache.flush_batch_largest,
                store_round_trips: cache.store_round_trips,
                miss_coalesced: cache.miss_coalesced,
            },
        }
    }

    /// The engine's unified metrics registry: every [`EngineStats`]
    /// counter plus cache/net/store collectors. `registry().render()` is
    /// the Prometheus text exposition served at `GET /metrics`.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// The Prometheus text exposition of this engine's registry.
    pub fn metrics_text(&self) -> String {
        self.shared.registry.render()
    }

    /// Whole seconds since the engine started.
    pub fn uptime_s(&self) -> u64 {
        self.shared.start.elapsed().as_secs()
    }

    /// The hottest ⟨updater, key⟩ pairs this node has seen, estimated by
    /// the per-shard space-saving sketches (count, overshoot bound), best
    /// first. Empty when `hot_key_capacity` is 0 or metrics are off.
    pub fn hot_keys(&self, k: usize) -> Vec<(String, Key, u64, u64)> {
        let mut all = Vec::new();
        for m in &self.shared.machines_snapshot() {
            if let Some(central) = &m.central_cache {
                all.extend(central.hot_keys(k));
            }
            for wc in m.worker_caches.iter().flatten() {
                all.extend(wc.hot_keys(k));
            }
        }
        all.sort_by(|a, b| b.count.cmp(&a.count).then(a.err.cmp(&b.err)));
        all.truncate(k);
        all.into_iter()
            .map(|hh| {
                let (op, key) = hh.key;
                let name = self.shared.wf.op(op).name.clone();
                (name, key, hh.count, hh.err)
            })
            .collect()
    }

    /// Per-shard central-cache statistics, summed shard-wise across this
    /// engine's local machines (Muppet 2.0; empty under Muppet 1.0, whose
    /// per-worker caches are single-shard by construction).
    pub fn cache_shard_stats(&self) -> Vec<crate::cache::ShardStats> {
        let mut out: Vec<crate::cache::ShardStats> = Vec::new();
        for m in &self.shared.machines_snapshot() {
            if let Some(cache) = &m.central_cache {
                let per = cache.shard_stats();
                if out.len() < per.len() {
                    out.resize(per.len(), crate::cache::ShardStats::default());
                }
                for (acc, s) in out.iter_mut().zip(per) {
                    acc.hits += s.hits;
                    acc.misses += s.misses;
                    acc.entries += s.entries;
                    acc.capacity += s.capacity;
                }
            }
        }
        out
    }

    /// Recent drop-log entries (§4.3: dropped events "can be logged for
    /// later processing and debugging").
    pub fn recent_drops(&self) -> Vec<String> {
        self.shared.drop_log.recent()
    }

    /// Events replayed from the ingest WAL when this engine started
    /// (zero without an ingest WAL, and zero after a clean checkpointed
    /// shutdown — the SIGTERM acceptance test's assertion).
    pub fn recovered_replayed(&self) -> u64 {
        self.shared.recovered.load(Ordering::Acquire)
    }

    /// ⟨records appended, fsyncs issued⟩ of the ingest WAL, or `None`
    /// when ingest logging is off.
    pub fn ingest_wal_stats(&self) -> Option<(u64, u64)> {
        self.shared.ingest_log.as_ref().map(|log| (log.record_count(), log.sync_count()))
    }

    /// This machine's dead-letter queue.
    pub fn dlq(&self) -> Arc<DeadLetterQueue> {
        Arc::clone(&self.shared.dlq)
    }

    /// Re-inject every parked dead letter into the dispatch path (the
    /// `POST /dlq/retry` admin action — after a buggy updater is fixed
    /// or a transient failure clears). Returns how many were re-sent. A
    /// letter that poisons again simply comes back to the queue.
    pub fn dlq_retry(&self) -> usize {
        let letters = self.shared.dlq.drain();
        let n = letters.len();
        for letter in letters {
            let packet = Packet {
                op: letter.op,
                event: letter.event,
                injected_us: self.shared.now_us(),
                redirected: false,
                forwards: 0,
                enqueued_us: 0,
            };
            try_send(&self.shared, packet, true);
        }
        n
    }

    /// The dead-letter queue contents as JSON (the HTTP `GET /dlq`
    /// endpoint), oldest letter first.
    pub fn dlq_json(&self) -> String {
        use muppet_core::json::Json;
        Json::Arr(
            self.shared
                .dlq
                .snapshot()
                .into_iter()
                .map(|l| {
                    Json::obj([
                        ("op", Json::str(&self.shared.wf.op(l.op).name)),
                        ("stream", Json::str(l.event.stream.as_str())),
                        ("key", Json::str(String::from_utf8_lossy(l.event.key.as_bytes()))),
                        ("value", Json::str(String::from_utf8_lossy(&l.event.value))),
                        ("ts", Json::num(l.event.ts as f64)),
                        ("reason", Json::str(&l.reason)),
                        ("at_us", Json::num(l.at_us as f64)),
                    ])
                })
                .collect(),
        )
        .to_compact()
    }

    /// Draw a recovery line: drain in-flight work, flush every dirty
    /// slate, persist the replay cursor at the WAL's record count, and
    /// fsync the ingest WAL. After a successful checkpoint a restart
    /// replays zero events.
    ///
    /// Returns false — leaving the *old* cursor authoritative, so a
    /// restart replays more than necessary but never misses an event —
    /// when the drain timed out, a slate failed to flush, or the cursor
    /// write did not reach the store. Engines without an ingest WAL
    /// return true trivially.
    pub fn checkpoint(&self, timeout: Duration) -> bool {
        let Some(log) = self.shared.ingest_log.as_ref() else {
            return true;
        };
        if !self.drain(timeout) {
            return false;
        }
        // Flush every dirty slate; the flushed store state now reflects
        // exactly the WAL prefix `0..record_count`.
        let now = self.shared.now_us();
        let mut dirty_left = 0u64;
        for m in &self.shared.machines_snapshot() {
            if !m.alive.load(Ordering::Acquire) {
                continue;
            }
            if let Some(cache) = &m.central_cache {
                cache.flush_dirty(now);
                dirty_left += cache.stats().dirty;
            }
            for cache in m.worker_caches.iter().flatten() {
                cache.flush_dirty(now);
                dirty_left += cache.stats().dirty;
            }
        }
        if dirty_left > 0 {
            // Some slate did not reach the store (quorum failure, dead
            // store host): advancing the cursor would lose its updates.
            return false;
        }
        if log.sync().is_err() {
            return false;
        }
        self.shared.store_ingest_cursor(log.record_count())
    }

    /// Stop the engine: waits for queues to drain (bounded), flushes all
    /// dirty slates (graceful shutdown), joins threads, and returns final
    /// stats.
    pub fn shutdown(self) -> EngineStats {
        self.drain(Duration::from_secs(30));
        // TCP mode: close the inbound wire first so no new remote events
        // arrive during teardown (peers will see this node as failed —
        // which is accurate).
        if let Some(mut listener) = self.listener.lock().take() {
            listener.stop();
        }
        self.shared.stopping.store(true, Ordering::Release);
        for m in &self.shared.machines_snapshot() {
            for q in &m.queues {
                q.notify();
            }
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        for t in self.flushers.lock().drain(..) {
            let _ = t.join();
        }
        // Graceful final flush (live machines only — dead machines lost
        // their dirty slates, §4.3).
        let now = self.shared.now_us();
        for m in &self.shared.machines_snapshot() {
            if !m.alive.load(Ordering::Acquire) {
                continue;
            }
            if let Some(cache) = &m.central_cache {
                cache.flush_dirty(now);
            }
            for cache in m.worker_caches.iter().flatten() {
                cache.flush_dirty(now);
            }
        }
        // Seal the recovery line: the flushed slates cover the whole
        // ingest log, so a restart after this clean shutdown replays
        // nothing.
        if let Some(log) = &self.shared.ingest_log {
            if log.sync().is_ok() {
                self.shared.store_ingest_cursor(log.record_count());
            }
        }
        self.stats()
    }
}

/// Spawn the worker thread for (machine, thread).
fn spawn_worker(shared: &Arc<Shared>, m: usize, t: usize) -> std::thread::JoinHandle<()> {
    let sh = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("muppet-m{m}-w{t}"))
        .spawn(move || worker_loop(sh, m, t))
        // lint: allow(no-unwrap-in-prod) — spawn fails only on OS thread exhaustion; fail fast
        .expect("spawn worker")
}

/// Spawn the background flusher for one local machine (interval policy).
fn spawn_flusher(shared: &Arc<Shared>, m: usize) -> std::thread::JoinHandle<()> {
    let FlushPolicy::IntervalMs(ms) = shared.cfg.flush else {
        unreachable!("flushers only run under the interval policy")
    };
    let sh = Arc::clone(shared);
    let interval = Duration::from_millis(ms.max(1));
    std::thread::Builder::new()
        .name(format!("muppet-flusher-{m}"))
        .spawn(move || flusher_loop(sh, m, interval))
        // lint: allow(no-unwrap-in-prod) — spawn fails only on OS thread exhaustion; fail fast
        .expect("spawn flusher")
}

fn worker_loop(shared: Arc<Shared>, machine_id: usize, thread: usize) {
    let poll = Duration::from_millis(1);
    // lint: allow(no-unwrap-in-prod) — worker threads are spawned per existing machine index
    let machine = shared.machine(machine_id).expect("worker spawned for an existing machine");
    let batch_max = shared.cfg.drain_batch_max.max(1);
    let mut batch: Vec<Packet> = Vec::with_capacity(batch_max);
    loop {
        if !machine.alive.load(Ordering::Acquire) {
            return; // crashed machine: thread dies with it
        }
        if shared.stopping.load(Ordering::Acquire) {
            // Drain remaining work, then exit.
            if machine.queues[thread].pop_many(&mut batch, batch_max, Duration::ZERO) == 0 {
                return;
            }
            process_batch(&shared, &machine, machine_id, thread, &mut batch);
            continue;
        }
        let n = machine.queues[thread].pop_many(&mut batch, batch_max, poll);
        if n > 0 {
            shared.drain_hist.record(n as u64);
            process_batch(&shared, &machine, machine_id, thread, &mut batch);
        }
    }
}

/// A processed packet whose emissions have not fanned out yet. Fan-out
/// re-enters the membership lock on the in-process send path, so while a
/// run's read guard is held the follow-up work is parked here; the
/// packet's in-flight count drops only once its emissions are enqueued
/// (`finish_packet`), so `drain`/throttling never observe a gap.
struct Finished {
    op: OpId,
    ts: u64,
    injected_us: u64,
    redirected: bool,
    records: Vec<muppet_core::event::EmitRecord>,
}

/// Admit one finished packet's emissions (ts = input ts + 1, §3) and
/// retire it from the in-flight count.
fn finish_packet(shared: &Arc<Shared>, done: Finished) {
    let fanout_t0 =
        (!done.records.is_empty() && shared.stages.enabled && shared.stages.sampler_fanout.hit())
            .then(|| shared.now_us());
    for rec in done.records {
        shared.counters.emitted.inc();
        if shared.wf.is_external(rec.stream.as_str()) || !shared.wf.has_stream(rec.stream.as_str())
        {
            shared.counters.publish_errors.inc();
            shared.drop_log.log(format!(
                "illegal publish to {} from {}",
                rec.stream,
                shared.wf.op(done.op).name
            ));
            continue;
        }
        let out = Event {
            stream: rec.stream.clone(),
            ts: done.ts + 1,
            key: rec.key,
            value: rec.value,
            seq: 0,
        };
        fan_out(shared, &rec.stream, out, done.injected_us, done.redirected);
    }
    if let Some(t0) = fanout_t0 {
        shared.stages.fanout.record(shared.now_us().saturating_sub(t0));
    }
    shared.pending.fetch_sub(1, Ordering::AcqRel);
    shared.throttle_cv.notify_all();
}

/// Process one drained batch. The updater packets of a batch share a
/// single membership read guard (a *run*; mapper packets need no lock and
/// pass through without closing it), and consecutive same-⟨op, key⟩
/// updater packets reuse the previous packet's cache slot (the memo)
/// without touching the shard lock — the per-event costs the batch
/// amortizes. Every packet's fan-out is deferred while the guard is held
/// (the in-process send path re-enters the membership lock) and flushed
/// when the run closes: at a packet that must be forwarded, and at batch
/// end. The memo dies with the guard, because slate handoffs
/// (`take_matching`) run under the membership *write* lock and so can
/// only interleave between runs, never inside one.
fn process_batch(
    shared: &Arc<Shared>,
    machine: &Arc<Machine>,
    machine_id: usize,
    thread: usize,
    batch: &mut Vec<Packet>,
) {
    if shared.cfg.combine && batch.len() > 1 {
        fold_local_batch(shared, machine, thread, batch);
    }
    let mut memo: Option<(OpId, Key, Arc<SlateSlot>)> = None;
    let mut finished: Vec<Finished> = Vec::new();
    let mut guard: Option<muppet_core::sync::RwLockReadGuard<'_, Membership>> = None;
    for mut packet in batch.drain(..) {
        // Owner-side split rewrite: events that were already in flight
        // (or forwarded) when a split installed still fan out. The
        // rewritten subkey re-routes below like any other key.
        if shared.split_enabled()
            && matches!(&shared.ops[packet.op],
                OpInstance::Update { updater, .. } if updater.combines())
        {
            if let Some(sub) = shared.split_route(packet.op, &packet.event.key) {
                packet.event.key = sub;
            }
        }
        // Muppet 1.0 invariant: a worker is bound to exactly one function.
        debug_assert!(
            machine.thread_ops[thread].is_none() || machine.thread_ops[thread] == Some(packet.op),
            "1.0 worker received an event for a function it does not run"
        );
        let route = packet.event.key.route_hash(&shared.wf.op(packet.op).name);
        machine.in_flight[thread].store(route.wrapping_add(1), Ordering::Release);
        if packet.enqueued_us > 0 {
            // The queue-wait span: stamped at local enqueue by a sampler
            // hit, closed when the drain reaches the packet.
            shared.stages.queue_wait.record(shared.now_us().saturating_sub(packet.enqueued_us));
        }
        match &shared.ops[packet.op] {
            OpInstance::Map(mapper) => {
                // Mappers need no membership lock; an open updater run's
                // guard is left in place and the mapper's fan-out joins
                // the deferred queue like everyone else's.
                let service_t0 = (shared.stages.enabled && shared.stages.sampler_service.hit())
                    .then(|| shared.now_us());
                let mut emitter = VecEmitter::new();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    mapper.map(&mut emitter, &packet.event)
                }));
                if let Err(payload) = outcome {
                    // Poison event: contain the panic (an uncontained one
                    // kills this worker thread and wedges `drain` on the
                    // stuck pending count), discard any partial emissions,
                    // park the event, keep draining.
                    machine.in_flight[thread].store(0, Ordering::Release);
                    dead_letter(shared, packet, payload);
                    continue;
                }
                if let Some(t0) = service_t0 {
                    shared.stages.service[packet.op].record(shared.now_us().saturating_sub(t0));
                }
                shared.counters.processed.inc();
                machine.in_flight[thread].store(0, Ordering::Release);
                finished.push(Finished {
                    op: packet.op,
                    ts: packet.event.ts,
                    injected_us: packet.injected_us,
                    redirected: packet.redirected,
                    records: emitter.take(),
                });
            }
            OpInstance::Update { updater, name, ttl_secs } => {
                // With a store backend attached, a memo-missing packet's
                // get_or_load below may do real I/O (disk, or a remote
                // store RPC). Close the run first so a waiting membership
                // writer (join prepare/commit) gets in between I/O-bound
                // packets — the pre-batching cadence — instead of stalling
                // behind a whole batch of sequential loads. Store-less
                // engines load from memory in microseconds and keep the
                // full run amortization.
                let memo_hit = matches!(&memo, Some((m_op, m_key, _))
                    if *m_op == packet.op && *m_key == packet.event.key);
                if shared.has_backend && guard.is_some() && !memo_hit {
                    memo = None;
                    drop(guard.take());
                    for done in finished.drain(..) {
                        finish_packet(shared, done);
                    }
                }
                // Ownership check under the membership read lock, held
                // across the whole slate mutation (and, amortized, across
                // the run): a membership change (write lock) can only land
                // between runs, never mid-update — so the prepare-phase
                // flush sees every completed write, and no worker mutates
                // a slate its machine has already handed off. Keys this
                // machine no longer owns (a committed drop, or a *staged*
                // epoch after this node flushed them) are forwarded to
                // their current owner instead of being processed here.
                let membership = guard.get_or_insert_with(|| shared.membership.read());
                let (owner, fwd_hint) = match shared.cfg.kind {
                    EngineKind::Muppet2 => (membership.effective_owner2(route), None),
                    EngineKind::Muppet1 => {
                        let slot = membership.effective_slot1(packet.op, route);
                        (slot.map(|s| s.machine), slot.map(|s| s.thread))
                    }
                };
                if let Some(owner) = owner.filter(|&o| o != machine_id) {
                    // Forwarding re-enters the transport (and, in-process,
                    // the membership lock): close the run first.
                    memo = None;
                    drop(guard.take());
                    for done in finished.drain(..) {
                        finish_packet(shared, done);
                    }
                    machine.in_flight[thread].store(0, Ordering::Release);
                    forward_packet(shared, packet, owner, fwd_hint);
                    shared.pending.fetch_sub(1, Ordering::AcqRel);
                    shared.throttle_cv.notify_all();
                    continue;
                }
                let cache = match shared.cfg.kind {
                    EngineKind::Muppet2 => {
                        // lint: allow(no-unwrap-in-prod) — 2.0 machines are built with a central cache
                        machine.central_cache.as_ref().expect("2.0 central cache")
                    }
                    EngineKind::Muppet1 => machine.worker_caches[thread]
                        .as_ref()
                        // lint: allow(no-unwrap-in-prod) — 1.0 machines build one cache per worker
                        .expect("1.0 updater thread owns a cache"),
                };
                cache.offer_hot(packet.op, &packet.event.key);
                if shared.split_enabled()
                    && updater.combines()
                    && crate::dispatch::split_base_of(&packet.event.key).is_none()
                {
                    shared.maybe_split(cache, packet.op, &packet.event.key);
                }
                let service_sampled = shared.stages.enabled && shared.stages.sampler_service.hit();
                let now = shared.now_us();
                let slot = match &memo {
                    Some((m_op, m_key, m_slot))
                        if *m_op == packet.op && *m_key == packet.event.key =>
                    {
                        cache.note_memo_hit(packet.op, m_slot, now);
                        Arc::clone(m_slot)
                    }
                    _ => {
                        let s =
                            cache.get_or_load(packet.op, name, &packet.event.key, *ttl_secs, now);
                        memo = Some((packet.op, packet.event.key.clone(), Arc::clone(&s)));
                        s
                    }
                };
                let mut emitter = VecEmitter::new();
                let outcome = {
                    let mut state = slot.state.lock();
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        updater.update(&mut emitter, &packet.event, &mut state.slate)
                    }));
                    // A panicking updater gets no dirty-marking: its
                    // half-mutated slate must never be flushed.
                    if r.is_ok() {
                        cache.note_write(&slot, &mut state, now);
                    }
                    r
                };
                if let Err(payload) = outcome {
                    // Poison event: the updater may have left the slate
                    // half-mutated, so evict the cached slot — the next
                    // touch refaults the last good version from the
                    // store — then park the event and keep the thread.
                    memo = None;
                    cache.discard(packet.op, &packet.event.key);
                    machine.in_flight[thread].store(0, Ordering::Release);
                    dead_letter(shared, packet, payload);
                    continue;
                }
                if service_sampled {
                    // Service span: slate fetch (cache or store) + the
                    // update under the slot lock.
                    shared.stages.service[packet.op].record(shared.now_us().saturating_sub(now));
                }
                if shared.cfg.record_latency {
                    shared.latency.record(shared.now_us().saturating_sub(packet.injected_us));
                }
                shared.counters.processed.inc();
                machine.in_flight[thread].store(0, Ordering::Release);
                finished.push(Finished {
                    op: packet.op,
                    ts: packet.event.ts,
                    injected_us: packet.injected_us,
                    redirected: packet.redirected,
                    records: emitter.take(),
                });
            }
        }
    }
    drop(guard.take());
    for done in finished.drain(..) {
        finish_packet(shared, done);
    }
}

/// Map-side pre-aggregation over one drained batch: coalesce runs of
/// same-⟨op, stream, key⟩ update events through the operator's declared
/// combiner, so a hot key's burst becomes one slate mutation instead of
/// one per event. Mirrors the sender-outbox fold in `muppet_net::tcp`
/// (first-occurrence order, veto opens a fresh run), but here the win is
/// the slot-lock + updater invocation, not wire bytes. Each absorbed
/// packet settles its pending-count immediately; the carrier keeps
/// `ts`/`seq` = max and `injected_us` = min so watermarks and latency
/// stay conservative. Non-combining operators pass through untouched.
///
/// Absorbed events are credited to the hot-key sketch in one weighted
/// offer per run: the splitter's threshold is denominated in *events*,
/// and without the credit a deeply-folded hot key would look cold (the
/// sketch would only see one carrier per drained batch).
fn fold_local_batch(
    shared: &Arc<Shared>,
    machine: &Arc<Machine>,
    thread: usize,
    batch: &mut Vec<Packet>,
) {
    let mut runs: HashMap<(OpId, StreamId, Key, bool), usize> = HashMap::new();
    let mut absorbed: HashMap<(OpId, Key), u64> = HashMap::new();
    let mut out: Vec<Packet> = Vec::with_capacity(batch.len());
    for packet in batch.drain(..) {
        let updater = match &shared.ops[packet.op] {
            OpInstance::Update { updater, .. } if updater.combines() => Arc::clone(updater),
            _ => {
                out.push(packet);
                continue;
            }
        };
        let rk =
            (packet.op, packet.event.stream.clone(), packet.event.key.clone(), packet.redirected);
        let open = runs.get(&rk).copied();
        let folded = open.and_then(|i| {
            updater.combine(out[i].event.value.as_ref(), packet.event.value.as_ref())
        });
        match (open, folded) {
            (Some(i), Some(value)) => {
                let carrier = &mut out[i];
                carrier.event.value = Bytes::from(value);
                carrier.event.ts = carrier.event.ts.max(packet.event.ts);
                carrier.event.seq = carrier.event.seq.max(packet.event.seq);
                carrier.injected_us = carrier.injected_us.min(packet.injected_us);
                carrier.forwards = carrier.forwards.max(packet.forwards);
                *absorbed.entry((packet.op, packet.event.key.clone())).or_insert(0) += 1;
                shared.counters.combined_events.inc();
                shared.pending.fetch_sub(1, Ordering::AcqRel);
                shared.throttle_cv.notify_all();
            }
            _ => {
                // No open run, or the combiner vetoed: this packet opens
                // (or re-points) the run, preserving per-key order.
                runs.insert(rk, out.len());
                out.push(packet);
            }
        }
    }
    if !absorbed.is_empty() {
        let cache = match shared.cfg.kind {
            EngineKind::Muppet2 => machine.central_cache.as_ref(),
            EngineKind::Muppet1 => machine.worker_caches[thread].as_ref(),
        };
        if let Some(cache) = cache {
            let split = shared.split_enabled();
            for ((op, key), n) in absorbed {
                cache.offer_hot_n(op, &key, n);
                if split
                    && n >= SPLIT_FOLD_PROBE_MIN
                    && crate::dispatch::split_base_of(&key).is_none()
                {
                    shared.probe_split(cache, op, &key);
                }
            }
        }
    }
    *batch = out;
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Park a poison event in the dead-letter queue and retire it from the
/// in-flight accounting — the worker thread survives, `drain` still
/// converges, and the event stays inspectable via `GET /dlq`.
fn dead_letter(shared: &Arc<Shared>, packet: Packet, payload: Box<dyn std::any::Any + Send>) {
    let reason = panic_message(payload);
    shared.counters.dead_lettered.inc();
    shared.drop_log.log(format!(
        "poison event dead-lettered at {}: key={:?} ({reason})",
        shared.wf.op(packet.op).name,
        packet.event.key
    ));
    if shared.logger.enabled(Level::Warn) {
        shared.logger.warn(
            "operator panic contained; event dead-lettered",
            &[("op", (packet.op as u64).into()), ("dlq_depth", (shared.dlq.depth() as u64).into())],
        );
    }
    shared.dlq.push(DeadLetter {
        op: packet.op,
        event: packet.event,
        reason,
        at_us: shared.now_us(),
    });
    shared.pending.fetch_sub(1, Ordering::AcqRel);
    shared.throttle_cv.notify_all();
}

/// Log a peer's death through the leveled logger exactly once per peer
/// *per incarnation* — a committed rejoin or restart re-identification
/// clears the entry so the NEW incarnation's death is logged afresh.
/// §4.3 detection is send-driven and can fire concurrently from the
/// sync-send, forward, and batch-sender failure paths for one incident;
/// without the set each path would emit its own report. The [`DropLog`]
/// ring keeps its per-event entries regardless.
fn log_peer_death(shared: &Arc<Shared>, dest: usize, lost_events: u64) {
    if !shared.logger.enabled(Level::Warn) {
        return;
    }
    if shared.logged_peer_deaths.lock().insert(dest) {
        shared.logger.warn(
            "peer unreachable; reported to master (send-detect, §4.3)",
            &[
                ("peer", (dest as u64).into()),
                ("epoch", shared.epoch().into()),
                ("lost_events", lost_events.into()),
            ],
        );
    }
}

/// Re-send a packet whose key this machine no longer owns to its current
/// owner (elastic handoff; also heals laggard-ring deliveries). Bounded
/// by [`MAX_FORWARDS`] so disagreeing rings can never ping-pong an event
/// forever — past the cap the event is dropped-and-logged like any other
/// undeliverable (§4.3 posture).
fn forward_packet(shared: &Arc<Shared>, packet: Packet, owner: usize, thread_hint: Option<usize>) {
    if packet.forwards >= MAX_FORWARDS {
        shared.counters.lost_machine_failure.inc();
        shared.drop_log.log(format!(
            "forward cap hit for key={:?} (rings disagree about machine {owner}?)",
            packet.event.key
        ));
        return;
    }
    shared.counters.forwarded.inc();
    let key = packet.event.key.clone();
    let ev = WireEvent {
        op: packet.op,
        event: packet.event,
        injected_us: packet.injected_us,
        redirected: packet.redirected,
        // Forwarded events count as internal: the receiver's overflow
        // policy must never block the forwarding worker.
        external: false,
        thread_hint,
        forwards: packet.forwards + 1,
    };
    match shared.transport.send_event(owner, ev) {
        Ok(()) => {}
        Err(NetError::Unreachable(_)) => {
            shared.transport.report_failure(owner, shared.epoch());
            log_peer_death(shared, owner, 1);
            shared.counters.lost_machine_failure.inc();
            shared.drop_log.log(format!("lost to failed machine {owner}: key={key:?}"));
        }
        Err(e) => {
            shared.counters.lost_machine_failure.inc();
            shared.drop_log.log(format!("undeliverable to machine {owner} ({e}): key={key:?}"));
        }
    }
}

fn fan_out(
    shared: &Arc<Shared>,
    stream: &StreamId,
    event: Event,
    injected_us: u64,
    redirected: bool,
) {
    // No per-event Vec, no clone for the final (usually only) subscriber.
    let subscribers = shared.wf.subscribers_of(stream.as_str());
    if let Some((&last, rest)) = subscribers.split_last() {
        for &op in rest {
            let packet = Packet {
                op,
                event: event.clone(),
                injected_us,
                redirected,
                forwards: 0,
                enqueued_us: 0,
            };
            try_send(shared, packet, false);
        }
        let packet =
            Packet { op: last, event, injected_us, redirected, forwards: 0, enqueued_us: 0 };
        try_send(shared, packet, false);
    }
}

/// The send path (see note above `worker_loop`): resolves the destination
/// machine via the rings, then puts the event on the wire. A transport
/// failure — dead simulated machine in-process, connection error over TCP
/// — triggers the §4.3 protocol: report to the master, which broadcasts,
/// and every ring drops the machine; the event is lost and logged, never
/// retried.
fn try_send(shared: &Arc<Shared>, mut packet: Packet, external: bool) {
    // Sender-side split rewrite: route a split hot key's update to one of
    // its subkeys before the ring lookup, so fan-out happens at the
    // source and the subslates land on distinct machines/queues.
    if shared.split_enabled()
        && matches!(&shared.ops[packet.op],
            OpInstance::Update { updater, .. } if updater.combines())
    {
        if let Some(sub) = shared.split_route(packet.op, &packet.event.key) {
            packet.event.key = sub;
        }
    }
    let updater_name = shared.wf.op(packet.op).name.as_str();
    let route: RouteHash = packet.event.key.route_hash(updater_name);
    // Senders route by the *committed* rings: a staged (prepared) epoch
    // only redirects processing on the machines that already flushed —
    // routing to a joiner before the cluster-wide flush barrier passes
    // could fault a stale slate out of the store.
    let dest = {
        let membership = shared.membership.read();
        match shared.cfg.kind {
            EngineKind::Muppet2 => membership.owner2(route).map(|m| (m, None)),
            EngineKind::Muppet1 => {
                membership.slot1(packet.op, route).map(|slot| (slot.machine, Some(slot.thread)))
            }
        }
    };
    let Some((machine_id, thread_hint)) = dest else {
        shared.counters.lost_machine_failure.inc();
        return;
    };
    let key = packet.event.key.clone();
    let ev = WireEvent {
        op: packet.op,
        event: packet.event,
        injected_us: packet.injected_us,
        redirected: packet.redirected,
        external,
        thread_hint,
        forwards: packet.forwards,
    };
    match shared.transport.send_event(machine_id, ev) {
        Ok(()) => {}
        Err(NetError::Unreachable(_)) => {
            // §4.3: the sender detected the dead machine on send. Report to
            // the master (the master's broadcast removes it from every
            // ring); the undeliverable event is lost and logged.
            shared.transport.report_failure(machine_id, shared.epoch());
            log_peer_death(shared, machine_id, 1);
            shared.counters.lost_machine_failure.inc();
            shared.drop_log.log(format!("lost to failed machine {machine_id}: key={key:?}"));
        }
        Err(e) => {
            // A local protocol/config error (oversized frame, no handler)
            // is not a dead peer — the event is lost and logged, but the
            // machine must not be declared failed.
            shared.counters.lost_machine_failure.inc();
            shared
                .drop_log
                .log(format!("undeliverable to machine {machine_id} ({e}): key={key:?}"));
        }
    }
}

/// Local delivery: the receiving half of the wire. Chooses the worker
/// queue (two-choice for 2.0, the sender's slot hint for 1.0) and applies
/// the §4.3 overflow mechanism. Runs on the sender's thread in-process and
/// on the listener's connection thread over TCP.
fn deliver_local(
    shared: &Arc<Shared>,
    machine_id: usize,
    ev: WireEvent,
) -> std::result::Result<(), NetError> {
    loop {
        let Some(machine) = shared.machine(machine_id) else {
            return Err(NetError::NoRoute(machine_id));
        };
        if !machine.local {
            return Err(NetError::NoRoute(machine_id));
        }
        if !machine.alive.load(Ordering::Acquire) {
            return Err(NetError::Unreachable(machine_id));
        }
        let updater_name = shared.wf.op(ev.op).name.as_str();
        let route: RouteHash = ev.event.key.route_hash(updater_name);
        let thread = match shared.cfg.kind {
            EngineKind::Muppet1 => {
                // 1.0 workers are bound to one function; an event on the
                // wrong thread would fault the worker (no cache for the
                // op). Trust the sender's hint only when it names a local
                // thread actually running this op; otherwise re-resolve
                // from the local rings (layouts are deterministic
                // cluster-wide, so a mismatch means a heterogeneously
                // configured peer).
                let valid =
                    |t: usize| t < machine.queues.len() && machine.thread_ops[t] == Some(ev.op);
                let resolved = ev.thread_hint.filter(|&t| valid(t)).or_else(|| {
                    shared
                        .membership
                        .read()
                        .effective_slot1(ev.op, route)
                        .filter(|slot| slot.machine == machine_id && valid(slot.thread))
                        .map(|slot| slot.thread)
                });
                match resolved {
                    Some(t) => t,
                    None => {
                        shared.drop_log.log(format!(
                            "misrouted 1.0 event discarded at m{machine_id}: op={updater_name} \
                             key={:?} (peer layout mismatch?)",
                            ev.event.key
                        ));
                        return Ok(());
                    }
                }
            }
            EngineKind::Muppet2 => {
                let threads = machine.queues.len();
                let (p, s) = crate::dispatch::queue_pair(route, threads);
                let decode = |raw: u64| -> Option<RouteHash> {
                    if raw == 0 {
                        None
                    } else {
                        Some(raw.wrapping_sub(1))
                    }
                };
                choose_between(
                    route,
                    p,
                    s,
                    decode(machine.in_flight[p].load(Ordering::Acquire)),
                    decode(machine.in_flight[s].load(Ordering::Acquire)),
                    machine.queues[p].len_hint(),
                    machine.queues[s].len_hint(),
                )
            }
        };
        let queue = &machine.queues[thread];
        let into_packet = |ev: WireEvent| {
            // Stamp the queue-wait span here, on the receiving side —
            // the mark never crosses the wire (`max(1)`: 0 means
            // unsampled, and `now_us` can legitimately be 0 early on).
            let enqueued_us = if shared.stages.enabled && shared.stages.sampler_queue.hit() {
                shared.now_us().max(1)
            } else {
                0
            };
            Packet {
                op: ev.op,
                event: ev.event,
                injected_us: ev.injected_us,
                redirected: ev.redirected,
                forwards: ev.forwards,
                enqueued_us,
            }
        };
        if queue.len_hint() < queue.capacity() {
            // Likely-room fast path; capacity may still be exceeded by a
            // racing sender, in which case force_push slightly overshoots
            // (bounded by sender count) — acceptable for a size *limit*.
            queue.force_push(into_packet(ev));
            shared.pending.fetch_add(1, Ordering::AcqRel);
            return Ok(());
        }
        // Queue full: invoke the overflow mechanism (§4.3).
        match shared.cfg.overflow.decide(ev.external, ev.redirected) {
            OverflowAction::Drop => {
                shared.counters.dropped_overflow.inc();
                shared.drop_log.log(format!(
                    "overflow drop at m{machine_id}w{thread}: key={:?} op={}",
                    ev.event.key, updater_name
                ));
                return Ok(());
            }
            OverflowAction::Redirect(overflow_stream) => {
                shared.counters.redirected_overflow.inc();
                if !shared.wf.has_stream(&overflow_stream)
                    || shared.wf.is_external(&overflow_stream)
                {
                    shared.counters.publish_errors.inc();
                    return Ok(());
                }
                let external = ev.external;
                let mut event = ev.event;
                event.stream = StreamId::from(overflow_stream.as_str());
                // Fan out to the overflow stream's subscribers, marked so a
                // second overflow drops instead of looping.
                let subscribers = shared.wf.subscribers_of(&overflow_stream).to_vec();
                for op in subscribers {
                    let p = Packet {
                        op,
                        event: event.clone(),
                        injected_us: ev.injected_us,
                        redirected: true,
                        forwards: ev.forwards,
                        enqueued_us: 0,
                    };
                    try_send(shared, p, external);
                }
                return Ok(());
            }
            OverflowAction::ForceThrough => {
                queue.force_push(into_packet(ev));
                shared.pending.fetch_add(1, Ordering::AcqRel);
                return Ok(());
            }
            OverflowAction::BlockProducer => {
                shared.counters.throttle_waits.inc();
                let mut guard = shared.throttle_mutex.lock();
                shared.throttle_cv.wait_for(&mut guard, Duration::from_millis(1));
                drop(guard);
                if shared.stopping.load(Ordering::Acquire) {
                    return Ok(());
                }
                // Retry: re-check liveness and queue room (the machine may
                // have failed or drained meanwhile).
            }
        }
    }
}

/// Drop `failed` from every routing structure — the effect of the master's
/// §4.3 broadcast, applied on each node. `epoch` fences re-joined
/// incarnations: a broadcast staler than the machine's latest join is a
/// ghost of a previous incarnation and is ignored. Failure drops do not
/// mint epochs — only master-coordinated membership updates do, so every
/// node's epoch stays comparable.
fn apply_ring_drop(shared: &Arc<Shared>, failed: usize, epoch: u64) {
    if epoch < shared.master.joined_epoch(failed) {
        return;
    }
    {
        let mut membership = shared.membership.write();
        membership.machine_ring.remove(failed);
        let slot_ids: Vec<usize> = membership
            .worker_slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.machine == failed)
            .map(|(slot_id, _)| slot_id)
            .collect();
        for slot_id in slot_ids {
            for ring in membership.op_rings.iter_mut() {
                ring.remove(slot_id);
            }
            if let Some(p) = membership.pending.as_mut() {
                for ring in p.op_rings.iter_mut() {
                    ring.remove(slot_id);
                }
            }
        }
        if let Some(p) = membership.pending.as_mut() {
            p.machine_ring.remove(failed);
        }
    }
    if let Some(machine) = shared.machine(failed) {
        machine.alive.store(false, Ordering::Release);
    }
    // Every node tracks the failed set ("each worker keeps track of all
    // failed machines"), without re-reporting.
    shared.master.mark_failed(failed, epoch);
}

/// Stage a membership epoch (the *prepare* phase): grow the peer table
/// for unseen nodes, build the candidate rings, and — the handoff
/// invariant — flush (or transfer) every dirty slate whose arc moves away
/// from a local machine, all under the membership write lock so no
/// updater can be mid-write on a moved slate. After this returns true,
/// processing-side ownership checks use the staged rings: moved keys are
/// forwarded to their new owner, never updated here again.
fn membership_prepare(shared: &Arc<Shared>, update: &MembershipUpdate) -> bool {
    let mut membership = shared.membership.write();
    if update.epoch <= membership.machine_ring.epoch() {
        return true; // already installed (duplicate delivery)
    }
    if let Some(p) = &membership.pending {
        if p.epoch == update.epoch {
            return true; // duplicate prepare
        }
        if p.epoch > update.epoch {
            return false; // a newer epoch is already staged
        }
    }
    // Grow peers + machine stubs for nodes this engine has never seen.
    {
        let mut machines = shared.machines.write();
        let mut cluster_nodes = shared.cluster_nodes.lock();
        let mut specs: Vec<&NodeSpec> = update.nodes.iter().collect();
        specs.sort_by_key(|s| s.id);
        for spec in specs {
            if spec.id < machines.len() {
                continue;
            }
            if let Some(tcp) = &shared.tcp {
                if let Err(e) = tcp.add_peer(spec) {
                    shared.drop_log.log(format!("membership add_peer failed: {e}"));
                    return false;
                }
            }
            machines.push(Arc::new(Machine::remote_stub()));
            cluster_nodes.push(spec.clone());
        }
    }
    // Candidate routing state: committed rings + every machine the
    // master says is (or becomes) a member. Healing is by *member set*,
    // not by delta: a node that missed an earlier epoch re-adds the
    // machines it lost track of here, so one dropped frame can never
    // diverge membership forever.
    let mut machine_ring = membership.machine_ring.ring().clone();
    let mut op_rings = membership.op_rings.clone();
    let mut worker_slots = membership.worker_slots.clone();
    if shared.cfg.kind == EngineKind::Muppet1 {
        // 1.0 slot ids are a pure function of the machine id (join
        // layout: one slot per op, thread t = op t, at position
        // base_slots + (id - base) · n_ops). Materialize placeholders
        // for EVERY known machine id in order — reservations included,
        // outside the rings — so slot ids agree across nodes no matter
        // when (or whether) each id actually joins.
        let known = shared.machines.read().len();
        let base = shared.cfg.base_machines.unwrap_or(shared.cfg.machines);
        for id in base..known {
            if !worker_slots.iter().any(|slot| slot.machine == id) {
                for (thread, op) in join_layout_ops(&shared.wf).into_iter().enumerate() {
                    worker_slots.push(WorkerSlot { machine: id, thread, op });
                }
            }
        }
    }
    let mut entering: Vec<MachineId> = update.joined.clone();
    entering.extend(update.members.iter().copied());
    for id in entering {
        // The failed set excludes members from healing, but never the
        // explicit joiners of THIS epoch: a restarted incarnation
        // re-announces under its old id, and the join must be able to
        // supersede the death recorded against the previous incarnation.
        if machine_ring.contains(id)
            || (shared.master.is_failed(id) && !update.joined.contains(&id))
        {
            continue;
        }
        machine_ring.add(id);
        if update.joined.contains(&id) {
            // Reachable again: re-arm the wire and the liveness flag so
            // forwarded events flow as soon as the staged rings apply.
            shared.transport.revive_peer(id);
            if let Some(machine) = shared.machine(id) {
                machine.alive.store(true, Ordering::Release);
            }
        }
        if shared.cfg.kind == EngineKind::Muppet1 {
            for (slot_id, slot) in worker_slots.iter().enumerate() {
                if slot.machine == id {
                    op_rings[slot.op].add(slot_id);
                }
            }
        }
    }
    // The handoff: move every slate whose arc leaves a local machine.
    let machines = shared.machines_snapshot();
    let now = shared.now_us();
    for (m, machine) in machines.iter().enumerate() {
        if !machine.local || !machine.alive.load(Ordering::Acquire) {
            continue;
        }
        for op in 0..shared.wf.ops().len() {
            if shared.wf.op(op).kind != OpKind::Update {
                continue;
            }
            let opname = shared.wf.op(op).name.clone();
            let moved_to: &dyn Fn(&Key) -> Option<usize> = &|key| {
                let route = key.route_hash(&opname);
                let (old_owner, new_owner) = match shared.cfg.kind {
                    EngineKind::Muppet2 => {
                        // The ownership-diff primitive: only arcs whose
                        // owner changes between the two rings move.
                        if !membership.machine_ring.owner_moved(&machine_ring, route) {
                            return None;
                        }
                        (membership.machine_ring.owner(route), machine_ring.owner(route))
                    }
                    EngineKind::Muppet1 => (
                        membership.slot1(op, route).map(|s| s.machine),
                        op_rings
                            .get(op)
                            .and_then(|ring| ring.owner(route))
                            .map(|sid| worker_slots[sid].machine),
                    ),
                };
                new_owner.filter(|&new| old_owner == Some(m) && new != m)
            };
            let caches: Vec<&Arc<SlateCache>> = match shared.cfg.kind {
                EngineKind::Muppet2 => machine.central_cache.iter().collect(),
                EngineKind::Muppet1 => machine
                    .worker_caches
                    .iter()
                    .enumerate()
                    .filter(|(t, _)| machine.thread_ops.get(*t) == Some(&Some(op)))
                    .filter_map(|(_, c)| c.as_ref())
                    .collect(),
            };
            for cache in caches {
                let taken = cache.take_matching(op, &|key| moved_to(key).is_some());
                for (key, slot) in taken {
                    if shared.has_backend {
                        // Store-backed handoff (§4.3 recovery path, run
                        // proactively): flush, then the new owner faults
                        // the slate in on its first event. A failed
                        // flush (store down mid-join) must not destroy
                        // the slate: it goes back into the cache dirty —
                        // post-prepare processing forwards this key, so
                        // nothing re-dirties it here, and the background
                        // flusher retries until the store recovers (the
                        // new owner reads stale until then; bounded
                        // inconsistency instead of silent loss).
                        if !cache.flush_slot_now(&slot, now) {
                            shared.drop_log.log(format!(
                                "handoff flush failed for {opname} key={key:?} (store down?); \
                                 retained for flusher retry"
                            ));
                            cache.insert_slot(op, key, slot);
                        }
                        continue;
                    }
                    // No store attached: hand the slot to the new owner's
                    // cache directly when it lives in this process (the
                    // in-process cluster); otherwise the slate is lost
                    // exactly like a §4.3 crash would lose it.
                    let target = moved_to(&key)
                        .and_then(|new| machines.get(new))
                        .filter(|target| target.local);
                    match target {
                        Some(target) => {
                            let target_cache = match shared.cfg.kind {
                                EngineKind::Muppet2 => target.central_cache.as_ref(),
                                EngineKind::Muppet1 => target
                                    .thread_ops
                                    .iter()
                                    .position(|&t| t == Some(op))
                                    .and_then(|t| target.worker_caches[t].as_ref()),
                            };
                            match target_cache {
                                Some(c) => c.insert_slot(op, key, slot),
                                None => shared.drop_log.log(format!(
                                    "handoff target cache missing for {opname} key={key:?}"
                                )),
                            }
                        }
                        None => shared.drop_log.log(format!(
                            "handoff without store: slate {opname} key={key:?} lost (§4.3 \
                             posture)"
                        )),
                    }
                }
            }
        }
    }
    membership.pending = Some(PendingEpoch {
        epoch: update.epoch,
        machine_ring,
        op_rings,
        worker_slots,
        joined: update.joined.clone(),
    });
    true
}

/// Install a staged membership epoch (the *commit* phase).
fn membership_commit(shared: &Arc<Shared>, epoch: u64) -> bool {
    let mut membership = shared.membership.write();
    if membership.machine_ring.epoch() >= epoch {
        return true; // duplicate commit
    }
    let Some(p) = membership.pending.take() else {
        // Commit without a prepare (this node missed the prepare frame):
        // nothing staged — keep the old rings; ownership forwarding by
        // the up-to-date owners still delivers every event correctly.
        return false;
    };
    if p.epoch != epoch {
        membership.pending = Some(p);
        return false;
    }
    membership.machine_ring = EpochRing::from_ring(p.machine_ring, epoch);
    membership.op_rings = p.op_rings;
    membership.worker_slots = p.worker_slots;
    let joined = p.joined;
    drop(membership);
    for id in joined {
        shared.master.mark_joined(id, epoch);
        // Forget the previous incarnation's death (§4.3 ledger): if the
        // NEW incarnation dies, detection must report and log it afresh.
        shared.logged_peer_deaths.lock().remove(&id);
        shared.transport.revive_peer(id);
        if let Some(machine) = shared.machine(id) {
            machine.alive.store(true, Ordering::Release);
        }
    }
    true
}

/// Discard a staged membership epoch (the *abort* phase): a prepare
/// acked somewhere, but the join could not complete. Ownership reverts
/// to the committed rings; the already-flushed moved slates simply fault
/// back in from the store on the old owner's next touch.
fn membership_abort(shared: &Arc<Shared>, epoch: u64) -> bool {
    let mut membership = shared.membership.write();
    if membership.pending.as_ref().map(|p| p.epoch) == Some(epoch) {
        membership.pending = None;
        shared.drop_log.log(format!("membership epoch {epoch} aborted; staged state discarded"));
    }
    true
}

/// Deliver one membership phase to every participant in `order` (the
/// local node exactly once). `want_ack` only for prepare. Returns the
/// first wire failure, if any.
fn fan_out_membership(
    shared: &Arc<Shared>,
    order: &[MachineId],
    update: &MembershipUpdate,
    want_ack: bool,
) -> std::result::Result<(), (MachineId, NetError)> {
    let mut local_done = false;
    let mut first_err = None;
    for &dest in order {
        if shared.transport.is_local(dest) {
            if !local_done {
                local_done = true;
                let handler = EngineHandler(Arc::clone(shared));
                if !handler.handle_membership(update) && want_ack && first_err.is_none() {
                    first_err = Some((dest, NetError::Protocol("local phase refused".to_string())));
                }
            }
        } else if let Err(e) = shared.transport.send_membership(dest, update, want_ack) {
            if want_ack {
                return Err((dest, e));
            }
            if first_err.is_none() {
                first_err = Some((dest, e));
            }
        }
    }
    match first_err {
        Some(err) if want_ack => Err(err),
        _ => Ok(()),
    }
}

/// The master side of a join: a reserved machine announced it is live.
/// Runs the protocol — prepare to the joiner first (so forwarded events
/// always find it ready) and then to every committed ring member (each
/// ack certifies the moved-away slates were flushed), then commit
/// everywhere; any un-acked prepare aborts the epoch explicitly so no
/// worker is left forwarding to a joiner that never commits. Serialized
/// per master.
fn run_join_protocol(shared: &Arc<Shared>, machine: MachineId) {
    let _serialize = shared.join_lock.lock();
    // A duplicate announcement (e.g. the joiner's commit frame was lost
    // and it re-announced) runs the protocol again: everywhere the
    // machine is already a member the epoch is a no-op, and on the
    // joiner the member-heal path installs it.
    // Mint a fresh epoch, monotone even across aborted attempts: a
    // staged-but-never-committed epoch on some worker must never be
    // reused with different content, or a later commit could install
    // divergent rings there (serialized by join_lock, so load/store is
    // race-free).
    let epoch = (shared.epoch() + 1).max(shared.epoch_mint.load(Ordering::Acquire) + 1);
    shared.epoch_mint.store(epoch, Ordering::Release);
    let nodes = shared.cluster_nodes.lock().clone();
    if machine >= nodes.len() {
        shared.drop_log.log(format!("join announcement for unreserved machine {machine}"));
        return;
    }
    // The barrier participants: the joiner plus the *committed ring
    // members* — the machines that can own moved arcs. Reservations that
    // never announced are excluded (their listeners may not exist; they
    // must not be able to abort someone else's join), and so are failed
    // machines.
    let mut members = shared.membership.read().machine_ring.members().to_vec();
    members.sort_unstable();
    let mut order: Vec<MachineId> = vec![machine];
    order.extend(members.iter().copied().filter(|&id| id != machine));
    let mut post_members = members.clone();
    post_members.push(machine);
    post_members.sort_unstable();
    post_members.dedup();

    let prepare = MembershipUpdate {
        epoch,
        phase: MembershipPhase::Prepare,
        joined: vec![machine],
        members: post_members,
        nodes,
    };
    if let Err((dest, e)) = fan_out_membership(shared, &order, &prepare, true) {
        // An un-acked live participant kills the join: the ack is the
        // handoff barrier — committing past a worker whose flush did
        // not finish would let the joiner fault stale slates out of the
        // store. Abort explicitly so every node that DID stage the
        // epoch reverts to its committed rings instead of forwarding to
        // a joiner that will never commit. (A genuinely dead worker
        // blocks joins only until traffic-driven §4.3 detection removes
        // it from the member set.)
        shared.drop_log.log(format!("join of {machine} aborted: prepare to {dest}: {e}"));
        let abort = MembershipUpdate { phase: MembershipPhase::Abort, ..prepare };
        let _ = fan_out_membership(shared, &order, &abort, false);
        return;
    }
    let commit = MembershipUpdate { phase: MembershipPhase::Commit, ..prepare };
    let _ = fan_out_membership(shared, &order, &commit, false);
}

/// The engine side of the wire: what the transport calls to finish
/// delivery and apply the failure protocol locally.
struct EngineHandler(Arc<Shared>);

impl ClusterHandler for EngineHandler {
    fn deliver_event(&self, dest: MachineId, ev: WireEvent) -> std::result::Result<(), NetError> {
        deliver_local(&self.0, dest, ev)
    }

    fn deliver_combined(
        &self,
        dest: MachineId,
        ev: WireEvent,
        absorbed: u64,
    ) -> std::result::Result<(), NetError> {
        // The sender already folded `absorbed` original events into this
        // carrier (and accounted them via `combine_values`); locally it
        // is one ordinary event. The owner's hot-key sketch is still
        // credited with the absorbed load, so the splitter sees
        // event-scale heat for keys folded down on remote senders.
        let shared = &self.0;
        if absorbed > 0 {
            if let Some(machine) = shared.machine(dest) {
                if let Some(cache) = machine.central_cache.as_ref() {
                    cache.offer_hot_n(ev.op, &ev.event.key, absorbed);
                }
            }
        }
        deliver_local(shared, dest, ev)
    }

    fn combine_values(&self, op: OpId, acc: &[u8], next: &[u8]) -> Option<Vec<u8>> {
        let shared = &self.0;
        if !shared.cfg.combine {
            return None;
        }
        match shared.ops.get(op) {
            Some(OpInstance::Update { updater, .. }) if updater.combines() => {
                let folded = updater.combine(acc, next);
                if folded.is_some() {
                    shared.counters.combined_events.inc();
                }
                folded
            }
            _ => None,
        }
    }

    fn handle_send_failure(&self, dest: MachineId, lost: Vec<WireEvent>) {
        // The async half of §4.3: a batching sender gave up on `dest`.
        // One detection (the report; the master dedupes), with every
        // undelivered event counted and logged individually — exactly
        // what the synchronous path does per event, amortized over the
        // batch. Never retried.
        let shared = &self.0;
        log_peer_death(shared, dest, lost.len() as u64);
        shared.counters.lost_machine_failure.add(lost.len() as u64);
        for ev in &lost {
            shared.drop_log.log(format!("lost to failed machine {dest}: key={:?}", ev.event.key));
        }
        shared.transport.report_failure(dest, shared.epoch());
    }

    fn handle_failure_report(&self, failed: MachineId, epoch: u64) {
        // First live report wins; the master broadcast fans the drop out
        // to every machine (including this one). Duplicates and reports
        // staler than the machine's latest join are absorbed.
        if self.0.master.report_failure(failed, epoch) {
            self.0.transport.broadcast_failure(failed, epoch);
        }
    }

    fn handle_failure_broadcast(&self, failed: MachineId, epoch: u64) {
        apply_ring_drop(&self.0, failed, epoch);
    }

    fn handle_join(&self, machine: MachineId) {
        run_join_protocol(&self.0, machine);
    }

    fn handle_reintroduce(&self, machine: MachineId) -> u64 {
        // Restart re-identification (master side): a node that crashed
        // and came back announces under its old id. Re-arm the wire to
        // it, wipe the previous incarnation's §4.3 death ledger entry so
        // a NEW death is detected and logged afresh, and — if the old
        // incarnation was dropped from the rings — run the join protocol
        // to restore its old ring position.
        let shared = &self.0;
        shared.transport.revive_peer(machine);
        shared.logged_peer_deaths.lock().remove(&machine);
        if let Some(m) = shared.machine(machine) {
            m.alive.store(true, Ordering::Release);
        }
        let needs_join = shared.master.is_failed(machine)
            || !shared.membership.read().machine_ring.contains(machine);
        if needs_join {
            run_join_protocol(shared, machine);
        }
        shared.epoch()
    }

    fn handle_membership(&self, update: &MembershipUpdate) -> bool {
        match update.phase {
            MembershipPhase::Prepare => membership_prepare(&self.0, update),
            MembershipPhase::Commit => membership_commit(&self.0, update.epoch),
            MembershipPhase::Abort => membership_abort(&self.0, update.epoch),
        }
    }

    fn read_local_slate(&self, dest: MachineId, updater: &str, key: &[u8]) -> Option<Vec<u8>> {
        let shared = &self.0;
        let op = shared.wf.op_id(updater)?;
        if shared.wf.op(op).kind != OpKind::Update {
            return None;
        }
        let machine = shared.machine(dest)?;
        if !machine.local || !machine.alive.load(Ordering::Acquire) {
            return None;
        }
        let key = Key::from(key);
        match shared.cfg.kind {
            EngineKind::Muppet2 => machine.central_cache.as_ref()?.read(op, &key),
            EngineKind::Muppet1 => {
                let route = key.route_hash(updater);
                let slot = shared.membership.read().effective_slot1(op, route)?;
                if slot.machine != dest {
                    return None;
                }
                machine.worker_caches[slot.thread].as_ref()?.read(op, &key)
            }
        }
    }

    fn backend_store(
        &self,
        updater: &str,
        key: &[u8],
        value: &[u8],
        codec: Codec,
        ttl_secs: Option<u64>,
        now_us: u64,
    ) {
        if let Some(store) = &self.0.host_store {
            let key = Key::from(key);
            SlateBackend::store(&**store, updater, &key, value, codec, ttl_secs, now_us);
        }
    }

    fn backend_load(&self, updater: &str, key: &[u8], now_us: u64) -> Option<Vec<u8>> {
        let store = self.0.host_store.as_ref()?;
        let key = Key::from(key);
        SlateBackend::load(&**store, updater, &key, now_us)
    }

    fn backend_store_many(&self, items: &[muppet_net::StorePutItem], now_us: u64) -> Vec<bool> {
        // A peer's `StorePutBatch` lands here: one `store_many` on the
        // hosted cluster — cells grouped per LSM node, each node's run
        // WAL-group-committed — with real per-cell quorum outcomes in the
        // ack (the unbatched `StorePut` path cannot report these).
        let Some(store) = &self.0.host_store else {
            return vec![false; items.len()];
        };
        let flush: Vec<crate::cache::FlushItem> = items
            .iter()
            .map(|item| crate::cache::FlushItem {
                updater: Arc::from(item.updater.as_str()),
                key: Key::from(item.key.as_slice()),
                bytes: item.value.clone(),
                ttl_secs: item.ttl_secs,
                codec: item.codec,
            })
            .collect();
        SlateBackend::store_many(&**store, &flush, now_us)
    }

    fn backend_load_many(
        &self,
        items: &[muppet_net::StoreGetItem],
        now_us: u64,
    ) -> Vec<Option<Vec<u8>>> {
        let Some(store) = &self.0.host_store else {
            return vec![None; items.len()];
        };
        let keys: Vec<(Arc<str>, Key)> = items
            .iter()
            .map(|item| (Arc::from(item.updater.as_str()), Key::from(item.key.as_slice())))
            .collect();
        SlateBackend::load_many(&**store, &keys, now_us)
    }
}

/// Register the registry's pull-side collectors: cache, net, store, and
/// slate-representation state that lives in its own structs (pre-dating
/// the registry) and is snapshotted at scrape time instead of being
/// migrated onto push handles. Holds only a `Weak` back-reference —
/// `Shared` owns the registry, so a strong ref would leak both.
fn register_collectors(shared: &Arc<Shared>) {
    let weak = Arc::downgrade(shared);
    shared.registry.collector(move |out| {
        let Some(sh) = weak.upgrade() else { return };
        collect_engine_samples(&sh, out);
    });
}

fn collect_engine_samples(sh: &Arc<Shared>, out: &mut Vec<Sample>) {
    out.push(Sample::gauge("muppet_epoch", &[], sh.epoch() as i64));
    out.push(Sample::gauge("muppet_uptime_seconds", &[], sh.start.elapsed().as_secs() as i64));
    out.push(Sample::gauge("muppet_pending_events", &[], sh.pending.load(Ordering::Acquire)));
    out.push(Sample::gauge(
        "muppet_split_keys_active",
        &[],
        sh.splits.active.load(Ordering::Acquire) as i64,
    ));
    out.push(Sample::gauge(
        "muppet_protocol_version",
        &[],
        muppet_net::frame::PROTOCOL_VERSION as i64,
    ));
    if let Some(local) = sh.transport.local_machine() {
        out.push(Sample::gauge("muppet_machine_id", &[], local as i64));
    }

    // Slate caches: aggregate counters, per-shard hit/miss series, the
    // flush-batch size distribution, and the hottest ⟨op, key⟩ pairs.
    let mut cache = crate::cache::CacheStats::default();
    let mut shard_hits: Vec<(u64, u64)> = Vec::new();
    let mut batches = muppet_obs::HistogramSnapshot::default();
    let mut hot: Vec<muppet_obs::HeavyHitter<(OpId, Key)>> = Vec::new();
    let mut merge = |c: &SlateCache| {
        let s = c.stats();
        cache.hits += s.hits;
        cache.misses += s.misses;
        cache.store_loads += s.store_loads;
        cache.evictions += s.evictions;
        cache.flush_writes += s.flush_writes;
        cache.flush_failures += s.flush_failures;
        cache.ttl_resets += s.ttl_resets;
        cache.entries += s.entries;
        cache.dirty += s.dirty;
        cache.flush_batches += s.flush_batches;
        cache.store_round_trips += s.store_round_trips;
        cache.miss_coalesced += s.miss_coalesced;
        for (i, ss) in c.shard_stats().into_iter().enumerate() {
            if shard_hits.len() <= i {
                shard_hits.resize(i + 1, (0, 0));
            }
            shard_hits[i].0 += ss.hits;
            shard_hits[i].1 += ss.misses;
        }
        let b = c.flush_batch_snapshot();
        if batches.bucket_counts.len() < b.bucket_counts.len() {
            batches.bucket_counts.resize(b.bucket_counts.len(), 0);
        }
        for (acc, n) in batches.bucket_counts.iter_mut().zip(&b.bucket_counts) {
            *acc += n;
        }
        batches.sum += b.sum;
        batches.count += b.count;
        hot.extend(c.hot_keys(10));
    };
    for m in &sh.machines_snapshot() {
        if let Some(central) = &m.central_cache {
            merge(central);
        }
        for wc in m.worker_caches.iter().flatten() {
            merge(wc);
        }
    }
    let cc = |name: &str, v: u64| Sample::counter(name, &[], v);
    out.push(cc("muppet_cache_hits_total", cache.hits));
    out.push(cc("muppet_cache_misses_total", cache.misses));
    out.push(cc("muppet_cache_store_loads_total", cache.store_loads));
    out.push(cc("muppet_cache_evictions_total", cache.evictions));
    out.push(cc("muppet_cache_flush_writes_total", cache.flush_writes));
    out.push(cc("muppet_cache_flush_failures_total", cache.flush_failures));
    out.push(cc("muppet_cache_ttl_resets_total", cache.ttl_resets));
    out.push(cc("muppet_cache_flush_batches_total", cache.flush_batches));
    out.push(cc("muppet_cache_store_round_trips_total", cache.store_round_trips));
    out.push(cc("muppet_cache_miss_coalesced_total", cache.miss_coalesced));
    out.push(Sample::gauge("muppet_cache_entries", &[], cache.entries as i64));
    out.push(Sample::gauge("muppet_cache_dirty_slates", &[], cache.dirty as i64));
    for (i, (hits, misses)) in shard_hits.iter().enumerate() {
        let shard = i.to_string();
        out.push(Sample::counter("muppet_cache_shard_hits_total", &[("shard", &shard)], *hits));
        out.push(Sample::counter("muppet_cache_shard_misses_total", &[("shard", &shard)], *misses));
    }
    if batches.count > 0 {
        out.push(Sample {
            name: "muppet_flush_batch_slates".into(),
            labels: Vec::new(),
            value: muppet_obs::Value::Histogram(batches),
        });
    }
    hot.sort_by(|a, b| b.count.cmp(&a.count).then(a.err.cmp(&b.err)));
    hot.truncate(10);
    for hh in hot {
        let (op, key) = hh.key;
        let op_name = sh.wf.op(op).name.as_str();
        let key_text = String::from_utf8_lossy(key.as_bytes()).into_owned();
        out.push(Sample::counter(
            "muppet_hot_key_events_est",
            &[("op", op_name), ("key", &key_text)],
            hh.count,
        ));
    }

    // The wire (TCP mode only; all zero in-process).
    if let Some(tcp) = &sh.tcp {
        let t = tcp.stats();
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        out.push(cc("muppet_net_frames_sent_total", load(&t.frames_sent)));
        out.push(cc("muppet_net_frames_received_total", load(&t.frames_received)));
        out.push(cc("muppet_net_batches_sent_total", load(&t.batches_sent)));
        out.push(cc("muppet_net_batched_events_sent_total", load(&t.batched_events_sent)));
        out.push(cc("muppet_net_send_failures_total", load(&t.send_failures)));
        out.push(cc("muppet_net_connects_total", load(&t.connects)));
        out.push(cc("muppet_net_queue_full_waits_total", load(&t.queue_full_waits)));
        out.push(Sample::gauge(
            "muppet_net_outbound_backlog",
            &[],
            load(&t.outbound_backlog) as i64,
        ));
    }

    // The durable store (when hosted by this node).
    if let Some(store) = &sh.host_store {
        out.push(cc("muppet_wal_syncs_total", store.wal_sync_count()));
    }

    // Crash recovery: the ingest WAL and the dead-letter queue.
    if let Some(log) = &sh.ingest_log {
        out.push(cc("muppet_wal_ingest_syncs_total", log.sync_count()));
        out.push(cc("muppet_wal_ingest_replayed_total", sh.recovered.load(Ordering::Relaxed)));
    }
    out.push(Sample::gauge("muppet_dlq_depth", &[], sh.dlq.depth() as i64));
    out.push(cc("muppet_dlq_evicted_total", sh.dlq.dropped()));
    out.push(cc("muppet_dlq_retried_total", sh.dlq.retried()));

    // Slate codec work (process-wide statics — shared across engines in
    // one process, which only bench harnesses do).
    let (parses, serializations) = muppet_core::slate::repr_counters();
    out.push(cc("muppet_slate_parses_total", parses));
    out.push(cc("muppet_slate_serializations_total", serializations));
}

fn flusher_loop(shared: Arc<Shared>, machine_id: usize, interval: Duration) {
    // lint: allow(no-unwrap-in-prod) — flushers are spawned per existing machine index
    let machine = shared.machine(machine_id).expect("flusher spawned for an existing machine");
    while !shared.stopping.load(Ordering::Acquire) {
        // Sleep in short slices so shutdown does not block for a full
        // (possibly multi-minute) flush interval.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if shared.stopping.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5).min(interval));
        }
        if !machine.alive.load(Ordering::Acquire) {
            return;
        }
        let now = shared.now_us();
        if let Some(cache) = &machine.central_cache {
            cache.flush_dirty(now);
        }
        for cache in machine.worker_caches.iter().flatten() {
            cache.flush_dirty(now);
        }
    }
}
