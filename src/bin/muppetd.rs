//! `muppetd` — one Muppet machine as a standalone OS process.
//!
//! Joins a static cluster (TOML config or `--peers` flag), runs the
//! engine for one of the bundled applications over the TCP transport, and
//! serves the §4.4 HTTP endpoints on its topology `http_port`:
//!
//! * `GET  /slate/<updater>/<key>`  — live slate read (cluster-wide: reads
//!   for keys owned by other machines cross the wire);
//! * `GET  /keys/<updater>`         — cached keys;
//! * `GET  /status`                 — engine counters + failed machines;
//! * `POST /submit/<stream>/<key>`  — ingest one event (body = value).
//!
//! Example 3-node loopback cluster:
//!
//! ```sh
//! cargo run --release --bin muppetd -- --peers \
//!     127.0.0.1:9100:8100,127.0.0.1:9101:8101,127.0.0.1:9102:8102 --node 0 &
//! # ... same with --node 1 and --node 2 ...
//! curl -X POST --data-binary '{"topics":["sports"]}' http://127.0.0.1:8100/submit/S1/k1
//! curl http://127.0.0.1:8102/status
//! ```
//!
//! The failure master (§4.3) runs on the topology's `master` node (default
//! node 0). Kill any other node and keep submitting: the senders report
//! the dead machine, the master broadcasts, and `/status` on every
//! surviving node shows it under `failed_machines`.
//!
//! The event wire batches: outbound events coalesce into `EventBatch`
//! frames per peer, flushed at `--batch-max` events or `--flush-us`
//! microseconds of age, whichever first (see DESIGN.md §5 "Batching and
//! backpressure").

use std::sync::Arc;

use muppet::apps::{hot_topics, retailer};
use muppet::core::workflow::Workflow;
use muppet::prelude::*;
use muppet::runtime::engine::{OperatorSet, TransportKind};
use muppet::slatestore::cluster::{StoreCluster, StoreConfig};
use muppet_net::topology::Topology;

struct Options {
    topology: Topology,
    node: usize,
    app: String,
    kind: EngineKind,
    workers: usize,
    store_host: Option<usize>,
    data_dir: Option<String>,
    batch_max: usize,
    flush_us: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: muppetd (--config <cluster.toml> | --peers <host:port:http,...>) --node <id>
           [--app hot_topics|retailer] [--engine muppet1|muppet2]
           [--workers <n>] [--store-host <id>] [--data-dir <path>] [--master <id>]
           [--batch-max <events>] [--flush-us <microseconds>]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut topology: Option<Topology> = None;
    let mut node: Option<usize> = None;
    let mut app = "hot_topics".to_string();
    let mut kind = EngineKind::Muppet2;
    let mut workers = 4;
    let mut store_host = None;
    let mut data_dir = None;
    let mut master: Option<usize> = None;
    let defaults = EngineConfig::default();
    let mut batch_max = defaults.net_batch_max;
    let mut flush_us = defaults.net_flush_us;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match flag.as_str() {
            "--config" => {
                let path = value();
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("muppetd: cannot read {path}: {e}");
                    std::process::exit(2)
                });
                topology = Some(Topology::from_toml_str(&text).unwrap_or_else(|e| {
                    eprintln!("muppetd: bad config {path}: {e}");
                    std::process::exit(2)
                }));
            }
            "--peers" => {
                topology = Some(Topology::from_peer_list(value()).unwrap_or_else(|e| {
                    eprintln!("muppetd: bad --peers: {e}");
                    std::process::exit(2)
                }));
            }
            "--node" => node = value().parse().ok(),
            "--app" => app = value().to_string(),
            "--engine" => {
                kind = match value() {
                    "muppet1" | "1" => EngineKind::Muppet1,
                    "muppet2" | "2" => EngineKind::Muppet2,
                    other => {
                        eprintln!("muppetd: unknown engine {other:?}");
                        usage()
                    }
                }
            }
            "--workers" => workers = value().parse().unwrap_or(4),
            "--batch-max" => {
                batch_max = value().parse().unwrap_or_else(|_| {
                    eprintln!("muppetd: --batch-max wants an event count");
                    usage()
                })
            }
            "--flush-us" => {
                flush_us = value().parse().unwrap_or_else(|_| {
                    eprintln!("muppetd: --flush-us wants microseconds");
                    usage()
                })
            }
            "--store-host" => store_host = value().parse().ok(),
            "--data-dir" => data_dir = Some(value().to_string()),
            "--master" => master = value().parse().ok(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("muppetd: unknown flag {other:?}");
                usage()
            }
        }
    }
    let mut topology = topology.unwrap_or_else(|| usage());
    if let Some(m) = master {
        topology.master = m;
    }
    let node = node.unwrap_or_else(|| usage());
    if node >= topology.len() {
        eprintln!("muppetd: --node {node} not in topology of {} nodes", topology.len());
        std::process::exit(2);
    }
    Options { topology, node, app, kind, workers, store_host, data_dir, batch_max, flush_us }
}

fn app_workflow_and_ops(app: &str) -> (Workflow, OperatorSet) {
    match app {
        "hot_topics" => (
            hot_topics::workflow(),
            OperatorSet::new()
                .mapper(hot_topics::TopicMapper::new())
                .updater(hot_topics::MinuteCounter::new())
                .updater(hot_topics::HotDetector::new(3.0)),
        ),
        "retailer" => (
            retailer::workflow(),
            OperatorSet::new()
                .mapper(retailer::RetailerMapper::new())
                .updater(retailer::Counter::new()),
        ),
        other => {
            eprintln!("muppetd: unknown app {other:?} (have: hot_topics, retailer)");
            std::process::exit(2)
        }
    }
}

fn main() {
    let opts = parse_args();
    let (workflow, ops) = app_workflow_and_ops(&opts.app);

    // The store service: the hosting node opens a real cluster on disk;
    // other nodes reach it through the transport's store frames.
    let store: Option<Arc<StoreCluster>> = match opts.store_host {
        Some(host) if host == opts.node => {
            let dir = opts.data_dir.clone().unwrap_or_else(|| {
                format!("{}/muppetd-node{}", std::env::temp_dir().display(), opts.node)
            });
            match StoreCluster::open(&dir, StoreConfig::default()) {
                Ok(cluster) => Some(Arc::new(cluster)),
                Err(e) => {
                    eprintln!("muppetd: cannot open store at {dir}: {e:?}");
                    std::process::exit(1)
                }
            }
        }
        _ => None,
    };

    let http_port = opts.topology.nodes[opts.node].http_port;
    let cfg = EngineConfig {
        kind: opts.kind,
        machines: opts.topology.len(),
        workers_per_machine: opts.workers,
        workers_per_op: opts.workers,
        transport: TransportKind::Tcp { topology: opts.topology.clone(), local: opts.node },
        store_host: opts.store_host,
        net_batch_max: opts.batch_max,
        net_flush_us: opts.flush_us,
        ..EngineConfig::default()
    };
    let engine = match Engine::start(workflow, ops, cfg, store) {
        Ok(engine) => Arc::new(engine),
        Err(e) => {
            eprintln!("muppetd: engine failed to start: {e}");
            std::process::exit(1)
        }
    };

    let http = if http_port != 0 {
        let addr = format!("{}:{}", opts.topology.nodes[opts.node].host, http_port);
        match HttpSlateServer::serve_on(
            Arc::clone(&engine) as Arc<dyn muppet::runtime::http::SlateReader>,
            &addr,
        ) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("muppetd: cannot bind http on {addr}: {e}");
                std::process::exit(1)
            }
        }
    } else {
        None
    };

    let node_spec = &opts.topology.nodes[opts.node];
    println!(
        "muppetd: node {}/{} ({}) listening on {}:{}{} app={} engine={:?} master={}",
        opts.node,
        opts.topology.len(),
        if opts.topology.master == opts.node { "master" } else { "worker" },
        node_spec.host,
        node_spec.port,
        http.as_ref().map(|h| format!(" http={}", h.port())).unwrap_or_default(),
        opts.app,
        opts.kind,
        opts.topology.master,
    );
    // Flush the ready line so supervisors (and the e2e test) can wait on it.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
