//! X18 — the write-behind store path: what the dirty index, batched
//! store frames, and WAL group commit each buy.
//!
//! §4.2: "Muppet periodically flushes dirty slates" — but the *shape* of
//! that flush decides whether the store keeps up with the firehose. The
//! seed path scanned the whole cache per sweep and paid one synchronous
//! backend call per dirty slate (over TCP: one wire round trip; on a
//! durable WAL: one fsync per record). This experiment peels those taxes
//! off one at a time on an identical cache population (M resident
//! slates, D of them dirty per tick):
//!
//! * `per-slate-scan`   — the seed shape: walk every cached slate, flush
//!   the dirty ones with one backend call each;
//! * `dirty-index`      — sweep only the per-shard dirty index, still one
//!   backend call per slate (`flush_batch_max = 1`);
//! * `+batched-calls`   — the dirty index plus `FlushBatch`es:
//!   ⌈D/flush_batch_max⌉ `store_many` calls per sweep (over TCP these
//!   are `StorePutBatch` frames — one wire round trip per batch);
//! * `+group-commit`    — the store side: the same D cells written
//!   through `put_many` on a `wal_sync_each` cluster, one fsync per
//!   node-batch instead of one per record.
//!
//! Both an in-process cluster backend and a TCP-loopback `RemoteBackend`
//! (real `StorePutBatch` frames against a store-hosting peer) are
//! measured. CI gates on the deterministic round-trip / fsync counts,
//! not wall time; the committed full-scale numbers live in
//! `BENCH_x18.json`.

use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use muppet_core::event::Key;
use muppet_core::json::Json;
use muppet_core::Codec;
use muppet_net::topology::Topology;
use muppet_net::transport::{ClusterHandler, MachineId, NetError, Transport};
use muppet_net::{StoreGetItem, StorePutItem, TcpTransport, WireEvent};
use muppet_runtime::cache::{FlushPolicy, SlateBackend, SlateCache};
use muppet_runtime::netstore::RemoteBackend;
use muppet_slatestore::cluster::{StoreCluster, StoreConfig};

use crate::table::Table;
use crate::Scale;

const FLUSH_BATCH: usize = 256;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("muppet-x18-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create x18 temp dir");
    dir
}

/// Build a cache over `backend`, resident-populate `m` slates and dirty
/// the first `d` of them (one write each).
fn populate(backend: Arc<dyn SlateBackend>, m: usize, d: usize, batch: usize) -> SlateCache {
    let cache = SlateCache::with_shards(m * 2, FlushPolicy::IntervalMs(1_000), backend, 8)
        .with_flush_batch(batch);
    let name: Arc<str> = Arc::from("U1");
    for i in 0..m {
        let slot = cache.get_or_load(0, &name, &Key::from(format!("k{i}")), None, 0);
        if i < d {
            let mut state = slot.state.lock();
            state.slate.replace(format!("value-{i}").into_bytes());
            cache.note_write(&slot, &mut state, 0);
        }
    }
    cache
}

struct Outcome {
    elapsed: Duration,
    written: u64,
    /// Backend calls (in-process) or wire frames (TCP) the flush cost.
    round_trips: u64,
}

/// The seed flush shape: walk EVERY cached slate and flush the dirty
/// ones one backend call at a time.
fn flush_by_scan(cache: &SlateCache) -> Outcome {
    let name: Arc<str> = Arc::from("U1");
    let trips0 = cache.stats().store_round_trips;
    let t0 = Instant::now();
    let mut written = 0u64;
    for key in cache.keys_of(0) {
        let slot = cache.get_or_load(0, &name, &key, None, 1);
        let dirty = slot.state.lock().dirty();
        if cache.flush_slot_now(&slot, 1) && dirty {
            written += 1;
        }
    }
    Outcome {
        elapsed: t0.elapsed(),
        written,
        round_trips: cache.stats().store_round_trips - trips0,
    }
}

/// The write-behind sweep: drain the dirty index in `FlushBatch`es.
fn flush_by_sweep(cache: &SlateCache) -> Outcome {
    let trips0 = cache.stats().store_round_trips;
    let t0 = Instant::now();
    let written = cache.flush_dirty(1);
    Outcome {
        elapsed: t0.elapsed(),
        written,
        round_trips: cache.stats().store_round_trips - trips0,
    }
}

/// The store host behind the TCP arms: serves the batched (and unbatched)
/// store frames from a real LSM cluster.
struct HostedStore(Arc<StoreCluster>);

impl ClusterHandler for HostedStore {
    fn deliver_event(&self, dest: MachineId, _ev: WireEvent) -> Result<(), NetError> {
        Err(NetError::NoRoute(dest))
    }
    fn handle_failure_report(&self, _f: MachineId, _epoch: u64) {}
    fn handle_failure_broadcast(&self, _f: MachineId, _epoch: u64) {}
    fn read_local_slate(&self, _d: MachineId, _u: &str, _k: &[u8]) -> Option<Vec<u8>> {
        None
    }
    fn backend_store(&self, u: &str, k: &[u8], v: &[u8], codec: Codec, ttl: Option<u64>, now: u64) {
        SlateBackend::store(&*self.0, u, &Key::from(k), v, codec, ttl, now);
    }
    fn backend_load(&self, u: &str, k: &[u8], now: u64) -> Option<Vec<u8>> {
        SlateBackend::load(&*self.0, u, &Key::from(k), now)
    }
    fn backend_store_many(&self, items: &[StorePutItem], now: u64) -> Vec<bool> {
        let flush: Vec<muppet_runtime::cache::FlushItem> = items
            .iter()
            .map(|item| muppet_runtime::cache::FlushItem {
                updater: Arc::from(item.updater.as_str()),
                key: Key::from(item.key.as_slice()),
                bytes: item.value.clone(),
                ttl_secs: item.ttl_secs,
                codec: item.codec,
            })
            .collect();
        SlateBackend::store_many(&*self.0, &flush, now)
    }
    fn backend_load_many(&self, items: &[StoreGetItem], now: u64) -> Vec<Option<Vec<u8>>> {
        items.iter().map(|item| self.backend_load(&item.updater, &item.key, now)).collect()
    }
}

/// Dummy handler for the client side of the wire.
struct NoopHandler;

impl ClusterHandler for NoopHandler {
    fn deliver_event(&self, dest: MachineId, _ev: WireEvent) -> Result<(), NetError> {
        Err(NetError::NoRoute(dest))
    }
    fn handle_failure_report(&self, _f: MachineId, _epoch: u64) {}
    fn handle_failure_broadcast(&self, _f: MachineId, _epoch: u64) {}
    fn read_local_slate(&self, _d: MachineId, _u: &str, _k: &[u8]) -> Option<Vec<u8>> {
        None
    }
}

/// One TCP-loopback arm: a cache on node 1 flushing D dirty slates to the
/// store service on node 0, `flush_batch_max = batch`. Returns the
/// outcome measured in *wire frames*.
fn run_tcp_arm(m: usize, d: usize, batch: usize, tag: &str) -> Outcome {
    let dir = temp_dir(tag);
    let store = Arc::new(
        StoreCluster::open(&dir, StoreConfig { nodes: 1, replication: 1, ..Default::default() })
            .expect("open store"),
    );
    let topology = Topology::loopback_ephemeral(2, false).expect("reserve ports");
    let host = TcpTransport::new(topology.clone(), 0).unwrap();
    let client = TcpTransport::new(topology, 1).unwrap();
    let hosted = Arc::new(HostedStore(store));
    let noop = Arc::new(NoopHandler);
    host.register(Arc::downgrade(&hosted) as Weak<dyn ClusterHandler>);
    client.register(Arc::downgrade(&noop) as Weak<dyn ClusterHandler>);
    let _listener = host.start_listener().unwrap();
    let backend = Arc::new(RemoteBackend::new(Arc::clone(&client) as Arc<dyn Transport>, 0));
    let cache = populate(backend, m, d, batch);
    let frames0 = client.stats().frames_sent.load(std::sync::atomic::Ordering::Relaxed);
    let t0 = Instant::now();
    let written = cache.flush_dirty(1);
    let frames = client.stats().frames_sent.load(std::sync::atomic::Ordering::Relaxed) - frames0;
    let out = Outcome { elapsed: t0.elapsed(), written, round_trips: frames };
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// The group-commit arm pair: write D cells through a `wal_sync_each`
/// cluster per-record vs via one `put_many`. Returns
/// (elapsed, fsyncs) per mode.
fn run_group_commit(d: usize) -> ((Duration, u64), (Duration, u64)) {
    let values: Vec<(Key, Vec<u8>)> =
        (0..d).map(|i| (Key::from(format!("k{i}")), format!("value-{i}").into_bytes())).collect();
    let durable = StoreConfig {
        nodes: 1,
        replication: 1,
        wal_sync_each: true,
        compress_values: false,
        ..Default::default()
    };
    // Per-record fsync.
    let dir = temp_dir("wal-each");
    let store = StoreCluster::open(&dir, durable.clone()).expect("open store");
    let t0 = Instant::now();
    for (key, value) in &values {
        SlateBackend::store(&store, "U1", key, value, Codec::Json, None, 1);
    }
    let per_record = (t0.elapsed(), store.wal_sync_count());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    // Group commit.
    let dir = temp_dir("wal-group");
    let store = StoreCluster::open(&dir, durable).expect("open store");
    let items: Vec<(muppet_slatestore::types::CellKey, &[u8], Codec, Option<u64>)> = values
        .iter()
        .map(|(key, value)| {
            (
                muppet_slatestore::types::CellKey::new(key.as_bytes(), "U1"),
                value.as_slice(),
                Codec::Json,
                None,
            )
        })
        .collect();
    let t0 = Instant::now();
    let results = store.put_many(&items, 1);
    assert!(results.iter().all(|r| r.is_ok()), "group commit writes must land");
    let grouped = (t0.elapsed(), store.wal_sync_count());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    (per_record, grouped)
}

fn arm_json(name: &str, d: usize, o: &Outcome) -> Json {
    Json::obj([
        ("arm", Json::str(name)),
        ("dirty_slates", Json::num(d as f64)),
        ("written", Json::num(o.written as f64)),
        ("wall_ms", Json::num(o.elapsed.as_secs_f64() * 1e3)),
        ("round_trips", Json::num(o.round_trips as f64)),
        ("slates_per_sec", Json::num(o.written as f64 / o.elapsed.as_secs_f64().max(1e-9))),
    ])
}

/// Run the experiment.
pub fn run(scale: Scale) {
    super::banner(
        "X18",
        "the write-behind store path: dirty index, batched frames, group commit",
        "§4.2 periodic dirty-slate flush; DESIGN.md §9",
    );
    let m = scale.events(100_000); // resident slates
    let d = (m / 10).max(64); // dirty per tick

    // --- in-process arms over a real single-node LSM cluster ---
    let run_inproc = |batch: usize, tag: &str, by_scan: bool| -> Outcome {
        let dir = temp_dir(tag);
        let store = Arc::new(
            StoreCluster::open(
                &dir,
                StoreConfig { nodes: 1, replication: 1, ..Default::default() },
            )
            .expect("open store"),
        );
        let cache = populate(Arc::clone(&store) as Arc<dyn SlateBackend>, m, d, batch);
        let out = if by_scan { flush_by_scan(&cache) } else { flush_by_sweep(&cache) };
        drop(cache);
        let _ = std::fs::remove_dir_all(&dir);
        out
    };
    let scan = run_inproc(1, "scan", true);
    let index = run_inproc(1, "index", false);
    let batched = run_inproc(FLUSH_BATCH, "batched", false);

    // --- TCP-loopback arms: real StorePut / StorePutBatch frames ---
    let tcp_per_slate = run_tcp_arm(m, d, 1, "tcp-1");
    let tcp_batched = run_tcp_arm(m, d, FLUSH_BATCH, "tcp-b");

    // --- WAL group commit under wal_sync_each ---
    let ((each_wall, each_syncs), (group_wall, group_syncs)) = run_group_commit(d);

    let mut table = Table::new(["arm", "dirty", "written", "wall time", "round trips / fsyncs"]);
    let mut row = |name: &str, o: &Outcome| {
        table.row([
            name.to_string(),
            d.to_string(),
            o.written.to_string(),
            format!("{:.2?}", o.elapsed),
            o.round_trips.to_string(),
        ]);
    };
    row("per-slate-scan (in-proc)", &scan);
    row("dirty-index (in-proc)", &index);
    row("+batched-calls (in-proc)", &batched);
    row("tcp per-slate frames", &tcp_per_slate);
    row("tcp batched frames", &tcp_batched);
    table.row([
        "wal per-record fsync".into(),
        d.to_string(),
        d.to_string(),
        format!("{each_wall:.2?}"),
        each_syncs.to_string(),
    ]);
    table.row([
        "wal group commit".into(),
        d.to_string(),
        d.to_string(),
        format!("{group_wall:.2?}"),
        group_syncs.to_string(),
    ]);
    table.print();

    let expected_batches = (d as u64).div_ceil(FLUSH_BATCH as u64);
    println!(
        "\nshape check: a tick of {d} dirty slates among {m} resident cost the seed shape a \
         {m}-slate scan + {} backend calls; the dirty index visits only the dirty set; batching \
         folds the backend traffic to {} calls (over TCP: {} frames instead of {}); group commit \
         cut {} WAL fsyncs to {}",
        scan.round_trips,
        batched.round_trips,
        tcp_batched.round_trips,
        tcp_per_slate.round_trips,
        each_syncs,
        group_syncs,
    );

    // Deterministic CI gates (wall time is advisory on shared runners).
    assert_eq!(scan.written, d as u64, "the scan arm flushes every dirty slate");
    assert_eq!(index.written, d as u64);
    assert_eq!(batched.written, d as u64);
    assert_eq!(index.round_trips, d as u64, "batch cap 1 = one backend call per dirty slate");
    assert_eq!(batched.round_trips, expected_batches, "⌈D/{FLUSH_BATCH}⌉ batched backend calls");
    assert_eq!(tcp_per_slate.round_trips, d as u64, "unbatched TCP = one frame per slate");
    assert_eq!(
        tcp_batched.round_trips, expected_batches,
        "batched TCP = one StorePutBatch frame per batch"
    );
    assert_eq!(each_syncs, d as u64, "sync_each without batching = one fsync per record");
    assert!(
        group_syncs <= (d as u64).div_ceil(StoreConfig::default().put_batch_max as u64) + 1,
        "group commit = one fsync per node-batch ({group_syncs} syncs for {d} records)"
    );

    let doc = Json::obj([
        ("experiment", Json::str("x18")),
        ("workload", Json::str("M resident slates, D dirty per flush tick")),
        ("resident_slates", Json::num(m as f64)),
        ("dirty_per_tick", Json::num(d as f64)),
        ("flush_batch_max", Json::num(FLUSH_BATCH as f64)),
        (
            "arms",
            Json::arr([
                arm_json("per-slate-scan", d, &scan),
                arm_json("dirty-index", d, &index),
                arm_json("dirty-index+batched-calls", d, &batched),
                arm_json("tcp-per-slate-frames", d, &tcp_per_slate),
                arm_json("tcp-batched-frames", d, &tcp_batched),
            ]),
        ),
        (
            "wal_group_commit",
            Json::obj([
                ("per_record_fsyncs", Json::num(each_syncs as f64)),
                ("per_record_wall_ms", Json::num(each_wall.as_secs_f64() * 1e3)),
                ("group_fsyncs", Json::num(group_syncs as f64)),
                ("group_wall_ms", Json::num(group_wall.as_secs_f64() * 1e3)),
                ("fsync_reduction", Json::num(each_syncs as f64 / (group_syncs as f64).max(1.0))),
            ]),
        ),
        (
            "tcp_round_trip_reduction",
            Json::num(tcp_per_slate.round_trips as f64 / (tcp_batched.round_trips as f64).max(1.0)),
        ),
        (
            "tcp_batched_vs_per_slate_speedup",
            Json::num(
                tcp_per_slate.elapsed.as_secs_f64() / tcp_batched.elapsed.as_secs_f64().max(1e-9),
            ),
        ),
    ]);
    match std::fs::write("BENCH_x18.json", doc.to_pretty() + "\n") {
        Ok(()) => println!("\nwrote BENCH_x18.json"),
        Err(e) => eprintln!("could not write BENCH_x18.json: {e}"),
    }
}
