//! Store data model: ⟨row, column⟩ → cell, mirroring the Cassandra column-
//! family slice Muppet uses (slate S(U,k) lives at row `k`, column `U`).

use std::fmt;

use bytes::Bytes;
use muppet_core::Codec;

/// Addresses one cell: `row` is the slate key, `column` the updater name.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    /// Row key (the event key `k`).
    pub row: Bytes,
    /// Column name (the update function `U`).
    pub column: Bytes,
}

impl CellKey {
    /// Build a cell key from raw parts (copies the bytes).
    pub fn new(row: impl AsRef<[u8]>, column: impl AsRef<[u8]>) -> Self {
        CellKey {
            row: Bytes::copy_from_slice(row.as_ref()),
            column: Bytes::copy_from_slice(column.as_ref()),
        }
    }

    /// Approximate in-memory size, for memtable accounting.
    pub fn approx_size(&self) -> usize {
        self.row.len() + self.column.len() + 2 * std::mem::size_of::<Bytes>()
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}",
            String::from_utf8_lossy(&self.row),
            String::from_utf8_lossy(&self.column)
        )
    }
}

/// A stored value with its metadata. Deletions are tombstone cells — the
/// LSM needs them to mask older versions until compaction drops both.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// The (compressed) slate payload; empty for tombstones.
    pub value: Bytes,
    /// Microsecond write timestamp; newest wins on merge.
    pub write_ts: u64,
    /// Per-write TTL in seconds (§4.2); `None` = live forever.
    pub ttl_secs: Option<u64>,
    /// True for deletion markers.
    pub tombstone: bool,
    /// Format of the (uncompressed) payload — the cell-level tag that
    /// keeps pre-MBF JSON tables readable alongside MBF cells. The tag is
    /// authoritative: stored values may be compressed, so sniffing the
    /// payload is not possible here.
    pub codec: Codec,
}

impl Cell {
    /// A live cell holding a JSON/raw payload (the pre-MBF default).
    pub fn live(value: impl Into<Bytes>, write_ts: u64, ttl_secs: Option<u64>) -> Self {
        Cell::live_in(value, Codec::Json, write_ts, ttl_secs)
    }

    /// A live cell with an explicit payload codec.
    pub fn live_in(
        value: impl Into<Bytes>,
        codec: Codec,
        write_ts: u64,
        ttl_secs: Option<u64>,
    ) -> Self {
        Cell { value: value.into(), write_ts, ttl_secs, tombstone: false, codec }
    }

    /// A deletion marker.
    pub fn tombstone(write_ts: u64) -> Self {
        Cell { value: Bytes::new(), write_ts, ttl_secs: None, tombstone: true, codec: Codec::Json }
    }

    /// Whether this cell's TTL has lapsed at `now` (microseconds).
    /// "Slates that have not been updated (written) for longer than the TTL
    /// value may be garbage-collected" (§4.2).
    pub fn expired(&self, now: u64) -> bool {
        match self.ttl_secs {
            Some(ttl) => now.saturating_sub(self.write_ts) > ttl.saturating_mul(1_000_000),
            None => false,
        }
    }

    /// Whether a read at `now` should surface this cell's value.
    pub fn visible(&self, now: u64) -> bool {
        !self.tombstone && !self.expired(now)
    }

    /// Approximate in-memory size, for memtable accounting.
    pub fn approx_size(&self) -> usize {
        self.value.len() + std::mem::size_of::<Cell>()
    }
}

/// Store-level errors. I/O failures carry context; corruption is reported
/// distinctly so recovery code can stop at the first bad record.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A frame failed its checksum or structural validation.
    Corrupt(String),
    /// Not enough replicas acknowledged a quorum operation.
    QuorumFailed { required: usize, acked: usize },
    /// The addressed node is marked down.
    NodeDown(usize),
    /// Decompression failed.
    Compression(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StoreError::QuorumFailed { required, acked } => {
                write!(f, "quorum failed: required {required}, acked {acked}")
            }
            StoreError::NodeDown(id) => write!(f, "node {id} is down"),
            StoreError::Compression(msg) => write!(f, "compression error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_key_ordering_is_row_then_column() {
        let a = CellKey::new("alpha", "U2");
        let b = CellKey::new("alpha", "U1");
        let c = CellKey::new("beta", "U1");
        assert!(b < a, "same row orders by column");
        assert!(a < c, "row dominates");
        assert_eq!(a.to_string(), "alpha:U2");
    }

    #[test]
    fn ttl_expiry_boundary() {
        let cell = Cell::live("v", 1_000_000, Some(2)); // written at t=1s, ttl=2s
        assert!(!cell.expired(1_000_000));
        assert!(!cell.expired(3_000_000), "exactly at ttl is still live");
        assert!(cell.expired(3_000_001));
        assert!(cell.visible(2_000_000));
        assert!(!cell.visible(4_000_000));
    }

    #[test]
    fn no_ttl_never_expires() {
        let cell = Cell::live("v", 0, None);
        assert!(!cell.expired(u64::MAX));
    }

    #[test]
    fn tombstones_are_never_visible() {
        let t = Cell::tombstone(5);
        assert!(t.tombstone);
        assert!(!t.visible(10));
        assert!(t.value.is_empty());
    }

    #[test]
    fn ttl_expiry_does_not_overflow() {
        let cell = Cell::live("v", 0, Some(u64::MAX));
        assert!(!cell.expired(u64::MAX), "saturating ttl arithmetic");
    }

    #[test]
    fn sizes_track_payload() {
        let k = CellKey::new("rowkey", "col");
        assert!(k.approx_size() >= 9);
        let c = Cell::live(vec![0u8; 100], 0, None);
        assert!(c.approx_size() >= 100);
    }

    #[test]
    fn store_error_display() {
        let e = StoreError::QuorumFailed { required: 2, acked: 1 };
        assert_eq!(e.to_string(), "quorum failed: required 2, acked 1");
        assert!(StoreError::NodeDown(3).to_string().contains("3"));
    }
}
