//! Wire frames.
//!
//! Every message on a muppet connection is one length-prefixed frame:
//!
//! ```text
//! [u32 LE payload length][u32 LE crc32c(payload)][payload]
//! payload = [u8 kind][kind-specific fields]
//! ```
//!
//! Fields reuse `muppet-core::codec` primitives (varints, length-prefixed
//! byte strings, the event wire encoding). The CRC catches corruption and
//! desynchronization; decoding is bounds-checked throughout and never
//! panics on malformed input.

use std::io::{self, Read, Write};

use bytes::Bytes;
use muppet_core::codec::{
    self, get_event, get_len_prefixed, get_opt_bytes, get_opt_varint, get_varint, put_event,
    put_len_prefixed, put_opt_bytes, put_opt_varint, put_varint,
};
use muppet_core::event::Event;
use muppet_core::workflow::OpId;
use muppet_core::{mbf, Codec, Json};

use crate::topology::NodeSpec;
use crate::transport::MachineId;

/// Refuse frames larger than this (corrupt length prefixes otherwise
/// trigger absurd allocations).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// An event in flight between machines, with the routing metadata the
/// receiving engine needs to finish delivery.
#[derive(Clone, Debug, PartialEq)]
pub struct WireEvent {
    /// Destination operator.
    pub op: OpId,
    /// The event itself.
    pub event: Event,
    /// Sender-engine-relative µs at external injection (approximate across
    /// processes; see DESIGN.md §5).
    pub injected_us: u64,
    /// Already redirected to an overflow stream once (no double redirects).
    pub redirected: bool,
    /// Originated from an external `submit` (overflow policy distinguishes
    /// external from internal events, §5).
    pub external: bool,
    /// Muppet 1.0: the destination worker thread resolved by the sender's
    /// op rings (the worker layout is deterministic, so the hint is valid
    /// cluster-wide). `None` for Muppet 2.0 two-choice dispatch at the
    /// receiver.
    pub thread_hint: Option<usize>,
    /// Times this event has been forwarded by a machine that no longer
    /// owned its key (elastic handoff / laggard rings). Capped at
    /// [`MAX_FORWARDS`] on the wire; receivers drop-and-log beyond it so
    /// disagreeing rings can never ping-pong an event forever.
    pub forwards: u8,
}

/// Hop bound for ownership forwarding (3 bits in the wire flags byte).
pub const MAX_FORWARDS: u8 = 7;

/// Which step of the membership protocol a [`MembershipUpdate`] carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipPhase {
    /// Stage the candidate rings and flush moved-away dirty slates, then
    /// ack (request/response — the handoff barrier).
    Prepare,
    /// Install the staged epoch (one-way).
    Commit,
    /// Discard the staged epoch: the join was aborted before commit
    /// (one-way). Prepared nodes revert to their committed rings; the
    /// already-flushed slates fault back in from the store.
    Abort,
}

/// An epoch-stamped membership change in flight between the master and
/// the workers (elastic scale-out; DESIGN.md §7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MembershipUpdate {
    /// The epoch this update creates (or, for an abort, discards).
    pub epoch: u64,
    /// Prepare, commit, or abort.
    pub phase: MembershipPhase,
    /// Machine ids entering the rings at this epoch.
    pub joined: Vec<MachineId>,
    /// The complete committed ring membership *after* this epoch — not
    /// just the delta. A worker that missed an earlier epoch heals from
    /// this: any member absent from its rings is (re-)added when the
    /// update stages, so one lost frame can never diverge membership
    /// forever.
    pub members: Vec<MachineId>,
    /// The full cluster node list (workers learn new peers' addresses
    /// from here; ids are contiguous and include not-yet-joined
    /// reservations).
    pub nodes: Vec<NodeSpec>,
}

/// One slate write inside a [`Frame::StorePutBatch`] — the wire image of
/// a dirty-slate snapshot headed for the store host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorePutItem {
    /// Update function (store column).
    pub updater: String,
    /// Event key (store row).
    pub key: Vec<u8>,
    /// Slate bytes — refcounted, so a flush snapshot moves from the
    /// slate cache into the frame without copying the payload.
    pub value: Bytes,
    /// Slate TTL, if the updater configured one.
    pub ttl_secs: Option<u64>,
    /// Payload format of `value`. All-JSON batches encode as the v3 wire
    /// (kind 16, byte-identical); any MBF item switches the batch to the
    /// tagged v5 encoding (kind 22).
    pub codec: Codec,
}

/// One slate read inside a [`Frame::StoreGetBatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreGetItem {
    /// Update function (store column).
    pub updater: String,
    /// Event key (store row).
    pub key: Vec<u8>,
}

/// One protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Connection preamble: protocol version + sender machine + (v5) the
    /// codec capabilities the dialer offers ([`CODEC_MBF`] bit). Receivers
    /// accept versions 3..=5 — pre-v5 hellos carry no codecs byte and
    /// decode with `codecs == 0`, so a mixed-version cluster degrades to
    /// JSON on exactly the connections that need it.
    Hello { sender: MachineId, version: u64, codecs: u8 },
    /// Reply to a **v5** [`Frame::Hello`] carrying the receiver's codec
    /// capabilities; the intersection of offered and acked bits is the
    /// connection's negotiated codec. Never sent in reply to a pre-v5
    /// hello: legacy dialers do not read acks (their liveness probe
    /// treats any readable byte on an event connection as a dead peer).
    HelloAck { codecs: u8 },
    /// Deliver an event (one-way; losses surface as connection errors).
    Event(WireEvent),
    /// Deliver a coalesced run of events (one-way). One frame header, one
    /// CRC, one syscall for the whole run — the amortization that makes
    /// the wire keep up with the firehose (§4.1). Semantically identical
    /// to the same events sent as individual [`Frame::Event`]s.
    EventBatch(Vec<WireEvent>),
    /// Deliver a coalesced run of *combined* events (one-way): each entry
    /// is one wire event whose payload absorbed `count` original
    /// same-⟨op,key⟩ events through the operator's declared associative
    /// combiner (map-side pre-aggregation in the sender outbox). The
    /// count rides along so the receiver can account for original events
    /// (ledgers, metrics) without unfolding. A batch where every count is
    /// 1 never uses this kind — it encodes as the plain
    /// [`Frame::EventBatch`] / [`Frame::Event`] wire, byte-identical.
    CombinedBatch(Vec<(WireEvent, u64)>),
    /// Worker → master: `failed` was unreachable on send (§4.3), observed
    /// under membership `epoch` (stale-epoch reports about a re-joined id
    /// are rejected by the master).
    FailureReport { failed: MachineId, epoch: u64 },
    /// Master → everyone: drop `failed` from all hash rings (§4.3),
    /// stamped with the epoch the failure was accepted under.
    FailureBroadcast { failed: MachineId, epoch: u64 },
    /// Joiner → master: machine `machine` (previously reserved via the
    /// HTTP `/join` admin call) is live and ready to enter the rings.
    Join { machine: MachineId },
    /// Master → workers: an epoch-stamped membership change (prepare or
    /// commit; see [`MembershipUpdate`]).
    Membership(MembershipUpdate),
    /// Worker → master reply to a [`Frame::Membership`] prepare: the
    /// epoch is staged; moved-away dirty slates were flushed before this
    /// ack.
    MembershipAck { epoch: u64 },
    /// Worker → master reply to a [`Frame::Membership`] prepare the
    /// worker refused (e.g. a newer epoch already staged). Lets the
    /// master fail fast instead of burning a reply timeout and
    /// misreading a healthy worker as dead.
    MembershipNack { epoch: u64 },
    /// Request the live cached slate of ⟨updater, key⟩ (§4.4 remote read).
    SlateGet { updater: String, key: Vec<u8> },
    /// Response to [`Frame::SlateGet`].
    SlateValue { value: Option<Vec<u8>> },
    /// Persist slate bytes on the store-hosting node.
    StorePut { updater: String, key: Vec<u8>, value: Vec<u8>, ttl_secs: Option<u64>, now_us: u64 },
    /// Load persisted slate bytes from the store-hosting node.
    StoreGet { updater: String, key: Vec<u8>, now_us: u64 },
    /// Response to [`Frame::StoreGet`].
    StoreValue { value: Option<Vec<u8>> },
    /// Response to [`Frame::StorePut`].
    StoreAck,
    /// Persist a run of slates on the store-hosting node in ONE framed
    /// round trip (the §4.2 write-behind flush: a tick's dirty set crosses
    /// the wire as one frame, one CRC, one syscall — the store-path twin
    /// of [`Frame::EventBatch`]). Semantically identical to the same cells
    /// sent as individual [`Frame::StorePut`]s, which remain accepted.
    StorePutBatch { items: Vec<StorePutItem>, now_us: u64 },
    /// Response to [`Frame::StorePutBatch`]: per-item success, in order
    /// (false = the store refused that cell; the sender keeps it dirty).
    StoreAckBatch { ok: Vec<bool> },
    /// Load a run of slates from the store-hosting node in one round trip.
    StoreGetBatch { items: Vec<StoreGetItem>, now_us: u64 },
    /// Response to [`Frame::StoreGetBatch`]: per-item values with their
    /// payload codecs, in order. All-JSON responses encode as the v3 wire
    /// (kind 19, byte-identical); any MBF value switches to the tagged v5
    /// encoding (kind 23).
    StoreValueBatch { values: Vec<Option<(Vec<u8>, Codec)>> },
    /// A restarted incarnation of `machine` re-identifying itself (crash
    /// recovery): the receiver clears its §4.3 death-ledger entry, marks
    /// the machine routable again, and — on the master — re-runs the
    /// join protocol so the returning node regains its ring position.
    Reintroduce { machine: usize },
    /// Response to [`Frame::Reintroduce`]: the receiver's membership
    /// epoch, so the returning node can fence itself.
    ReintroduceAck { epoch: u64 },
}

/// Protocol version carried in [`Frame::Hello`]. v6: combined-batch
/// event frames (kind 25) carrying map-side pre-aggregated deltas with
/// their absorbed-event counts; v5: MBF codec
/// negotiation (`HelloAck`, the hello codecs byte, tagged store batch
/// kinds 22/23) — hellos from v3/v4 peers are still accepted and pin
/// their connections to JSON; v4: restart re-identification
/// (`Reintroduce`/`ReintroduceAck`); v3 added batched store frames
/// (`StorePutBatch`/`StoreGetBatch` + responses); v2 added epoch-stamped
/// failure frames + the membership (elastic join) frames. The unbatched
/// store frames remain in the protocol and are still accepted.
pub const PROTOCOL_VERSION: u64 = 6;

/// Oldest hello version still accepted (see [`Frame::Hello`]).
pub const MIN_PROTOCOL_VERSION: u64 = 3;

/// Codec-capability bit in the hello/ack `codecs` byte: the peer can
/// decode MBF payloads in event values and store frames.
pub const CODEC_MBF: u8 = 0b0000_0001;

const KIND_HELLO: u8 = 1;
const KIND_EVENT: u8 = 2;
const KIND_FAILURE_REPORT: u8 = 3;
const KIND_FAILURE_BROADCAST: u8 = 4;
const KIND_SLATE_GET: u8 = 5;
const KIND_SLATE_VALUE: u8 = 6;
const KIND_STORE_PUT: u8 = 7;
const KIND_STORE_GET: u8 = 8;
const KIND_STORE_VALUE: u8 = 9;
const KIND_STORE_ACK: u8 = 10;
const KIND_EVENT_BATCH: u8 = 11;
const KIND_JOIN: u8 = 12;
const KIND_MEMBERSHIP: u8 = 13;
const KIND_MEMBERSHIP_ACK: u8 = 14;
const KIND_MEMBERSHIP_NACK: u8 = 15;
const KIND_STORE_PUT_BATCH: u8 = 16;
const KIND_STORE_ACK_BATCH: u8 = 17;
const KIND_STORE_GET_BATCH: u8 = 18;
const KIND_STORE_VALUE_BATCH: u8 = 19;
const KIND_REINTRODUCE: u8 = 20;
const KIND_REINTRODUCE_ACK: u8 = 21;
const KIND_STORE_PUT_BATCH_TAGGED: u8 = 22;
const KIND_STORE_VALUE_BATCH_TAGGED: u8 = 23;
const KIND_HELLO_ACK: u8 = 24;
const KIND_COMBINED_BATCH: u8 = 25;

/// The encoded floor of one event inside a batch (op + injected_us +
/// flags + hint tag + the event's own fixed fields) — used to bound the
/// batch-vector pre-allocation against corrupt counts.
const MIN_WIRE_EVENT_BYTES: usize = 8;

fn codec_byte(codec: Codec) -> u8 {
    match codec {
        Codec::Json => 0,
        Codec::Mbf => 1,
    }
}

fn codec_from_byte(byte: u8) -> Option<Codec> {
    match byte {
        0 => Some(Codec::Json),
        1 => Some(Codec::Mbf),
        _ => None,
    }
}

/// Re-encode an MBF payload as canonical JSON text — the downgrade
/// applied when a value negotiated for an MBF connection must cross a
/// JSON-only one instead. Returns `None` when no change is needed: the
/// bytes are not MBF, or they fail to decode (then they travel as-is;
/// payloads are opaque to the wire).
fn mbf_to_json_bytes(value: &[u8]) -> Option<Vec<u8>> {
    if !mbf::is_mbf(value) {
        return None;
    }
    Json::from_mbf(value).ok().map(|doc| doc.to_compact().into_bytes())
}

/// Clone `ev` with its value transcoded MBF→JSON; `None` when the value
/// already travels on every protocol version.
fn downgrade_wire_event(ev: &WireEvent) -> Option<WireEvent> {
    let value = mbf_to_json_bytes(&ev.event.value)?;
    let mut out = ev.clone();
    out.event.value = value.into();
    Some(out)
}

/// Encode one batched-path event's fields (shared by the `Event` and
/// `EventBatch` payloads).
fn put_wire_event(out: &mut Vec<u8>, ev: &WireEvent) {
    put_varint(out, ev.op as u64);
    put_varint(out, ev.injected_us);
    let mut flags = 0u8;
    if ev.redirected {
        flags |= 1;
    }
    if ev.external {
        flags |= 2;
    }
    // Bits 2..=4: the forwarding hop count, saturating at MAX_FORWARDS.
    flags |= ev.forwards.min(MAX_FORWARDS) << 2;
    out.push(flags);
    put_opt_varint(out, ev.thread_hint.map(|t| t as u64));
    put_event(out, &ev.event);
}

/// Decode one batched-path event's fields. Returns the event and the
/// bytes consumed; `None` on malformed input.
fn get_wire_event(buf: &[u8]) -> Option<(WireEvent, usize)> {
    let mut at = 0;
    let (op, n) = get_varint(buf)?;
    at += n;
    let (injected_us, n) = get_varint(&buf[at..])?;
    at += n;
    let flags = *buf.get(at)?;
    at += 1;
    let (hint, n) = get_opt_varint(&buf[at..])?;
    at += n;
    let (event, n) = get_event(&buf[at..])?;
    at += n;
    Some((
        WireEvent {
            op: op as OpId,
            event,
            injected_us,
            redirected: flags & 1 != 0,
            external: flags & 2 != 0,
            thread_hint: hint.map(|t| t as usize),
            forwards: (flags >> 2) & 0x07,
        },
        at,
    ))
}

fn put_node_spec(out: &mut Vec<u8>, node: &NodeSpec) {
    put_varint(out, node.id as u64);
    put_len_prefixed(out, node.host.as_bytes());
    put_varint(out, node.port as u64);
    put_varint(out, node.http_port as u64);
}

fn get_node_spec(buf: &[u8]) -> Option<(NodeSpec, usize)> {
    let mut at = 0;
    let (id, n) = get_varint(buf)?;
    at += n;
    let (host, n) = get_len_prefixed(&buf[at..])?;
    let host = std::str::from_utf8(host).ok()?.to_string();
    at += n;
    let (port, n) = get_varint(&buf[at..])?;
    if port > u16::MAX as u64 {
        return None;
    }
    at += n;
    let (http_port, n) = get_varint(&buf[at..])?;
    if http_port > u16::MAX as u64 {
        return None;
    }
    at += n;
    Some((
        NodeSpec { id: id as MachineId, host, port: port as u16, http_port: http_port as u16 },
        at,
    ))
}

/// Encode a run of events as the smallest equivalent payload: a plain
/// `Event` frame for a single event (byte-identical to the unbatched
/// wire), an `EventBatch` otherwise. Used by senders that hold the events
/// by reference and must not clone them just to build a `Frame` value.
///
/// `allow_mbf` is the connection's negotiated codec: when false (a JSON
/// peer), any MBF event value is transcoded to JSON text on the way out,
/// so pre-v5 receivers only ever see payloads they can parse.
pub fn encode_events_payload(events: &[WireEvent], allow_mbf: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * events.len().max(1));
    let put_one = |out: &mut Vec<u8>, ev: &WireEvent| {
        if allow_mbf {
            put_wire_event(out, ev);
        } else if let Some(json_ev) = downgrade_wire_event(ev) {
            put_wire_event(out, &json_ev);
        } else {
            put_wire_event(out, ev);
        }
    };
    if let [only] = events {
        out.push(KIND_EVENT);
        put_one(&mut out, only);
    } else {
        out.push(KIND_EVENT_BATCH);
        put_varint(&mut out, events.len() as u64);
        for ev in events {
            put_one(&mut out, ev);
        }
    }
    out
}

/// Encode a run of combined entries as the smallest equivalent payload.
/// A batch where no entry actually absorbed anything (`count == 1`
/// everywhere — the overwhelmingly common case when no operator declares
/// a combiner) encodes byte-identically to [`encode_events_payload`];
/// only a batch carrying real folds uses [`Frame::CombinedBatch`]
/// (kind 25). `allow_mbf` downgrades payloads exactly as in the plain
/// event path.
pub fn encode_combined_payload(entries: &[(WireEvent, u64)], allow_mbf: bool) -> Vec<u8> {
    if entries.iter().all(|(_, count)| *count == 1) {
        let mut out = Vec::with_capacity(64 * entries.len().max(1));
        let put_one = |out: &mut Vec<u8>, ev: &WireEvent| {
            if allow_mbf {
                put_wire_event(out, ev);
            } else if let Some(json_ev) = downgrade_wire_event(ev) {
                put_wire_event(out, &json_ev);
            } else {
                put_wire_event(out, ev);
            }
        };
        if let [(only, _)] = entries {
            out.push(KIND_EVENT);
            put_one(&mut out, only);
        } else {
            out.push(KIND_EVENT_BATCH);
            put_varint(&mut out, entries.len() as u64);
            for (ev, _) in entries {
                put_one(&mut out, ev);
            }
        }
        return out;
    }
    let mut out = Vec::with_capacity(64 * entries.len());
    out.push(KIND_COMBINED_BATCH);
    put_varint(&mut out, entries.len() as u64);
    for (ev, count) in entries {
        if allow_mbf {
            put_wire_event(&mut out, ev);
        } else if let Some(json_ev) = downgrade_wire_event(ev) {
            put_wire_event(&mut out, &json_ev);
        } else {
            put_wire_event(&mut out, ev);
        }
        put_varint(&mut out, *count);
    }
    out
}

impl Frame {
    /// A current-version hello, offering MBF iff `offer_mbf`.
    pub fn hello(sender: MachineId, offer_mbf: bool) -> Frame {
        Frame::Hello {
            sender,
            version: PROTOCOL_VERSION,
            codecs: if offer_mbf { CODEC_MBF } else { 0 },
        }
    }

    /// A v4 hello, byte-identical to what a pre-MBF peer sends. Dialed by
    /// JSON-pinned transports so they behave exactly like a legacy node
    /// (and never wait on a `HelloAck`, which v5 receivers only send to
    /// v5 hellos).
    pub fn hello_legacy(sender: MachineId) -> Frame {
        Frame::Hello { sender, version: 4, codecs: 0 }
    }

    /// A clone of this frame with every MBF payload transcoded to JSON
    /// text, for sending over a connection whose peer did not negotiate
    /// MBF. `None` means the frame already travels on every protocol
    /// version unchanged (the common case — no clone happens).
    pub fn json_downgraded(&self) -> Option<Frame> {
        match self {
            Frame::Event(ev) => downgrade_wire_event(ev).map(Frame::Event),
            Frame::EventBatch(events) => {
                if events.iter().all(|ev| !mbf::is_mbf(&ev.event.value)) {
                    return None;
                }
                Some(Frame::EventBatch(
                    events
                        .iter()
                        .map(|ev| downgrade_wire_event(ev).unwrap_or_else(|| ev.clone()))
                        .collect(),
                ))
            }
            Frame::CombinedBatch(entries) => {
                if entries.iter().all(|(ev, _)| !mbf::is_mbf(&ev.event.value)) {
                    return None;
                }
                Some(Frame::CombinedBatch(
                    entries
                        .iter()
                        .map(|(ev, count)| {
                            (downgrade_wire_event(ev).unwrap_or_else(|| ev.clone()), *count)
                        })
                        .collect(),
                ))
            }
            Frame::StorePut { updater, key, value, ttl_secs, now_us } => {
                let value = mbf_to_json_bytes(value)?;
                Some(Frame::StorePut {
                    updater: updater.clone(),
                    key: key.clone(),
                    value,
                    ttl_secs: *ttl_secs,
                    now_us: *now_us,
                })
            }
            Frame::StorePutBatch { items, now_us } => {
                if items.iter().all(|i| i.codec == Codec::Json) {
                    return None;
                }
                let items = items
                    .iter()
                    .map(|item| {
                        let mut out = item.clone();
                        if out.codec == Codec::Mbf {
                            if let Some(json) = mbf_to_json_bytes(&out.value) {
                                out.value = json.into();
                            }
                            // Undecodable MBF travels raw under the JSON
                            // tag; readers sniff payloads, so nothing is
                            // lost — and a JSON connection has no way to
                            // carry the tag anyway.
                            out.codec = Codec::Json;
                        }
                        out
                    })
                    .collect();
                Some(Frame::StorePutBatch { items, now_us: *now_us })
            }
            Frame::StoreValue { value: Some(value) } => {
                mbf_to_json_bytes(value).map(|v| Frame::StoreValue { value: Some(v) })
            }
            Frame::StoreValueBatch { values } => {
                if values.iter().all(|v| !matches!(v, Some((_, Codec::Mbf)))) {
                    return None;
                }
                let values = values
                    .iter()
                    .map(|value| match value {
                        Some((bytes, Codec::Mbf)) => Some((
                            mbf_to_json_bytes(bytes).unwrap_or_else(|| bytes.clone()),
                            Codec::Json,
                        )),
                        other => other.clone(),
                    })
                    .collect();
                Some(Frame::StoreValueBatch { values })
            }
            Frame::SlateValue { value: Some(value) } => {
                mbf_to_json_bytes(value).map(|v| Frame::SlateValue { value: Some(v) })
            }
            _ => None,
        }
    }

    /// Encode the payload (kind byte + fields), without the outer
    /// length/CRC header.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Frame::Hello { sender, version, codecs } => {
                out.push(KIND_HELLO);
                put_varint(&mut out, *version);
                put_varint(&mut out, *sender as u64);
                // The codecs byte exists only from v5 on; encoding a
                // legacy hello (the JSON-pinned dial path) stays
                // byte-identical to what a real v3/v4 peer sends.
                if *version >= 5 {
                    out.push(*codecs);
                }
            }
            Frame::HelloAck { codecs } => {
                out.push(KIND_HELLO_ACK);
                out.push(*codecs);
            }
            Frame::Event(ev) => {
                out.push(KIND_EVENT);
                put_wire_event(&mut out, ev);
            }
            Frame::EventBatch(events) => {
                out.push(KIND_EVENT_BATCH);
                put_varint(&mut out, events.len() as u64);
                for ev in events {
                    put_wire_event(&mut out, ev);
                }
            }
            Frame::CombinedBatch(entries) => {
                out.push(KIND_COMBINED_BATCH);
                put_varint(&mut out, entries.len() as u64);
                for (ev, count) in entries {
                    put_wire_event(&mut out, ev);
                    put_varint(&mut out, *count);
                }
            }
            Frame::FailureReport { failed, epoch } => {
                out.push(KIND_FAILURE_REPORT);
                put_varint(&mut out, *failed as u64);
                put_varint(&mut out, *epoch);
            }
            Frame::FailureBroadcast { failed, epoch } => {
                out.push(KIND_FAILURE_BROADCAST);
                put_varint(&mut out, *failed as u64);
                put_varint(&mut out, *epoch);
            }
            Frame::Join { machine } => {
                out.push(KIND_JOIN);
                put_varint(&mut out, *machine as u64);
            }
            Frame::Membership(update) => {
                out.push(KIND_MEMBERSHIP);
                put_varint(&mut out, update.epoch);
                out.push(match update.phase {
                    MembershipPhase::Prepare => 0,
                    MembershipPhase::Commit => 1,
                    MembershipPhase::Abort => 2,
                });
                put_varint(&mut out, update.joined.len() as u64);
                for &id in &update.joined {
                    put_varint(&mut out, id as u64);
                }
                put_varint(&mut out, update.members.len() as u64);
                for &id in &update.members {
                    put_varint(&mut out, id as u64);
                }
                put_varint(&mut out, update.nodes.len() as u64);
                for node in &update.nodes {
                    put_node_spec(&mut out, node);
                }
            }
            Frame::MembershipAck { epoch } => {
                out.push(KIND_MEMBERSHIP_ACK);
                put_varint(&mut out, *epoch);
            }
            Frame::MembershipNack { epoch } => {
                out.push(KIND_MEMBERSHIP_NACK);
                put_varint(&mut out, *epoch);
            }
            Frame::SlateGet { updater, key } => {
                out.push(KIND_SLATE_GET);
                put_len_prefixed(&mut out, updater.as_bytes());
                put_len_prefixed(&mut out, key);
            }
            Frame::SlateValue { value } => {
                out.push(KIND_SLATE_VALUE);
                put_opt_bytes(&mut out, value);
            }
            Frame::StorePut { updater, key, value, ttl_secs, now_us } => {
                out.push(KIND_STORE_PUT);
                put_len_prefixed(&mut out, updater.as_bytes());
                put_len_prefixed(&mut out, key);
                put_len_prefixed(&mut out, value);
                put_opt_varint(&mut out, *ttl_secs);
                put_varint(&mut out, *now_us);
            }
            Frame::StoreGet { updater, key, now_us } => {
                out.push(KIND_STORE_GET);
                put_len_prefixed(&mut out, updater.as_bytes());
                put_len_prefixed(&mut out, key);
                put_varint(&mut out, *now_us);
            }
            Frame::StoreValue { value } => {
                out.push(KIND_STORE_VALUE);
                put_opt_bytes(&mut out, value);
            }
            Frame::StoreAck => out.push(KIND_STORE_ACK),
            Frame::StorePutBatch { items, now_us } => {
                // All-JSON batches keep the v3 encoding byte-for-byte;
                // only a batch that actually carries MBF needs the tagged
                // kind (which a JSON-pinned connection never sends — the
                // sender downgrades first).
                let tagged = items.iter().any(|i| i.codec != Codec::Json);
                out.push(if tagged { KIND_STORE_PUT_BATCH_TAGGED } else { KIND_STORE_PUT_BATCH });
                put_varint(&mut out, items.len() as u64);
                for item in items {
                    put_len_prefixed(&mut out, item.updater.as_bytes());
                    put_len_prefixed(&mut out, &item.key);
                    put_len_prefixed(&mut out, &item.value);
                    put_opt_varint(&mut out, item.ttl_secs);
                    if tagged {
                        out.push(codec_byte(item.codec));
                    }
                }
                put_varint(&mut out, *now_us);
            }
            Frame::StoreAckBatch { ok } => {
                out.push(KIND_STORE_ACK_BATCH);
                put_varint(&mut out, ok.len() as u64);
                for &b in ok {
                    out.push(u8::from(b));
                }
            }
            Frame::StoreGetBatch { items, now_us } => {
                out.push(KIND_STORE_GET_BATCH);
                put_varint(&mut out, items.len() as u64);
                for item in items {
                    put_len_prefixed(&mut out, item.updater.as_bytes());
                    put_len_prefixed(&mut out, &item.key);
                }
                put_varint(&mut out, *now_us);
            }
            Frame::StoreValueBatch { values } => {
                let tagged = values.iter().any(|v| matches!(v, Some((_, Codec::Mbf))));
                out.push(if tagged {
                    KIND_STORE_VALUE_BATCH_TAGGED
                } else {
                    KIND_STORE_VALUE_BATCH
                });
                put_varint(&mut out, values.len() as u64);
                for value in values {
                    match value {
                        Some((bytes, codec)) => {
                            out.push(1);
                            if tagged {
                                out.push(codec_byte(*codec));
                            }
                            put_len_prefixed(&mut out, bytes);
                        }
                        None => out.push(0),
                    }
                }
            }
            Frame::Reintroduce { machine } => {
                out.push(KIND_REINTRODUCE);
                put_varint(&mut out, *machine as u64);
            }
            Frame::ReintroduceAck { epoch } => {
                out.push(KIND_REINTRODUCE_ACK);
                put_varint(&mut out, *epoch);
            }
        }
        out
    }

    /// Decode a payload produced by [`Frame::encode_payload`]. `None` on
    /// malformed input.
    pub fn decode_payload(buf: &[u8]) -> Option<Frame> {
        let kind = *buf.first()?;
        let rest = &buf[1..];
        let frame = match kind {
            KIND_HELLO => {
                let (version, n) = get_varint(rest)?;
                if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                    return None;
                }
                let (sender, m) = get_varint(&rest[n..])?;
                let mut at = n + m;
                let codecs = if version >= 5 {
                    let c = *rest.get(at)?;
                    at += 1;
                    c
                } else {
                    0
                };
                expect_consumed(rest, at)?;
                Frame::Hello { sender: sender as MachineId, version, codecs }
            }
            KIND_HELLO_ACK => {
                let codecs = *rest.first()?;
                expect_consumed(rest, 1)?;
                Frame::HelloAck { codecs }
            }
            KIND_EVENT => {
                let (ev, n) = get_wire_event(rest)?;
                expect_consumed(rest, n)?;
                Frame::Event(ev)
            }
            KIND_EVENT_BATCH => {
                let (count, mut at) = get_varint(rest)?;
                // Cap the pre-allocation by what the buffer could possibly
                // hold: a corrupt count must not trigger a huge reserve.
                let possible = rest.len() / MIN_WIRE_EVENT_BYTES + 1;
                let mut events = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    let (ev, n) = get_wire_event(&rest[at..])?;
                    at += n;
                    events.push(ev);
                }
                expect_consumed(rest, at)?;
                Frame::EventBatch(events)
            }
            KIND_COMBINED_BATCH => {
                let (count, mut at) = get_varint(rest)?;
                let possible = rest.len() / (MIN_WIRE_EVENT_BYTES + 1) + 1;
                let mut entries = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    let (ev, n) = get_wire_event(&rest[at..])?;
                    at += n;
                    let (absorbed, n) = get_varint(&rest[at..])?;
                    at += n;
                    // A combined entry absorbs at least itself.
                    if absorbed == 0 {
                        return None;
                    }
                    entries.push((ev, absorbed));
                }
                expect_consumed(rest, at)?;
                Frame::CombinedBatch(entries)
            }
            KIND_FAILURE_REPORT => {
                let (failed, n) = get_varint(rest)?;
                let (epoch, m) = get_varint(&rest[n..])?;
                expect_consumed(rest, n + m)?;
                Frame::FailureReport { failed: failed as MachineId, epoch }
            }
            KIND_FAILURE_BROADCAST => {
                let (failed, n) = get_varint(rest)?;
                let (epoch, m) = get_varint(&rest[n..])?;
                expect_consumed(rest, n + m)?;
                Frame::FailureBroadcast { failed: failed as MachineId, epoch }
            }
            KIND_JOIN => {
                let (machine, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::Join { machine: machine as MachineId }
            }
            KIND_MEMBERSHIP => {
                let mut at = 0;
                let (epoch, n) = get_varint(rest)?;
                at += n;
                let phase = match *rest.get(at)? {
                    0 => MembershipPhase::Prepare,
                    1 => MembershipPhase::Commit,
                    2 => MembershipPhase::Abort,
                    _ => return None,
                };
                at += 1;
                let (joined_count, n) = get_varint(&rest[at..])?;
                at += n;
                // Cap pre-allocations by what the buffer could hold (one
                // byte per varint at minimum) — a corrupt count must not
                // trigger a huge reserve.
                let possible = rest.len() + 1;
                let mut joined = Vec::with_capacity((joined_count as usize).min(possible));
                for _ in 0..joined_count {
                    let (id, n) = get_varint(&rest[at..])?;
                    at += n;
                    joined.push(id as MachineId);
                }
                let (member_count, n) = get_varint(&rest[at..])?;
                at += n;
                let mut members = Vec::with_capacity((member_count as usize).min(possible));
                for _ in 0..member_count {
                    let (id, n) = get_varint(&rest[at..])?;
                    at += n;
                    members.push(id as MachineId);
                }
                let (node_count, n) = get_varint(&rest[at..])?;
                at += n;
                let possible = rest.len() / 4 + 1;
                let mut nodes = Vec::with_capacity((node_count as usize).min(possible));
                for _ in 0..node_count {
                    let (node, n) = get_node_spec(&rest[at..])?;
                    at += n;
                    nodes.push(node);
                }
                expect_consumed(rest, at)?;
                Frame::Membership(MembershipUpdate { epoch, phase, joined, members, nodes })
            }
            KIND_MEMBERSHIP_ACK => {
                let (epoch, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::MembershipAck { epoch }
            }
            KIND_MEMBERSHIP_NACK => {
                let (epoch, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::MembershipNack { epoch }
            }
            KIND_SLATE_GET => {
                let (updater, n) = get_len_prefixed(rest)?;
                let (key, m) = get_len_prefixed(&rest[n..])?;
                expect_consumed(rest, n + m)?;
                Frame::SlateGet {
                    updater: std::str::from_utf8(updater).ok()?.to_string(),
                    key: key.to_vec(),
                }
            }
            KIND_SLATE_VALUE => {
                let (value, n) = get_opt_bytes(rest)?;
                expect_consumed(rest, n)?;
                Frame::SlateValue { value }
            }
            KIND_STORE_PUT => {
                let mut at = 0;
                let (updater, n) = get_len_prefixed(rest)?;
                let updater = std::str::from_utf8(updater).ok()?.to_string();
                at += n;
                let (key, n) = get_len_prefixed(&rest[at..])?;
                let key = key.to_vec();
                at += n;
                let (value, n) = get_len_prefixed(&rest[at..])?;
                let value = value.to_vec();
                at += n;
                let (ttl_secs, n) = get_opt_varint(&rest[at..])?;
                at += n;
                let (now_us, n) = get_varint(&rest[at..])?;
                at += n;
                expect_consumed(rest, at)?;
                Frame::StorePut { updater, key, value, ttl_secs, now_us }
            }
            KIND_STORE_GET => {
                let mut at = 0;
                let (updater, n) = get_len_prefixed(rest)?;
                let updater = std::str::from_utf8(updater).ok()?.to_string();
                at += n;
                let (key, n) = get_len_prefixed(&rest[at..])?;
                let key = key.to_vec();
                at += n;
                let (now_us, n) = get_varint(&rest[at..])?;
                at += n;
                expect_consumed(rest, at)?;
                Frame::StoreGet { updater, key, now_us }
            }
            KIND_STORE_VALUE => {
                let (value, n) = get_opt_bytes(rest)?;
                expect_consumed(rest, n)?;
                Frame::StoreValue { value }
            }
            KIND_STORE_ACK => {
                expect_consumed(rest, 0)?;
                Frame::StoreAck
            }
            KIND_STORE_PUT_BATCH | KIND_STORE_PUT_BATCH_TAGGED => {
                let tagged = kind == KIND_STORE_PUT_BATCH_TAGGED;
                let (count, mut at) = get_varint(rest)?;
                // Cap the pre-allocation by what the buffer could possibly
                // hold (≥4 bytes per item: three length prefixes + the ttl
                // tag) — a corrupt count must not trigger a huge reserve.
                let possible = rest.len() / 4 + 1;
                let mut items = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    let (updater, n) = get_len_prefixed(&rest[at..])?;
                    let updater = std::str::from_utf8(updater).ok()?.to_string();
                    at += n;
                    let (key, n) = get_len_prefixed(&rest[at..])?;
                    let key = key.to_vec();
                    at += n;
                    let (value, n) = get_len_prefixed(&rest[at..])?;
                    let value = Bytes::copy_from_slice(value);
                    at += n;
                    let (ttl_secs, n) = get_opt_varint(&rest[at..])?;
                    at += n;
                    let codec = if tagged {
                        let c = codec_from_byte(*rest.get(at)?)?;
                        at += 1;
                        c
                    } else {
                        Codec::Json
                    };
                    items.push(StorePutItem { updater, key, value, ttl_secs, codec });
                }
                let (now_us, n) = get_varint(&rest[at..])?;
                at += n;
                expect_consumed(rest, at)?;
                Frame::StorePutBatch { items, now_us }
            }
            KIND_STORE_ACK_BATCH => {
                let (count, mut at) = get_varint(rest)?;
                let possible = rest.len() + 1;
                let mut ok = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    match *rest.get(at)? {
                        0 => ok.push(false),
                        1 => ok.push(true),
                        _ => return None,
                    }
                    at += 1;
                }
                expect_consumed(rest, at)?;
                Frame::StoreAckBatch { ok }
            }
            KIND_STORE_GET_BATCH => {
                let (count, mut at) = get_varint(rest)?;
                let possible = rest.len() / 2 + 1;
                let mut items = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    let (updater, n) = get_len_prefixed(&rest[at..])?;
                    let updater = std::str::from_utf8(updater).ok()?.to_string();
                    at += n;
                    let (key, n) = get_len_prefixed(&rest[at..])?;
                    let key = key.to_vec();
                    at += n;
                    items.push(StoreGetItem { updater, key });
                }
                let (now_us, n) = get_varint(&rest[at..])?;
                at += n;
                expect_consumed(rest, at)?;
                Frame::StoreGetBatch { items, now_us }
            }
            KIND_STORE_VALUE_BATCH | KIND_STORE_VALUE_BATCH_TAGGED => {
                let tagged = kind == KIND_STORE_VALUE_BATCH_TAGGED;
                let (count, mut at) = get_varint(rest)?;
                let possible = rest.len() + 1;
                let mut values = Vec::with_capacity((count as usize).min(possible));
                for _ in 0..count {
                    match *rest.get(at)? {
                        0 => {
                            at += 1;
                            values.push(None);
                        }
                        1 => {
                            at += 1;
                            let codec = if tagged {
                                let c = codec_from_byte(*rest.get(at)?)?;
                                at += 1;
                                c
                            } else {
                                Codec::Json
                            };
                            let (bytes, n) = get_len_prefixed(&rest[at..])?;
                            at += n;
                            values.push(Some((bytes.to_vec(), codec)));
                        }
                        _ => return None,
                    }
                }
                expect_consumed(rest, at)?;
                Frame::StoreValueBatch { values }
            }
            KIND_REINTRODUCE => {
                let (machine, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::Reintroduce { machine: machine as usize }
            }
            KIND_REINTRODUCE_ACK => {
                let (epoch, n) = get_varint(rest)?;
                expect_consumed(rest, n)?;
                Frame::ReintroduceAck { epoch }
            }
            _ => return None,
        };
        Some(frame)
    }

    /// Write one complete frame (header + payload) to `w`. Errors with
    /// `InvalidData` on payloads over [`MAX_FRAME_BYTES`] — receivers
    /// would reject (and kill the connection over) anything larger, so
    /// surfacing it at the sender keeps the failure deterministic instead
    /// of looking like a dead peer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write_payload(w, &self.encode_payload())
    }

    /// Read one complete frame from `r`. Errors with `InvalidData` on
    /// oversized lengths, CRC mismatches, or undecodable payloads.
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)?;
        // lint: allow(no-unwrap-in-prod) — 8-byte header array, offsets statically in bounds
        let len = codec::get_u32(&head, 0).expect("fixed header") as usize;
        // lint: allow(no-unwrap-in-prod) — 8-byte header array, offsets statically in bounds
        let crc = codec::get_u32(&head, 4).expect("fixed header");
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds limit"),
            ));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        if codec::crc32c(&payload) != crc {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame CRC mismatch"));
        }
        Frame::decode_payload(&payload)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "undecodable frame payload"))
    }
}

/// Write an already-encoded payload with the frame header. Shared by
/// [`Frame::write_to`] and callers that pre-encode (e.g. to size-check
/// before touching the socket).
pub fn write_payload(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit", payload.len()),
        ));
    }
    let mut head = Vec::with_capacity(8 + payload.len());
    codec::put_u32(&mut head, payload.len() as u32);
    codec::put_u32(&mut head, codec::crc32c(payload));
    head.extend_from_slice(payload);
    w.write_all(&head)
}

fn expect_consumed(buf: &[u8], consumed: usize) -> Option<()> {
    if consumed == buf.len() {
        Some(())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::event::Key;

    fn sample_wire_event(seq: u64) -> WireEvent {
        let mut event = Event::new("S1", 99, Key::from("walmart"), b"checkin".to_vec());
        event.seq = seq;
        WireEvent {
            op: 4,
            event,
            injected_us: 123,
            redirected: true,
            external: false,
            thread_hint: Some(7),
            forwards: 3,
        }
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { sender: 2, version: PROTOCOL_VERSION, codecs: CODEC_MBF },
            Frame::Hello { sender: 2, version: PROTOCOL_VERSION, codecs: 0 },
            Frame::Hello { sender: 7, version: 4, codecs: 0 },
            Frame::Hello { sender: 0, version: 3, codecs: 0 },
            Frame::HelloAck { codecs: CODEC_MBF },
            Frame::HelloAck { codecs: 0 },
            Frame::Event(sample_wire_event(3)),
            Frame::EventBatch(Vec::new()),
            Frame::EventBatch(vec![
                sample_wire_event(1),
                sample_wire_event(2),
                WireEvent {
                    op: 0,
                    event: Event::new("S2", 7, Key::from(""), Vec::new()),
                    injected_us: 0,
                    redirected: false,
                    external: true,
                    thread_hint: None,
                    forwards: 0,
                },
            ]),
            Frame::CombinedBatch(Vec::new()),
            Frame::CombinedBatch(vec![
                (sample_wire_event(1), 1),
                (sample_wire_event(2), 10_000),
                (
                    WireEvent {
                        op: 0,
                        event: Event::new("S2", 7, Key::from(""), Vec::new()),
                        injected_us: 0,
                        redirected: false,
                        external: true,
                        thread_hint: None,
                        forwards: 0,
                    },
                    3,
                ),
            ]),
            Frame::FailureReport { failed: 1, epoch: 4 },
            Frame::FailureBroadcast { failed: 0, epoch: 0 },
            Frame::Join { machine: 3 },
            Frame::Membership(MembershipUpdate {
                epoch: 2,
                phase: MembershipPhase::Prepare,
                joined: vec![3],
                members: vec![0, 1, 2, 3],
                nodes: vec![
                    NodeSpec { id: 0, host: "127.0.0.1".into(), port: 9100, http_port: 8100 },
                    NodeSpec { id: 3, host: "10.0.0.7".into(), port: 9103, http_port: 0 },
                ],
            }),
            Frame::Membership(MembershipUpdate {
                epoch: 5,
                phase: MembershipPhase::Commit,
                joined: Vec::new(),
                members: Vec::new(),
                nodes: Vec::new(),
            }),
            Frame::Membership(MembershipUpdate {
                epoch: 6,
                phase: MembershipPhase::Abort,
                joined: vec![4],
                members: Vec::new(),
                nodes: Vec::new(),
            }),
            Frame::MembershipAck { epoch: 2 },
            Frame::MembershipNack { epoch: 9 },
            Frame::SlateGet { updater: "counter".into(), key: b"best-buy".to_vec() },
            Frame::SlateValue { value: Some(b"42".to_vec()) },
            Frame::SlateValue { value: None },
            Frame::StorePut {
                updater: "counter".into(),
                key: b"k".to_vec(),
                value: vec![0, 1, 2],
                ttl_secs: Some(60),
                now_us: 1_000,
            },
            Frame::StoreGet { updater: "counter".into(), key: b"k".to_vec(), now_us: 5 },
            Frame::StoreValue { value: Some(vec![9]) },
            Frame::StoreAck,
            Frame::StorePutBatch { items: Vec::new(), now_us: 0 },
            Frame::StorePutBatch {
                items: vec![
                    StorePutItem {
                        updater: "counter".into(),
                        key: b"walmart".to_vec(),
                        value: Bytes::from_static(b"42"),
                        ttl_secs: Some(60),
                        codec: Codec::Json,
                    },
                    StorePutItem {
                        updater: "topics".into(),
                        key: Vec::new(),
                        value: Bytes::new(),
                        ttl_secs: None,
                        codec: Codec::Json,
                    },
                ],
                now_us: 9_000,
            },
            Frame::StorePutBatch {
                items: vec![
                    StorePutItem {
                        updater: "counter".into(),
                        key: b"mixed".to_vec(),
                        value: Bytes::from_static(b"\xb1\x03\x2a"),
                        ttl_secs: None,
                        codec: Codec::Mbf,
                    },
                    StorePutItem {
                        updater: "counter".into(),
                        key: b"text".to_vec(),
                        value: Bytes::from_static(b"42"),
                        ttl_secs: Some(9),
                        codec: Codec::Json,
                    },
                ],
                now_us: 9_001,
            },
            Frame::StoreAckBatch { ok: vec![true, false, true] },
            Frame::StoreAckBatch { ok: Vec::new() },
            Frame::StoreGetBatch {
                items: vec![
                    StoreGetItem { updater: "counter".into(), key: b"a".to_vec() },
                    StoreGetItem { updater: "counter".into(), key: b"b".to_vec() },
                ],
                now_us: 77,
            },
            Frame::StoreValueBatch { values: vec![Some((vec![1, 2], Codec::Json)), None] },
            Frame::StoreValueBatch {
                values: vec![
                    Some((b"\xb1\x03\x2a".to_vec(), Codec::Mbf)),
                    None,
                    Some((b"42".to_vec(), Codec::Json)),
                ],
            },
            Frame::Reintroduce { machine: 3 },
            Frame::ReintroduceAck { epoch: 9 },
        ]
    }

    #[test]
    fn payload_roundtrip_every_kind() {
        for frame in sample_frames() {
            let payload = frame.encode_payload();
            assert_eq!(Frame::decode_payload(&payload), Some(frame.clone()), "{frame:?}");
        }
    }

    #[test]
    fn stream_roundtrip_through_io() {
        let mut buf = Vec::new();
        for frame in sample_frames() {
            frame.write_to(&mut buf).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for frame in sample_frames() {
            assert_eq!(Frame::read_from(&mut cursor).unwrap(), frame);
        }
    }

    #[test]
    fn forwards_roundtrip_and_saturate_on_the_wire() {
        let mut ev = sample_wire_event(1);
        ev.forwards = MAX_FORWARDS + 5; // encodes saturated, not wrapped
        let payload = Frame::Event(ev).encode_payload();
        match Frame::decode_payload(&payload) {
            Some(Frame::Event(back)) => assert_eq!(back.forwards, MAX_FORWARDS),
            other => panic!("expected an Event frame, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        Frame::FailureReport { failed: 3, epoch: 1 }.write_to(&mut buf).unwrap();
        // Flip a payload bit: CRC must catch it.
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = Frame::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, (MAX_FRAME_BYTES + 1) as u32);
        codec::put_u32(&mut buf, 0);
        assert!(Frame::read_from(&mut std::io::Cursor::new(buf)).is_err());

        let mut ok = Vec::new();
        Frame::StoreAck.write_to(&mut ok).unwrap();
        ok.truncate(ok.len() - 1);
        assert!(Frame::read_from(&mut std::io::Cursor::new(ok)).is_err());
    }

    #[test]
    fn trailing_garbage_in_payload_rejected() {
        let mut payload = Frame::StoreAck.encode_payload();
        payload.push(0xde);
        assert_eq!(Frame::decode_payload(&payload), None);
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(Frame::decode_payload(&[200]), None);
        assert_eq!(Frame::decode_payload(&[]), None);
    }

    #[test]
    fn encode_events_payload_matches_frame_encoding() {
        let one = [sample_wire_event(5)];
        assert_eq!(
            encode_events_payload(&one, true),
            Frame::Event(one[0].clone()).encode_payload(),
            "a single event must be byte-identical to the unbatched wire"
        );
        let many = vec![sample_wire_event(1), sample_wire_event(2)];
        assert_eq!(
            encode_events_payload(&many, true),
            Frame::EventBatch(many.clone()).encode_payload()
        );
        // JSON-only events are unaffected by the downgrade flag.
        assert_eq!(
            encode_events_payload(&many, false),
            Frame::EventBatch(many.clone()).encode_payload()
        );
    }

    fn mbf_event(seq: u64) -> WireEvent {
        let doc = Json::parse(r#"{"loc":"walmart","n":42}"#).unwrap();
        let mut ev = sample_wire_event(seq);
        ev.event.value = doc.to_mbf().unwrap().into();
        ev
    }

    #[test]
    fn combined_payload_degenerates_to_plain_event_wire() {
        // All counts 1 → byte-identical to the uncombined encodings, so a
        // cluster with no declared combiners never emits kind 25.
        let one = [(sample_wire_event(5), 1)];
        assert_eq!(
            encode_combined_payload(&one, true),
            encode_events_payload(&[one[0].0.clone()], true)
        );
        let many = vec![(sample_wire_event(1), 1), (sample_wire_event(2), 1)];
        let plain: Vec<WireEvent> = many.iter().map(|(ev, _)| ev.clone()).collect();
        assert_eq!(encode_combined_payload(&many, true), encode_events_payload(&plain, true));
        assert_eq!(encode_combined_payload(&many, false), encode_events_payload(&plain, false));
    }

    #[test]
    fn combined_payload_roundtrips_counts() {
        let entries = vec![(sample_wire_event(1), 250), (sample_wire_event(2), 1)];
        let payload = encode_combined_payload(&entries, true);
        assert_eq!(payload[0], KIND_COMBINED_BATCH);
        assert_eq!(Frame::decode_payload(&payload), Some(Frame::CombinedBatch(entries.clone())));
        assert_eq!(payload, Frame::CombinedBatch(entries).encode_payload());
    }

    #[test]
    fn combined_payload_transcodes_mbf_values_for_json_peers() {
        let entries = vec![(mbf_event(1), 7), (sample_wire_event(2), 2)];
        let payload = encode_combined_payload(&entries, false);
        match Frame::decode_payload(&payload) {
            Some(Frame::CombinedBatch(back)) => {
                assert_eq!(
                    std::str::from_utf8(&back[0].0.event.value).unwrap(),
                    r#"{"loc":"walmart","n":42}"#
                );
                assert_eq!(back[0].1, 7, "absorbed count survives the downgrade");
                assert_eq!(back[1], entries[1]);
            }
            other => panic!("expected CombinedBatch, got {other:?}"),
        }
        // json_downgraded covers the frame too.
        let frame = Frame::CombinedBatch(entries.clone());
        let down = frame.json_downgraded().expect("carries MBF");
        assert_eq!(down.encode_payload(), payload);
        let all_json = Frame::CombinedBatch(vec![(sample_wire_event(3), 4)]);
        assert!(all_json.json_downgraded().is_none());
    }

    #[test]
    fn combined_zero_count_rejected() {
        let mut payload = vec![KIND_COMBINED_BATCH];
        put_varint(&mut payload, 1);
        put_wire_event(&mut payload, &sample_wire_event(1));
        put_varint(&mut payload, 0);
        assert_eq!(Frame::decode_payload(&payload), None);
    }

    #[test]
    fn events_payload_transcodes_mbf_values_for_json_peers() {
        let events = vec![mbf_event(1), sample_wire_event(2)];
        let payload = encode_events_payload(&events, false);
        match Frame::decode_payload(&payload) {
            Some(Frame::EventBatch(back)) => {
                assert_eq!(
                    std::str::from_utf8(&back[0].event.value).unwrap(),
                    r#"{"loc":"walmart","n":42}"#,
                    "MBF value must arrive as canonical JSON text"
                );
                assert_eq!(back[1], events[1], "JSON values pass through untouched");
            }
            other => panic!("expected EventBatch, got {other:?}"),
        }
        // With MBF allowed the value travels verbatim.
        let payload = encode_events_payload(&events, true);
        match Frame::decode_payload(&payload) {
            Some(Frame::EventBatch(back)) => assert_eq!(back, events),
            other => panic!("expected EventBatch, got {other:?}"),
        }
    }

    #[test]
    fn legacy_hello_is_byte_identical_to_v4_wire() {
        // Hand-rolled v4 hello payload: kind, version varint, sender
        // varint — no codecs byte.
        let mut expected = vec![KIND_HELLO];
        put_varint(&mut expected, 4);
        put_varint(&mut expected, 2);
        assert_eq!(Frame::hello_legacy(2).encode_payload(), expected);
        assert_eq!(
            Frame::decode_payload(&expected),
            Some(Frame::Hello { sender: 2, version: 4, codecs: 0 })
        );
    }

    #[test]
    fn hello_version_bounds_are_enforced() {
        for version in [0u64, 1, 2, PROTOCOL_VERSION + 1] {
            let mut payload = vec![KIND_HELLO];
            put_varint(&mut payload, version);
            put_varint(&mut payload, 1);
            if version >= 5 {
                payload.push(CODEC_MBF);
            }
            assert_eq!(Frame::decode_payload(&payload), None, "version {version}");
        }
    }

    #[test]
    fn all_json_batches_keep_the_legacy_kinds() {
        let put = Frame::StorePutBatch {
            items: vec![StorePutItem {
                updater: "c".into(),
                key: b"k".to_vec(),
                value: Bytes::from_static(b"42"),
                ttl_secs: None,
                codec: Codec::Json,
            }],
            now_us: 1,
        };
        assert_eq!(put.encode_payload()[0], KIND_STORE_PUT_BATCH);
        let mixed = Frame::StorePutBatch {
            items: vec![StorePutItem {
                updater: "c".into(),
                key: b"k".to_vec(),
                value: Bytes::from_static(b"\xb1\x03\x2a"),
                ttl_secs: None,
                codec: Codec::Mbf,
            }],
            now_us: 1,
        };
        assert_eq!(mixed.encode_payload()[0], KIND_STORE_PUT_BATCH_TAGGED);

        let vals = Frame::StoreValueBatch { values: vec![Some((b"42".to_vec(), Codec::Json))] };
        assert_eq!(vals.encode_payload()[0], KIND_STORE_VALUE_BATCH);
        let tagged =
            Frame::StoreValueBatch { values: vec![Some((b"\xb1\x00".to_vec(), Codec::Mbf))] };
        assert_eq!(tagged.encode_payload()[0], KIND_STORE_VALUE_BATCH_TAGGED);
    }

    #[test]
    fn json_downgrade_covers_store_frames() {
        let doc = Json::parse(r#"[1,2,3]"#).unwrap();
        let raw = doc.to_mbf().unwrap();
        let batch = Frame::StorePutBatch {
            items: vec![StorePutItem {
                updater: "c".into(),
                key: b"k".to_vec(),
                value: raw.clone().into(),
                ttl_secs: Some(3),
                codec: Codec::Mbf,
            }],
            now_us: 7,
        };
        match batch.json_downgraded() {
            Some(Frame::StorePutBatch { items, now_us: 7 }) => {
                assert_eq!(items[0].codec, Codec::Json);
                assert_eq!(&items[0].value[..], b"[1,2,3]");
                assert_eq!(items[0].ttl_secs, Some(3));
            }
            other => panic!("unexpected downgrade: {other:?}"),
        }
        let values =
            Frame::StoreValueBatch { values: vec![Some((raw.to_vec(), Codec::Mbf)), None] };
        match values.json_downgraded() {
            Some(Frame::StoreValueBatch { values }) => {
                assert_eq!(values[0], Some((b"[1,2,3]".to_vec(), Codec::Json)));
                assert_eq!(values[1], None);
            }
            other => panic!("unexpected downgrade: {other:?}"),
        }
        // JSON-only frames need no clone at all.
        let json_put = Frame::StorePut {
            updater: "c".into(),
            key: b"k".to_vec(),
            value: b"42".to_vec(),
            ttl_secs: None,
            now_us: 1,
        };
        assert_eq!(json_put.json_downgraded(), None);
        assert_eq!(Frame::StoreAck.json_downgraded(), None);
        // Sniffed single-put downgrade (the untagged frame).
        let mbf_put = Frame::StorePut {
            updater: "c".into(),
            key: b"k".to_vec(),
            value: raw.to_vec(),
            ttl_secs: None,
            now_us: 1,
        };
        match mbf_put.json_downgraded() {
            Some(Frame::StorePut { value, .. }) => assert_eq!(value, b"[1,2,3]".to_vec()),
            other => panic!("unexpected downgrade: {other:?}"),
        }
    }

    #[test]
    fn corrupt_batch_count_is_rejected_without_huge_allocation() {
        // A batch claiming u64::MAX events with a near-empty body must
        // fail cleanly (the per-event decode runs out of bytes) and the
        // pre-allocation is capped by the buffer length.
        let mut payload = vec![KIND_EVENT_BATCH];
        put_varint(&mut payload, u64::MAX);
        assert_eq!(Frame::decode_payload(&payload), None);
    }
}
