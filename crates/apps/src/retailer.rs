//! Counting Foursquare checkins per retailer — Example 1 / Example 4 /
//! Figure 1(b), with the operator code of Figures 3 and 4 ported from Java.
//!
//! Workflow: `S1 (checkins) → M1 RetailerMapper → S2 → U1 Counter`.
//! The output of the application is the set of slates maintained by U1.

use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, Mapper, Updater};
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;

/// The stream names used by this app.
pub const CHECKIN_STREAM: &str = "S1";
/// Internal stream from mapper to counter.
pub const RETAILER_STREAM: &str = "S2";
/// The mapper's name.
pub const MAPPER: &str = "retailer-mapper";
/// The updater's name.
pub const COUNTER: &str = "retailer-counter";

/// Figure 1(b): S1 → M1 → S2 → U1.
pub fn workflow() -> Workflow {
    let mut b = Workflow::builder("retailer-count");
    b.external_stream(CHECKIN_STREAM);
    b.mapper_publishing(MAPPER, &[CHECKIN_STREAM], &[RETAILER_STREAM]);
    b.updater(COUNTER, &[RETAILER_STREAM]);
    b.build().expect("static workflow is valid")
}

/// Case-insensitive "does `hay` contain `needle`" without allocating.
fn contains_ci(hay: &str, needle: &str) -> bool {
    if needle.is_empty() || hay.len() < needle.len() {
        return needle.is_empty();
    }
    let hay = hay.as_bytes();
    let needle = needle.as_bytes();
    hay.windows(needle.len()).any(|w| w.eq_ignore_ascii_case(needle))
}

/// The pattern matching of Figure 3 (`(?i)\s*wal.*mart.*` etc.), extended
/// to all retailers the workloads generate. Returns the canonical retailer
/// name for a venue, if any.
pub fn match_retailer(venue: &str) -> Option<&'static str> {
    // Figure 3: "(?i)\\s*wal.*mart.*"
    if let Some(wal) = find_ci(venue, "wal") {
        if contains_ci(&venue[wal..], "mart") {
            return Some("Walmart");
        }
    }
    // Figure 3: "(?i)\\s*sam.*s\\s*club\\s*"
    if contains_ci(venue, "sam") && contains_ci(venue, "club") {
        return Some("Sam's Club");
    }
    if let Some(best) = find_ci(venue, "best") {
        if contains_ci(&venue[best..], "buy") {
            return Some("Best Buy");
        }
    }
    if contains_ci(venue, "target") {
        return Some("Target");
    }
    if contains_ci(venue, "penney") {
        return Some("JCPenney");
    }
    None
}

fn find_ci(hay: &str, needle: &str) -> Option<usize> {
    let h = hay.as_bytes();
    let n = needle.as_bytes();
    if n.len() > h.len() {
        return None;
    }
    (0..=h.len() - n.len()).find(|&i| h[i..i + n.len()].eq_ignore_ascii_case(n))
}

/// The Figure 3 mapper: inspect each checkin; if it happened at a
/// recognized retailer, emit the checkin to [`RETAILER_STREAM`] keyed by
/// the retailer.
pub struct RetailerMapper {
    name: String,
}

impl RetailerMapper {
    /// A mapper under the default name.
    pub fn new() -> Self {
        RetailerMapper { name: MAPPER.to_string() }
    }

    /// A mapper registered under a custom function name (the same code can
    /// serve as different functions, Appendix A).
    pub fn named(name: impl Into<String>) -> Self {
        RetailerMapper { name: name.into() }
    }

    /// Extract the venue name from a checkin payload (the `getVenue` of
    /// Figure 3, here a real JSON parse).
    pub fn venue_of(event: &Event) -> Option<String> {
        let v = Json::from_payload(&event.value).ok()?;
        Some(v.get("venue")?.get("name")?.as_str()?.to_string())
    }
}

impl Default for RetailerMapper {
    fn default() -> Self {
        Self::new()
    }
}

impl Mapper for RetailerMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, ctx: &mut dyn Emitter, event: &Event) {
        let Some(venue) = Self::venue_of(event) else { return };
        if let Some(retailer) = match_retailer(&venue) {
            // Figure 3: submitter.publish("S_2", retailer, event).
            ctx.publish(RETAILER_STREAM, Key::from(retailer), event.value.to_vec());
        }
    }
}

/// The Figure 4 counter updater: slate is a decimal string; parse-or-zero,
/// increment, replace.
pub struct Counter {
    name: String,
}

impl Counter {
    /// A counter under the default name.
    pub fn new() -> Self {
        Counter { name: COUNTER.to_string() }
    }

    /// A counter registered under a custom function name.
    pub fn named(name: impl Into<String>) -> Self {
        Counter { name: name.into() }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Updater for Counter {
    fn name(&self) -> &str {
        &self.name
    }

    fn update(&self, _ctx: &mut dyn Emitter, _event: &Event, slate: &mut Slate) {
        // Figure 4 verbatim: parse (0 on NumberFormatException), ++count,
        // replaceSlate.
        slate.incr_counter(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muppet_core::reference::ReferenceExecutor;
    use muppet_workloads::checkins::{canonical_retailer, CheckinGenerator};

    #[test]
    fn pattern_matching_agrees_with_ground_truth_vocabulary() {
        // The mapper's Figure-3-style matching must agree with the
        // generator's canonical mapping on every venue it can emit.
        let gen = CheckinGenerator::new(1, 10, 100.0);
        for venue in gen.venues() {
            assert_eq!(
                match_retailer(venue),
                canonical_retailer(venue),
                "disagreement on venue {venue:?}"
            );
        }
    }

    #[test]
    fn figure_3_patterns() {
        assert_eq!(match_retailer("Wal-Mart #1234"), Some("Walmart"));
        assert_eq!(match_retailer("WALMART"), Some("Walmart"));
        assert_eq!(match_retailer("walmart neighborhood market"), Some("Walmart"));
        assert_eq!(match_retailer("sams club gas"), Some("Sam's Club"));
        assert_eq!(match_retailer("SAM'S CLUB #55"), Some("Sam's Club"));
        assert_eq!(match_retailer("martwal"), None, "wal must precede mart");
        assert_eq!(match_retailer("Joe's Coffee"), None);
        assert_eq!(match_retailer(""), None);
    }

    #[test]
    fn end_to_end_counts_match_ground_truth() {
        let wf = workflow();
        let mut exec = ReferenceExecutor::new(&wf);
        exec.register_mapper(RetailerMapper::new());
        exec.register_updater(Counter::new());
        let mut gen = CheckinGenerator::new(42, 200, 1000.0);
        let events = gen.take(CHECKIN_STREAM, 3000);
        let expected = CheckinGenerator::expected_retailer_counts(&events);
        for ev in events {
            exec.push_external(CHECKIN_STREAM, ev);
        }
        exec.run_to_completion().unwrap();
        for (retailer, count) in &expected {
            let slate = exec.slate(COUNTER, &Key::from(retailer.as_str())).unwrap();
            assert_eq!(slate.counter(), *count, "retailer {retailer}");
        }
        // No spurious retailers.
        assert_eq!(exec.slates_of(COUNTER).len(), expected.len());
    }

    #[test]
    fn non_retail_checkins_emit_nothing() {
        use muppet_core::operator::VecEmitter;
        let mapper = RetailerMapper::new();
        let mut em = VecEmitter::new();
        let checkin = Json::obj([
            ("user", Json::str("u1")),
            ("venue", Json::obj([("name", Json::str("Central Park"))])),
        ]);
        let ev = Event::new(CHECKIN_STREAM, 1, Key::from("u1"), checkin.to_compact().into_bytes());
        mapper.map(&mut em, &ev);
        assert!(em.is_empty());
        // Malformed payloads are skipped, not fatal (Figure 3 logs errors).
        let bad = Event::new(CHECKIN_STREAM, 2, Key::from("u1"), b"not json".to_vec());
        mapper.map(&mut em, &bad);
        assert!(em.is_empty());
    }

    #[test]
    fn custom_names_allow_reuse() {
        let m = RetailerMapper::named("M-alt");
        assert_eq!(Mapper::name(&m), "M-alt");
        let c = Counter::named("U-alt");
        assert_eq!(Updater::name(&c), "U-alt");
    }
}
