//! Property-based tests for the muppet-core primitives.

use muppet_core::codec;
use muppet_core::event::{Event, Key};
use muppet_core::json::Json;
use muppet_core::operator::{Emitter, FnMapper, FnUpdater};
use muppet_core::reference::ReferenceExecutor;
use muppet_core::slate::Slate;
use muppet_core::workflow::Workflow;
use proptest::prelude::*;

// ---------- codec ----------

proptest! {
    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut buf = Vec::new();
        codec::put_varint(&mut buf, v);
        let (got, n) = codec::get_varint(&buf).unwrap();
        prop_assert_eq!(got, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn varint_encoding_is_minimal_and_ordered_by_length(a in any::<u64>(), b in any::<u64>()) {
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        codec::put_varint(&mut ba, a);
        codec::put_varint(&mut bb, b);
        if a <= b {
            prop_assert!(ba.len() <= bb.len());
        }
    }

    #[test]
    fn len_prefixed_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = Vec::new();
        codec::put_len_prefixed(&mut buf, &data);
        let (got, n) = codec::get_len_prefixed(&buf).unwrap();
        prop_assert_eq!(got, &data[..]);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn concatenated_records_parse_back(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 0..20)) {
        let mut buf = Vec::new();
        for c in &chunks {
            codec::put_len_prefixed(&mut buf, c);
        }
        let mut rest: &[u8] = &buf;
        let mut out = Vec::new();
        while !rest.is_empty() {
            let (bytes, n) = codec::get_len_prefixed(rest).unwrap();
            out.push(bytes.to_vec());
            rest = &rest[n..];
        }
        prop_assert_eq!(out, chunks);
    }

    #[test]
    fn crc_differs_on_any_single_bitflip(data in proptest::collection::vec(any::<u8>(), 1..256),
                                         bit in any::<usize>()) {
        let base = codec::crc32c(&data);
        let mut flipped = data.clone();
        let idx = bit % (data.len() * 8);
        flipped[idx / 8] ^= 1 << (idx % 8);
        prop_assert_ne!(codec::crc32c(&flipped), base);
    }
}

// ---------- JSON ----------

fn arb_json(depth: u32) -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite, non-extreme doubles: the serializer maps non-finite to null.
        (-1.0e12f64..1.0e12).prop_map(Json::Num),
        any::<i32>().prop_map(|n| Json::Num(n as f64)),
        "[a-zA-Z0-9 _\\-\"\\\\/\n\t\u{e9}\u{1F600}]{0,24}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(depth, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6)
                .prop_map(|pairs| Json::Obj(pairs.into_iter().collect())),
        ]
    })
}

proptest! {
    #[test]
    fn json_compact_roundtrips(v in arb_json(4)) {
        let text = v.to_compact();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(&back, &v, "text: {}", text);
    }

    #[test]
    fn json_pretty_roundtrips(v in arb_json(3)) {
        let text = v.to_pretty();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_serialization_is_deterministic(v in arb_json(3)) {
        prop_assert_eq!(v.to_compact(), v.to_compact());
    }

    #[test]
    fn json_parser_never_panics_on_garbage(text in "\\PC{0,64}") {
        let _ = Json::parse(&text);
    }

    #[test]
    fn json_parser_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Json::parse_bytes(&bytes);
    }
}

// ---------- events & slates ----------

proptest! {
    #[test]
    fn event_order_is_total_and_consistent(
        ts1 in 0u64..1000, seq1 in 0u64..1000,
        ts2 in 0u64..1000, seq2 in 0u64..1000,
    ) {
        let mut a = Event::new("S", ts1, Key::from("k"), "");
        a.seq = seq1;
        let mut b = Event::new("S", ts2, Key::from("k"), "");
        b.seq = seq2;
        let cmp = a.order().cmp(&b.order());
        prop_assert_eq!(b.order().cmp(&a.order()), cmp.reverse());
        if ts1 < ts2 {
            prop_assert_eq!(cmp, std::cmp::Ordering::Less, "ts dominates");
        }
    }

    #[test]
    fn slate_counter_accumulates(increments in proptest::collection::vec(1u64..100, 0..50)) {
        let mut s = Slate::empty();
        let mut expect = 0u64;
        for inc in &increments {
            expect += inc;
            prop_assert_eq!(s.incr_counter(*inc), expect);
        }
        prop_assert_eq!(s.counter(), expect);
        prop_assert_eq!(s.version(), increments.len() as u64);
    }

    #[test]
    fn key_route_hash_is_stable_and_operator_sensitive(key in "[a-z0-9]{1,16}") {
        let k = Key::from(key.as_str());
        prop_assert_eq!(k.route_hash("U1"), k.route_hash("U1"));
        prop_assert_ne!(k.route_hash("U1"), k.route_hash("U2"));
    }
}

// ---------- reference executor determinism ----------

fn count_workflow() -> Workflow {
    let mut b = Workflow::builder("prop-count");
    b.external_stream("S1");
    b.mapper_publishing("M1", &["S1"], &["S2"]);
    b.updater("U1", &["S2"]);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary key/timestamp sequences, the reference executor's
    /// per-key counts equal a straightforward HashMap count, and repeated
    /// runs are identical (determinism).
    #[test]
    fn reference_counts_match_model(
        events in proptest::collection::vec(("[a-e]", 0u64..50), 1..200)
    ) {
        let run = |events: &[(String, u64)]| {
            let wf = count_workflow();
            let mut exec = ReferenceExecutor::new(&wf);
            exec.register_mapper(FnMapper::new("M1", |ctx: &mut dyn Emitter, ev: &Event| {
                ctx.publish("S2", ev.key.clone(), ev.value.to_vec());
            }));
            exec.register_updater(FnUpdater::new(
                "U1",
                |_: &mut dyn Emitter, _: &Event, slate: &mut Slate| {
                    slate.incr_counter(1);
                },
            ));
            for (key, ts) in events {
                exec.push_external("S1", Event::new("S1", *ts, Key::from(key.as_str()), ""));
            }
            exec.run_to_completion().unwrap();
            exec.slates_of("U1")
                .into_iter()
                .map(|(k, s)| (k.as_str().unwrap().to_string(), s.counter()))
                .collect::<Vec<_>>()
        };
        let got = run(&events);
        let again = run(&events);
        prop_assert_eq!(&got, &again, "two runs must be identical");

        let mut model: std::collections::BTreeMap<String, u64> = Default::default();
        for (key, _) in &events {
            *model.entry(key.clone()).or_default() += 1;
        }
        let model: Vec<(String, u64)> = model.into_iter().collect();
        prop_assert_eq!(got, model);
    }
}
