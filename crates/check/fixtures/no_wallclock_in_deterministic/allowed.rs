// lint-fixture-as: crates/core/src/fixture.rs
//! Fixture: a wall-clock read excused by a reasoned annotation.

pub fn stamp() -> std::time::Instant {
    // lint: allow(no-wallclock-in-deterministic) — diagnostics only, never replayed
    std::time::Instant::now()
}
